//! Device-level batched dispatch walkthrough: a single tenant's seeded
//! restart sweep is coalesced into micro-batches by the fair scheduler, the
//! whole sweep shares ONE transpiled plan even on a cold cache, and an
//! annealing shot ladder shares one lowered BQM the same way.
//!
//! Run with: `cargo run --release --example batched_sweep`
//!
//! CI greps this example's output: the cold-cache batched sweep must report
//! exactly one gate-plan miss (and the ladder one anneal-plan miss) or the
//! build fails.

use qml_core::graph::cycle;
use qml_core::prelude::*;
use qml_core::service::{QmlService, ServiceConfig, SweepRequest};

const POINTS: u64 = 16;
const READS: [u64; 4] = [50, 100, 200, 400];

fn gate_context(seed: u64) -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(256)
            .with_seed(seed)
            .with_target(Target::ring(4)),
    )
}

fn main() -> std::result::Result<(), QmlError> {
    let program = qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))?;

    // max_batch 8: up to eight plan-compatible jobs ride one dispatch and
    // one device-level `execute_batch` call.
    let service = QmlService::with_config(ServiceConfig::with_workers(2).with_max_batch(8));

    // One program, 16 seeded restarts: every job shares a gate-plan key, so
    // the (uncontended) tenant's queue coalesces into micro-batches.
    let mut sweep = SweepRequest::new("restarts", program);
    for seed in 0..POINTS {
        sweep = sweep.with_context(gate_context(seed));
    }
    let batch = service.submit_sweep("tenant", sweep)?;

    // An annealing shot ladder from the same tenant: one Ising problem under
    // four read policies — one BQM lowering, one shared schedule.
    let ising = maxcut_ising_program(&cycle(4))?;
    for reads in READS {
        service.submit(
            "tenant",
            ising.clone().with_context(ContextDescriptor::for_anneal(
                "anneal.neal_simulator",
                AnnealConfig::with_reads(reads),
            )),
        )?;
    }

    let report = service.run_pending();
    assert_eq!(report.completed, (POINTS + READS.len() as u64) as usize);
    for job in service.batch_jobs(batch) {
        let result = service.result(job).expect("sweep job completed");
        assert_eq!(result.shots, 256);
    }

    let metrics = service.metrics();
    let gate = metrics.gate_cache;
    let anneal = metrics.anneal_cache;
    let sched = metrics.scheduler;

    println!(
        "batched-sweep gate-plan cache: misses={} hits={} (cold cache, {POINTS}-point sweep)",
        gate.misses, gate.hits
    );
    println!(
        "batched-sweep anneal-plan cache: misses={} hits={} ({}-rung read ladder)",
        anneal.misses,
        anneal.hits,
        READS.len()
    );
    println!(
        "micro-batches: formed={} batched_jobs={} solo={} mean_size={:.1}",
        sched.batches,
        sched.batched_jobs,
        sched.solo_jobs(),
        sched.mean_batch_size()
    );

    assert_eq!(gate.misses, 1, "the whole sweep shares one transpilation");
    assert_eq!(gate.hits, POINTS - 1);
    assert_eq!(anneal.misses, 1, "the ladder shares one BQM lowering");
    assert!(
        sched.batches >= 1,
        "plan-compatible traffic must form micro-batches"
    );
    assert!(sched.mean_batch_size() >= 2.0);

    println!("batched sweep example: OK");
    Ok(())
}
