//! Listing 5 / §4.3.2 reproduction: error correction as execution context.
//!
//! The same QAOA program runs unmodified with and without a `qec` block in
//! its context; what changes is the resource estimate produced by the
//! orthogonal QEC service, not the program's semantics. The example also runs
//! the executable repetition-code demonstrator to show the error suppression
//! a growing code distance buys.
//!
//! Run with: `cargo run --release --example qec_context`

use qml_core::prelude::*;
use qml_core::qec::{QecService, RepetitionCode, SurfaceCode};
use qml_core::types::QecConfig;

fn main() -> Result<()> {
    let graph = qml_core::graph::cycle(4);
    let bundle = qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))?;

    let base_ctx = ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(2048)
            .with_seed(42)
            .with_target(Target::ring(4))
            .with_optimization_level(2),
    );

    let runtime = Runtime::with_default_backends();
    let plain_id = runtime.submit(bundle.clone().with_context(base_ctx.clone()))?;
    let qec_id = runtime.submit(bundle.with_context(base_ctx.with_qec(QecConfig::surface(7))))?;
    runtime.run_all(2);
    let plain = runtime.result(plain_id).unwrap();
    let protected = runtime.result(qec_id).unwrap();

    println!("semantics are untouched by the QEC context:");
    println!(
        "  identical counts: {}",
        if plain.counts == protected.counts {
            "yes"
        } else {
            "NO"
        }
    );

    println!("\nListing 5 policy (surface code, distance 7):");
    let estimate = protected.qec_estimate.unwrap();
    println!(
        "  logical qubits               : {}",
        estimate.logical_qubits
    );
    println!(
        "  physical qubits (with routing): {}",
        estimate.physical_qubits
    );
    println!(
        "  syndrome rounds               : {}",
        estimate.syndrome_rounds
    );
    println!(
        "  workload failure probability  : {:.2e}",
        estimate.workload_failure_probability
    );

    println!("\nsurface-code scaling at p = 1e-3 (threshold 1e-2):");
    println!(
        "  {:>8} {:>18} {:>22}",
        "distance", "physical/logical", "logical error rate"
    );
    for d in [3usize, 5, 7, 9, 11] {
        let code = SurfaceCode::new(d, 1e-3);
        println!(
            "  {:>8} {:>18} {:>22.3e}",
            d,
            code.physical_qubits_per_logical(),
            code.logical_error_rate()
        );
    }

    println!("\nexecutable repetition-code demonstrator (bit-flip noise p = 0.05):");
    println!(
        "  {:>8} {:>14} {:>14}",
        "distance", "analytic", "monte carlo"
    );
    for d in [1usize, 3, 5, 7, 9] {
        let code = RepetitionCode::new(d);
        println!(
            "  {:>8} {:>14.5} {:>14.5}",
            d,
            code.analytic_logical_error_rate(0.05),
            code.simulate_logical_error_rate(0.05, 100_000, 7)
        );
    }

    // The service also polices the fault-tolerant gate set of the policy.
    let service = QecService::from_config(&QecConfig::surface(7))?;
    println!(
        "\nlogical gate set check: H,S,CNOT,T,MEASURE_Z allowed = {}, CCZ allowed = {}",
        service
            .check_logical_gates(&["H", "S", "CNOT", "T", "MEASURE_Z"])
            .is_ok(),
        service.allows_logical_gate("CCZ")
    );
    Ok(())
}
