//! Parametric transpilation walkthrough: ONE symbolic QAOA bundle swept over
//! a γ/β grid shares ONE transpiled gate plan — the cache reports exactly one
//! miss and N−1 hits, because binding happens *after* transpilation by
//! substituting the plan's symbol slot table (no re-routing, no re-basis, no
//! re-optimization per point).
//!
//! For contrast, the same grid is then submitted **pre-bound** (angles
//! substituted into the operators before submission, the pre-PR behavior):
//! every point hashes as a distinct program and transpiles from scratch.
//!
//! Run with: `cargo run --release --example parametric_sweep`

use std::collections::BTreeMap;

use qml_core::graph::{cut_value_of_bitstring, cycle};
use qml_core::prelude::*;
use qml_core::service::{QmlService, ServiceConfig, SweepRequest};
use qml_core::types::ParamValue;

fn grid() -> Vec<BTreeMap<String, ParamValue>> {
    let mut points = Vec::new();
    for gi in 1..=4 {
        for bi in 1..=4 {
            let mut bindings = BTreeMap::new();
            bindings.insert(
                "gamma_0".to_string(),
                ParamValue::Float(std::f64::consts::PI * gi as f64 / 10.0),
            );
            bindings.insert(
                "beta_0".to_string(),
                ParamValue::Float(std::f64::consts::FRAC_PI_2 * bi as f64 / 5.0),
            );
            points.push(bindings);
        }
    }
    points
}

fn ring_context() -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(512)
            .with_seed(42)
            .with_target(Target::ring(6))
            .with_optimization_level(2),
    )
}

fn main() -> std::result::Result<(), QmlError> {
    let graph = cycle(6);
    let points = grid();
    let n = points.len();

    // --- Parametric path: the bundle ships once, symbols intact. ----------
    let template = qaoa_maxcut_program(&graph, &QaoaSchedule::Symbolic { layers: 1 })?;
    println!(
        "symbolic program `{}`: unbound symbols {:?}",
        template.name,
        template.canonical_symbols()
    );

    let service = QmlService::with_config(ServiceConfig::with_workers(4));
    let mut sweep = SweepRequest::new("gamma-beta-grid", template).with_context(ring_context());
    for bindings in &points {
        sweep = sweep.with_binding_set(bindings.clone());
    }
    let batch = service.submit_sweep("optimizer", sweep)?;
    let report = service.run_pending();
    let stats = service.metrics().gate_cache;
    println!(
        "parametric gate-plan cache: misses={} hits={} entries={} evictions={}",
        stats.misses, stats.hits, stats.entries, stats.evictions
    );
    println!(
        "parametric drain: {} jobs in {:.1} ms ({:.0} jobs/s)",
        report.jobs,
        report.wall_seconds * 1e3,
        report.jobs_per_second
    );
    assert_eq!(stats.misses, 1, "one transpilation for the whole grid");
    assert_eq!(stats.hits as usize, n - 1);

    let mut best = (0usize, f64::MIN);
    for (i, job) in service.batch_jobs(batch).into_iter().enumerate() {
        let result = service.result(job).expect("grid job completed");
        let cut = result.expectation(|w| cut_value_of_bitstring(&graph, w));
        if cut > best.1 {
            best = (i, cut);
        }
    }
    println!(
        "best grid point: #{} with expected cut {:.2} (optimum 6)",
        best.0, best.1
    );

    // --- Pre-bound contrast: same grid, angles substituted up front. ------
    let prebound_service = QmlService::with_config(ServiceConfig::with_workers(4));
    let template = qaoa_maxcut_program(&graph, &QaoaSchedule::Symbolic { layers: 1 })?;
    for bindings in &points {
        prebound_service.submit(
            "optimizer",
            template.bind(bindings).with_context(ring_context()),
        )?;
    }
    let report = prebound_service.run_pending();
    let stats = prebound_service.metrics().gate_cache;
    println!(
        "pre-bound gate-plan cache: misses={} hits={} entries={}",
        stats.misses, stats.hits, stats.entries
    );
    println!(
        "pre-bound drain: {} jobs in {:.1} ms ({:.0} jobs/s)",
        report.jobs,
        report.wall_seconds * 1e3,
        report.jobs_per_second
    );
    assert_eq!(
        stats.misses as usize, n,
        "bind-first makes every point a distinct program"
    );

    println!(
        "transpilations saved by the parametric path: {} of {n}",
        n - 1
    );
    Ok(())
}
