//! Fig. 3 reproduction: the Max-Cut annealing path — the same typed problem
//! as the QAOA example, realized as a single ISING_PROBLEM descriptor and
//! sampled by the simulated annealer.
//!
//! Run with: `cargo run --release --example maxcut_anneal`

use qml_core::graph::{cut_value_of_bitstring, cycle, maxcut_to_ising};
use qml_core::prelude::*;

fn main() -> Result<()> {
    let graph = cycle(4);

    // Intent: one ISING_PROBLEM descriptor declaring E(s) = Σ h_i s_i + Σ J_ij s_i s_j
    // with h = 0 and unit couplings on the ring edges.
    let bundle = maxcut_ising_program(&graph)?;
    let ising = maxcut_to_ising(&graph);
    println!("Ising formulation: h = {:?}", ising.h);
    println!("                   J = {:?}", ising.j);

    // Policy: the annealer context of the paper's Fig. 3 — num_reads = 1000.
    let mut anneal = AnnealConfig::with_reads(1000);
    anneal.seed = Some(42);
    let job = bundle.with_context(ContextDescriptor::for_anneal(
        "anneal.neal_simulator",
        anneal,
    ));

    let runtime = Runtime::with_default_backends();
    let id = runtime.submit(job)?;
    let result = runtime.run_job(id)?;

    println!("\nbackend: {} (engine {})", result.backend, result.engine);
    println!("samples (reads): {}", result.shots);
    if let Some(stats) = &result.energy_stats {
        println!(
            "lowest energy {:.1}, mean energy {:.2}, ground-state probability {:.2}",
            stats.min_energy, stats.mean_energy, stats.ground_state_probability
        );
    }
    println!("\nsample table:");
    for (word, probability) in result.top_k(6) {
        println!(
            "  {word}  p = {probability:.3}  cut = {}",
            cut_value_of_bitstring(&graph, &word)
        );
    }
    let expected = result.expectation(|w| cut_value_of_bitstring(&graph, w));
    println!("\nexpected cut over all reads : {expected:.2}");
    println!("optimal assignments         : 1010 and 0101 (cut = 4)");
    Ok(())
}
