//! Fig. 2 reproduction: the Max-Cut QAOA gate path, including the classical
//! outer loop that tunes the QAOA angles by re-binding late-bound parameters.
//!
//! Run with: `cargo run --release --example maxcut_qaoa`

use std::collections::BTreeMap;

use qml_core::backends::{Backend, GateBackend};
use qml_core::graph::{cut_value_of_bitstring, cycle};
use qml_core::prelude::*;
use qml_core::types::ParamValue;

fn main() -> Result<()> {
    let graph = cycle(4);

    // The intent is built once with *symbolic* angles: the classical
    // optimization loop below only re-binds parameters, it never rebuilds or
    // edits the descriptors (the paper's late-binding requirement).
    let template = qaoa_maxcut_program(&graph, &QaoaSchedule::Symbolic { layers: 1 })?;
    println!("symbolic parameters: {:?}", template.unbound_symbols());

    let context = ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(4096)
            .with_seed(42)
            .with_target(Target::ring(4))
            .with_optimization_level(2),
    );
    let backend = GateBackend::new();

    // Classical outer loop: coarse grid search over (gamma, beta).
    let steps = 24usize;
    let mut best = (0.0f64, 0.0f64, f64::MIN);
    for gi in 1..steps {
        for bi in 1..steps {
            let gamma = std::f64::consts::PI * gi as f64 / steps as f64;
            let beta = std::f64::consts::FRAC_PI_2 * bi as f64 / steps as f64;
            let mut bindings = BTreeMap::new();
            bindings.insert("gamma_0".to_string(), ParamValue::Float(gamma));
            bindings.insert("beta_0".to_string(), ParamValue::Float(beta));
            let job = template.bind(&bindings).with_context(context.clone());
            let result = backend.execute(&job)?;
            let expected = result.expectation(|w| cut_value_of_bitstring(&graph, w));
            if expected > best.2 {
                best = (gamma, beta, expected);
            }
        }
    }
    println!(
        "\nbest angles found: gamma = {:.3} rad, beta = {:.3} rad",
        best.0, best.1
    );
    println!("best expected cut (p = 1): {:.3}", best.2);

    // Final run at the best angles, reported like the paper's §5.
    let mut bindings = BTreeMap::new();
    bindings.insert("gamma_0".to_string(), ParamValue::Float(best.0));
    bindings.insert("beta_0".to_string(), ParamValue::Float(best.1));
    let job = template.bind(&bindings).with_context(context);
    let result = backend.execute(&job)?;

    println!("\nfinal run ({} shots on {}):", result.shots, result.engine);
    if let Some(metrics) = &result.gate_metrics {
        println!(
            "  transpiled to basis [sx, rz, cx] on the 4-qubit ring: {} gates, {} two-qubit, depth {}",
            metrics.total_gates, metrics.two_qubit_gates, metrics.depth
        );
    }
    for (word, probability) in result.top_k(6) {
        println!(
            "  {word}  p = {probability:.3}  cut = {}",
            cut_value_of_bitstring(&graph, &word)
        );
    }
    let expected = result.expectation(|w| cut_value_of_bitstring(&graph, w));
    let p_opt = result.probability("1010") + result.probability("0101");
    println!("\nexpected cut over all samples : {expected:.2}  (paper reports ≈ 3.0–3.2)");
    println!("probability of an optimal cut : {p_opt:.2}");
    println!("optimal assignments           : 1010 and 0101 (cut = 4)");
    Ok(())
}
