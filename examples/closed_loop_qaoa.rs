//! Closed-loop variational QAOA under the latency service class: an
//! optimizer submits one evaluation at a time, awaits its measured
//! objective, and proposes the next angles — first against an idle service,
//! then with a saturating throughput sweep from another tenant in the
//! background. The latency class keeps the interactive loop responsive, and
//! seeded execution plus a deterministic optimizer make the two optimization
//! trajectories bit-identical.
//!
//! Run with: `cargo run --release --example closed_loop_qaoa`

use std::time::{Duration, Instant};

use qml_core::algorithms::PatternSearch;
use qml_core::graph::{cut_value_of_bitstring, cycle, Graph};
use qml_core::prelude::*;
use qml_core::service::{QmlService, ServiceConfig, SweepRequest};

fn gate_context(seed: u64, samples: u64) -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(samples)
            .with_seed(seed)
            .with_target(Target::ring(6)),
    )
}

/// Drive one full pattern search through the running service: each
/// evaluation binds the proposed angles onto the shared symbolic program
/// (one transpilation serves every iteration), submits it latency-class,
/// and blocks on the measured expected cut. Seeds depend only on the
/// evaluation index, so two runs observe identical objectives.
fn optimize(
    service: &QmlService,
    graph: &Graph,
    program: &JobBundle,
) -> Result<(PatternSearch, Duration)> {
    let mut search = PatternSearch::new(
        QaoaAngles {
            gamma: 0.1,
            beta: 1.0,
        },
        0.4,
        0.05,
    );
    let started = Instant::now();
    while let Some(angles) = search.next_angles() {
        let eval = search.evaluations() as u64;
        let bundle = program
            .clone()
            .with_bindings(
                BindingSet::new()
                    .with("gamma_0", angles.gamma)
                    .with("beta_0", angles.beta),
            )
            .with_service_class(ServiceClass::latency())
            .with_context(gate_context(1000 + eval, 4096));
        let (_, job) = service.submit("opt", bundle)?;
        service.wait_for(job, Duration::from_secs(60));
        let result = service
            .result(job)
            .ok_or_else(|| QmlError::Validation("closed-loop evaluation failed".into()))?;
        search.observe(result.expectation(|word| cut_value_of_bitstring(graph, word)));
    }
    Ok((search, started.elapsed()))
}

fn main() -> std::result::Result<(), QmlError> {
    let graph = cycle(6);
    // One symbolic program for the whole optimization: angles ride as
    // BindingSets, so every evaluation shares a single transpiled plan.
    let program = qaoa_maxcut_program(&graph, &QaoaSchedule::Symbolic { layers: 1 })?;

    let service = QmlService::with_config(ServiceConfig::with_workers(2));
    let handle = service.start().expect("fresh service");

    // Phase 1: closed loop against an idle service.
    let (idle, idle_wall) = optimize(&service, &graph, &program)?;
    let (best, value) = idle.best();
    println!(
        "idle run: {} evaluations in {:.1} ms, best cut {:.3} at gamma={:.4} beta={:.4}",
        idle.evaluations(),
        idle_wall.as_secs_f64() * 1e3,
        value,
        best.gamma,
        best.beta,
    );

    // Phase 2: tenant "whale" saturates the pool with a throughput-class
    // sweep (fixed angles — background load needs no binding), then the
    // same optimization runs again from scratch.
    let background = qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))?;
    let mut sweep = SweepRequest::new("whale-background", background);
    for seed in 0..1500 {
        sweep = sweep.with_context(gate_context(seed, 32));
    }
    service.submit_sweep("whale", sweep)?;
    let (loaded, loaded_wall) = optimize(&service, &graph, &program)?;
    let ratio = loaded_wall.as_secs_f64() / idle_wall.as_secs_f64().max(1e-9);
    println!(
        "loaded run: {} evaluations in {:.1} ms under a 1500-job background sweep \
         (x{ratio:.2} the idle wall)",
        loaded.evaluations(),
        loaded_wall.as_secs_f64() * 1e3,
    );

    // Seeded simulation + deterministic driver: the background load may slow
    // the loop down, but it must not change a single proposed angle or
    // observed objective.
    assert_eq!(idle.evaluations(), loaded.evaluations());
    for (a, b) in idle.trajectory().iter().zip(loaded.trajectory()) {
        assert_eq!(a.0.gamma.to_bits(), b.0.gamma.to_bits());
        assert_eq!(a.0.beta.to_bits(), b.0.beta.to_bits());
        assert_eq!(
            a.1.to_bits(),
            b.1.to_bits(),
            "objective diverged under load"
        );
    }

    assert!(service.wait_idle(Duration::from_secs(120)));
    let metrics = service.metrics();
    let latency = &metrics.per_class["latency"];
    let throughput = &metrics.per_class["throughput"];
    println!(
        "latency class: dispatched={} completed={} | throughput class: dispatched={} completed={}",
        latency.dispatched, latency.completed, throughput.dispatched, throughput.completed,
    );
    // Deadline-free latency jobs can never miss; the greppable line below is
    // what CI pins.
    println!("deadline_miss={}", latency.deadline_miss);
    assert_eq!(latency.deadline_miss, 0);
    println!(
        "converged={}",
        if idle.converged() && loaded.converged() {
            "ok"
        } else {
            "fail"
        }
    );
    assert!(idle.converged() && loaded.converged());

    let summary = handle.drain();
    println!(
        "drained {} jobs on {} workers ({:.0} jobs/s)",
        summary.jobs, summary.workers, summary.jobs_per_second,
    );
    println!("closed-loop qaoa example: OK");
    Ok(())
}
