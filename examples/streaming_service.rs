//! Streaming-service walkthrough: start the long-lived worker pool, submit
//! jobs from *other threads while it runs* (no drain/restart between
//! submissions), watch the fair scheduler interleave a small tenant's job
//! into a large tenant's sweep, and shut down gracefully.
//!
//! Run with: `cargo run --release --example streaming_service`

use std::time::Duration;

use qml_core::graph::cycle;
use qml_core::prelude::*;
use qml_core::runtime::JobStatus;
use qml_core::service::{QmlService, ServiceConfig, SweepRequest};

fn gate_context(seed: u64, samples: u64) -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(samples)
            .with_seed(seed)
            .with_target(Target::ring(4)),
    )
}

fn main() -> std::result::Result<(), QmlError> {
    let graph = cycle(4);
    let program = qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))?;

    // max_batch 1: this example demonstrates per-job DRR interleaving, so
    // micro-batching is pinned off — with batching on, an uncontended whale
    // can have its whole sweep claimed in a few batch dispatches before the
    // minnow's submitter thread is even scheduled, which is correct (it was
    // uncontended) but not the fairness story shown here. The batching
    // walkthrough lives in `examples/batched_sweep.rs`.
    let service = QmlService::with_config(ServiceConfig::with_workers(2).with_max_batch(1));

    // The service loop starts with an empty queue: workers are live and
    // waiting for work to stream in.
    let handle = service.start().expect("fresh service");
    println!("service started: streaming pool of 2 workers is live");

    // Tenant "whale" feeds a 32-point sweep from its own thread while the
    // pool is already running.
    let whale = {
        let service = service.clone();
        let program = program.clone();
        std::thread::spawn(move || {
            let mut sweep = SweepRequest::new("whale-scan", program);
            for seed in 0..32 {
                sweep = sweep.with_context(gate_context(seed, 4096));
            }
            service.submit_sweep("whale", sweep).unwrap()
        })
    };
    let whale_batch = whale.join().expect("whale submitter");

    // Tenant "minnow" submits one small job from another thread mid-sweep.
    // Deficit round robin interleaves it instead of parking it behind the
    // whale's whole queue.
    let minnow = {
        let service = service.clone();
        let program = program.clone();
        std::thread::spawn(move || {
            service
                .submit("minnow", program.with_context(gate_context(99, 64)))
                .unwrap()
        })
    };
    let (_, minnow_job) = minnow.join().expect("minnow submitter");

    let status = service.wait_for(minnow_job, Duration::from_secs(60));
    let whale_done_at_minnow = service
        .batch_jobs(whale_batch)
        .iter()
        .filter(|id| matches!(service.status(**id), Some(JobStatus::Completed)))
        .count();
    println!(
        "minnow job finished ({status:?}) while the whale sweep was at {whale_done_at_minnow}/32"
    );
    assert!(
        matches!(status, Some(JobStatus::Completed)),
        "minnow job must complete while the service runs"
    );
    assert!(
        whale_done_at_minnow < 32,
        "fair scheduling: the minnow must not wait out the whole whale sweep"
    );

    // Everything submitted while running completes without a restart.
    assert!(service.wait_idle(Duration::from_secs(60)));
    let summary = handle.drain();
    println!(
        "streaming drain: {} jobs on {} workers in {:.1} ms ({:.0} jobs/s)",
        summary.jobs,
        summary.workers,
        summary.wall_seconds * 1e3,
        summary.jobs_per_second,
    );
    assert_eq!(summary.completed, 33, "32 whale points + 1 minnow job");

    let metrics = service.metrics();
    println!(
        "fair-scheduler counters: rounds={} dispatched={} idle_polls={}",
        metrics.scheduler.rounds, metrics.scheduler.dispatched, metrics.scheduler.idle_polls
    );
    for (tenant, stats) in &metrics.per_tenant {
        println!(
            "tenant {tenant}: completed={} mean submit->dispatch wait={:.3} ms",
            stats.completed,
            stats.mean_wait_seconds() * 1e3
        );
    }
    println!("streaming service example: OK");
    Ok(())
}
