//! Measured-cost fairness walkthrough: two tenants with equal weights and
//! identical *real* per-job cost, but wildly different placement estimates —
//! one strips its cost hints (admitted at the scheduler's 1.0-unit floor),
//! the other carries descriptor hints that over-state the job ~85×. The old
//! estimate-unit scheduler would hand the hint-less tenant ~85 jobs per DRR
//! rotation and the honest tenant one; the measured-cost loop (online EWMA
//! cost model + deficit charge-back) prices both at observed busy-seconds,
//! so device time converges to the 1:1 weight ratio.
//!
//! Run with: `cargo run --release --example fairness_busy_seconds`
//! (CI greps the `band=ok` line.)

use std::time::{Duration, Instant};

use qml_core::graph::cycle;
use qml_core::prelude::*;
use qml_core::service::{QmlService, ServiceConfig};
use qml_core::types::QmlError;

const JOBS_PER_TENANT: u64 = 200;
const SAMPLE_AT: u64 = 150;

fn gate_context(seed: u64) -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(4096)
            .with_seed(seed)
            .with_target(Target::ring(4)),
    )
}

fn main() -> std::result::Result<(), QmlError> {
    let graph = cycle(4);
    let hinted = qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))?;
    let mut hintless = hinted.clone();
    for op in &mut hintless.operators {
        op.cost_hint = None;
    }
    let estimate = GateBackend::new().estimate_cost(&hinted);
    println!(
        "hinted descriptor estimate: {estimate:.1} cost units; hint-less \
         estimate: 0.0 (floored to 1.0) — same program, same 4096 shots"
    );

    // One worker and no micro-batching: the cleanest view of per-dispatch
    // DRR accounting.
    let service = QmlService::with_config(ServiceConfig::with_workers(1).with_max_batch(1));
    for i in 0..JOBS_PER_TENANT {
        service.submit("sandbagged", hintless.clone().with_context(gate_context(i)))?;
        service.submit(
            "honest",
            hinted.clone().with_context(gate_context(1000 + i)),
        )?;
    }

    let handle = service.start().expect("fresh service");
    // Sample mid-run while both tenants are still backlogged — a full drain
    // would trivially equalize busy-seconds (equal total offered work).
    let deadline = Instant::now() + Duration::from_secs(120);
    while service.metrics().jobs_completed < SAMPLE_AT && Instant::now() < deadline {
        std::thread::sleep(Duration::from_micros(500));
    }
    handle.abort();

    let metrics = service.metrics();
    let sand = &metrics.per_tenant["sandbagged"];
    let honest = &metrics.per_tenant["honest"];
    let ratio = (sand.busy_seconds + 1e-9) / (honest.busy_seconds + 1e-9);
    println!(
        "at {} completed jobs: sandbagged {:.4}s busy over {} jobs, honest \
         {:.4}s over {} jobs",
        metrics.jobs_completed,
        sand.busy_seconds,
        sand.completed,
        honest.busy_seconds,
        honest.completed,
    );
    println!(
        "scheduler accuracy: {} measured outcomes, mean |estimate error| \
         {:.2} cost units/job, {:.1} units charged back",
        metrics.scheduler.cost_samples,
        metrics.scheduler.mean_abs_estimate_error(),
        metrics.scheduler.charge_back_units,
    );

    // The 25%-band acceptance criterion is proven deterministically in the
    // scheduler unit tests; the end-to-end run tolerates one cold-start
    // rotation of sampling skew on a busy CI host.
    let ok = (1.0 / 3.0..=3.0).contains(&ratio);
    println!(
        "fairness_busy_seconds ratio={ratio:.3} band={}",
        if ok { "ok" } else { "VIOLATED" }
    );
    assert!(
        ok,
        "equal weights must mean comparable busy-seconds, got {ratio:.3}"
    );
    assert!(
        metrics.scheduler.charge_back_units > 0.0,
        "the mis-estimates must have triggered deficit corrections"
    );
    Ok(())
}
