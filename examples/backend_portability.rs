//! The paper's headline demonstration (§5): the **same typed problem** runs on
//! a gate-model backend and an annealing backend by changing only the
//! operator formulation and the context — the quantum data type is shared,
//! bit for bit, and both paths decode through the same explicit schema.
//!
//! Run with: `cargo run --release --example backend_portability`

use qml_core::graph::{all_optimal_bitstrings, cut_value_of_bitstring, cycle};
use qml_core::prelude::*;

fn main() -> Result<()> {
    let graph = cycle(4);
    let (optimal_cut, optimal_assignments) = all_optimal_bitstrings(&graph);

    // --- shared typed problem ------------------------------------------------
    let qaoa = qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))?;
    let ising = maxcut_ising_program(&graph)?;
    assert_eq!(
        qaoa.data_types, ising.data_types,
        "the quantum data type is shared verbatim"
    );
    println!("shared quantum data type:");
    println!(
        "{}",
        serde_json::to_string_pretty(&qaoa.data_types[0]).unwrap()
    );

    // --- two contexts ---------------------------------------------------------
    let gate_ctx = ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(4096)
            .with_seed(42)
            .with_target(Target::ring(4))
            .with_optimization_level(2),
    );
    let mut anneal_cfg = AnnealConfig::with_reads(1000);
    anneal_cfg.seed = Some(42);
    let anneal_ctx = ContextDescriptor::for_anneal("anneal.neal_simulator", anneal_cfg);

    // --- run both through the same runtime ------------------------------------
    let runtime = Runtime::with_default_backends();
    let gate_id = runtime.submit(qaoa.with_context(gate_ctx))?;
    let anneal_id = runtime.submit(ising.with_context(anneal_ctx))?;
    let outcomes = runtime.run_all(2);
    assert!(outcomes.iter().all(|(_, o)| o.is_ok()));

    let gate = runtime.result(gate_id).unwrap();
    let anneal = runtime.result(anneal_id).unwrap();

    println!(
        "\n{:<28} {:>18} {:>22}",
        "", "gate path (QAOA)", "anneal path (Ising)"
    );
    println!(
        "{:<28} {:>18} {:>22}",
        "backend", gate.backend, anneal.backend
    );
    println!("{:<28} {:>18} {:>22}", "samples", gate.shots, anneal.shots);
    let cut = |r: &ExecutionResult| r.expectation(|w| cut_value_of_bitstring(&graph, w));
    println!(
        "{:<28} {:>18.2} {:>22.2}",
        "expected cut",
        cut(&gate),
        cut(&anneal)
    );
    let p_opt = |r: &ExecutionResult| {
        optimal_assignments
            .iter()
            .map(|w| r.probability(w))
            .sum::<f64>()
    };
    println!(
        "{:<28} {:>18.2} {:>22.2}",
        "P(optimal assignment)",
        p_opt(&gate),
        p_opt(&anneal)
    );
    for word in &optimal_assignments {
        println!(
            "{:<28} {:>18.3} {:>22.3}",
            format!("P({word})"),
            gate.probability(word),
            anneal.probability(word)
        );
    }
    println!(
        "\nboth backends return the optimal cut assignments {:?} (cut = {optimal_cut})",
        optimal_assignments
    );
    Ok(())
}
