//! Observability walkthrough: run a two-tenant streaming workload with
//! per-job stage tracing enabled, follow one job submit→outcome through the
//! trace, and print the unified metrics snapshot — as greppable `key=value`
//! text and as one JSON line.
//!
//! Run with: `cargo run --release --example observability`

use std::time::Duration;

use qml_core::graph::cycle;
use qml_core::prelude::*;
use qml_core::service::{QmlService, ServiceConfig, SweepRequest};

fn gate_context(seed: u64, samples: u64) -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(samples)
            .with_seed(seed)
            .with_target(Target::ring(4)),
    )
}

fn main() -> std::result::Result<(), QmlError> {
    let program = qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))?;

    // Tracing is off (and zero-cost) by default; one builder call turns the
    // bounded in-memory ring on.
    let service = QmlService::with_config(ServiceConfig::with_workers(2).with_tracing(true));
    let handle = service.start().expect("fresh service");

    // Tenant "sweeper" streams a 16-point sweep; tenant "probe" lands one
    // small job mid-sweep.
    let mut sweep = SweepRequest::new("scan", program.clone());
    for seed in 0..16 {
        sweep = sweep.with_context(gate_context(seed, 256));
    }
    service.submit_sweep("sweeper", sweep)?;
    let (_, probe_job) = service.submit("probe", program.with_context(gate_context(99, 64)))?;

    assert!(service.wait_idle(Duration::from_secs(60)));
    let summary = handle.drain();
    assert_eq!(summary.completed, 17);

    // Every retained stage event, oldest first. Each line is greppable:
    // `trace seq=.. at_us=.. job=.. stage=..` plus stage-specific fields.
    let events = service.trace_events();
    println!("--- probe job {probe_job:?}, submit -> outcome ---");
    for event in events.iter().filter(|e| e.job == probe_job.0) {
        println!("{event}");
    }
    println!("--- full stream: {} events ---", events.len());
    for event in &events {
        println!("{event}");
    }

    let stats = service.trace_stats();
    println!(
        "trace stats: recorded={} dropped={} capacity={}",
        stats.recorded, stats.dropped, stats.capacity
    );

    // The unified snapshot: service totals + cost gauges + latency
    // percentiles + trace health, one versioned document.
    let snapshot = service.snapshot();
    print!("{}", snapshot.dump_kv());
    println!("snapshot jsonl: {}", snapshot.to_jsonl());
    println!("observability example: OK");
    Ok(())
}
