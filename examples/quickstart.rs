//! Quickstart: express a problem once as typed intent, pick a backend with a
//! context, execute through the runtime.
//!
//! Run with: `cargo run --release --example quickstart`

use qml_core::graph::{cut_value_of_bitstring, cycle};
use qml_core::prelude::*;

fn main() -> Result<()> {
    // ------------------------------------------------------------------
    // 1. Intent — stated once, with no commitment to any backend.
    //    A 4-node cycle Max-Cut as a typed QAOA program (paper §5, Fig. 2).
    // ------------------------------------------------------------------
    let graph = cycle(4);
    let bundle = qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))?;
    println!(
        "intent: {} data type(s), {} operator descriptor(s)",
        bundle.data_types.len(),
        bundle.operators.len()
    );
    for op in &bundle.operators {
        println!("  - {:<14} on {}", op.rep_kind.to_string(), op.domain_qdt);
    }

    // ------------------------------------------------------------------
    // 2. Policy — the execution context, orthogonal to the intent.
    // ------------------------------------------------------------------
    let context = ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(4096)
            .with_seed(42)
            .with_target(Target::ring(4))
            .with_optimization_level(2),
    );
    let job = bundle.with_context(context);

    // ------------------------------------------------------------------
    // 3. Execution — the runtime schedules the job onto a backend.
    // ------------------------------------------------------------------
    let runtime = Runtime::with_default_backends();
    let id = runtime.submit(job)?;
    let result = runtime.run_job(id)?;

    println!("\nbackend: {} (engine {})", result.backend, result.engine);
    if let Some(metrics) = &result.gate_metrics {
        println!(
            "transpiled: {} gates ({} two-qubit), depth {}",
            metrics.total_gates, metrics.two_qubit_gates, metrics.depth
        );
    }
    println!("\ntop outcomes out of {} shots:", result.shots);
    for (word, probability) in result.top_k(4) {
        println!(
            "  {word}  p = {probability:.3}  cut = {}",
            cut_value_of_bitstring(&graph, &word)
        );
    }
    let expected_cut = result.expectation(|w| cut_value_of_bitstring(&graph, w));
    println!("\nexpected cut  = {expected_cut:.2}");
    println!("optimal cut   = 4 (assignments 1010 / 0101)");
    println!("random guess  = 2.0");
    Ok(())
}
