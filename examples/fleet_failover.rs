//! Fleet failover walkthrough: three heterogeneous gate devices behind one
//! backend plane, one of which dies permanently mid-run. The fleet routes
//! around the death — faulted jobs are requeued onto capable siblings with
//! the dead device excluded — and the sweep finishes with every job
//! completed and bit-identical results to a healthy run.
//!
//! Run with: `cargo run --release --example fleet_failover`

use std::sync::Arc;

use qml_core::backends::testing::{FaultPlan, FaultyBackend};
use qml_core::backends::{Backend, GateBackend};
use qml_core::graph::cycle;
use qml_core::prelude::*;
use qml_core::service::{DeviceSpec, QmlService, ServiceConfig, SweepRequest};

fn gate_context(seed: u64) -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(512)
            .with_seed(seed)
            .with_target(Target::ring(4)),
    )
}

fn gate_device(id: &str, plan: FaultPlan) -> DeviceSpec {
    DeviceSpec::new(
        id,
        Arc::new(FaultyBackend::new(GateBackend::new(), plan)) as Arc<dyn Backend>,
        CapabilityDescriptor::unlimited(),
    )
}

fn main() -> std::result::Result<(), QmlError> {
    // A 3-device gate fleet: gate-small is capability-limited (8 qubits),
    // gate-flaky dies permanently on its first execution, gate-big is the
    // healthy wide device that absorbs the fallout.
    let config = ServiceConfig::with_workers(2)
        .with_max_batch(1)
        .with_device(DeviceSpec::new(
            "gate-small",
            Arc::new(GateBackend::new()) as Arc<dyn Backend>,
            CapabilityDescriptor::unlimited().with_max_qubits(8),
        ))
        .with_device(gate_device(
            "gate-flaky",
            FaultPlan::none().with_fail_from(0),
        ))
        .with_device(gate_device("gate-big", FaultPlan::none()));
    let service = QmlService::with_config(config);

    let program = qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))?;
    let mut sweep = SweepRequest::new("failover-scan", program);
    for seed in 0..16 {
        sweep = sweep.with_context(gate_context(seed));
    }
    let batch = service.submit_sweep("tenant", sweep)?;
    let summary = service.run_pending();

    let metrics = service.metrics();
    println!("--- per-device fleet gauges ---");
    for (id, dev) in &metrics.per_device {
        println!(
            "device={id} plane={} health={} dispatched={} completed={} failed={} requeued={}",
            dev.plane, dev.health, dev.dispatched, dev.completed, dev.failed, dev.requeued,
        );
    }

    // The dead device walked the health ladder to `down` and was excluded
    // from every requeued job; nothing was lost along the way.
    let dead = &metrics.per_device["gate-flaky"];
    assert_eq!(dead.health, "down");
    assert_eq!(dead.completed, 0);
    let submitted = service.batch_jobs(batch).len();
    let lost = submitted - summary.completed - summary.failed;
    println!(
        "fleet_failover requeued={} excluded={} lost={lost}",
        metrics.scheduler.requeued, dead.requeued,
    );
    assert_eq!(lost, 0, "every job settled exactly once");
    assert_eq!(summary.completed, submitted, "siblings absorbed the queue");
    println!("fleet failover example: OK");
    Ok(())
}
