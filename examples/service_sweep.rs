//! Batch-service walkthrough: submit a QAOA angle scan and a seeded-restart
//! sweep for two tenants, drain them on the work-stealing pool, and read the
//! service metrics (throughput, cache hit rate, per-backend utilization).
//!
//! Run with: `cargo run --release --example service_sweep`

use std::collections::BTreeMap;

use qml_core::graph::{cut_value_of_bitstring, cycle};
use qml_core::prelude::*;
use qml_core::service::{QmlService, ServiceConfig, SweepRequest};
use qml_core::types::ParamValue;

fn main() -> std::result::Result<(), QmlError> {
    let graph = cycle(4);
    let service = QmlService::with_config(ServiceConfig::with_workers(4));

    // Tenant "optimizer": one symbolic QAOA intent, nine angle points. The
    // bundle ships once; the service binds each grid point server-side.
    let template = qaoa_maxcut_program(&graph, &QaoaSchedule::Symbolic { layers: 1 })?;
    let mut scan =
        SweepRequest::new("angle-scan", template).with_context(ContextDescriptor::for_gate(
            ExecConfig::new("gate.aer_simulator")
                .with_samples(512)
                .with_seed(42)
                .with_target(Target::ring(4)),
        ));
    for gi in 1..=3 {
        for bi in 1..=3 {
            let mut bindings = BTreeMap::new();
            bindings.insert(
                "gamma_0".to_string(),
                ParamValue::Float(std::f64::consts::PI * gi as f64 / 4.0),
            );
            bindings.insert(
                "beta_0".to_string(),
                ParamValue::Float(std::f64::consts::FRAC_PI_2 * bi as f64 / 4.0),
            );
            scan = scan.with_binding_set(bindings);
        }
    }
    let scan_batch = service.submit_sweep("optimizer", scan)?;

    // Drain the scan on its own first: all nine points share one SYMBOLIC
    // program, so the parametric plan transpiles once and is re-bound per
    // point (1 miss, 8 hits).
    let scan_report = service.run_pending();
    let scan_stats = service.metrics().gate_cache;
    println!(
        "angle-scan gate-plan cache: misses={} hits={} entries={} evictions={}",
        scan_stats.misses, scan_stats.hits, scan_stats.entries, scan_stats.evictions
    );
    println!(
        "angle-scan drain: {} jobs ({:.0} jobs/s)",
        scan_report.jobs, scan_report.jobs_per_second
    );

    // Tenant "restarts": one fixed program, eight seeds — a sweep that
    // transpiles exactly once thanks to the shared cache.
    let fixed = qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))?;
    let mut restarts = SweepRequest::new("restarts", fixed);
    for seed in 0..8 {
        restarts = restarts.with_context(ContextDescriptor::for_gate(
            ExecConfig::new("gate.aer_simulator")
                .with_samples(512)
                .with_seed(seed)
                .with_target(Target::ring(4)),
        ));
    }
    service.submit_sweep("restarts", restarts)?;

    println!(
        "queue depth before drain: {}",
        service.metrics().queue_depth
    );
    let report = service.run_pending();
    println!(
        "drained {} jobs on {} workers in {:.1} ms ({:.0} jobs/s, {} stolen)",
        report.jobs,
        report.workers,
        report.wall_seconds * 1e3,
        report.jobs_per_second,
        report.stolen,
    );

    // Best angle point of the scan.
    let mut best = (0usize, f64::MIN);
    for (i, job) in service.batch_jobs(scan_batch).into_iter().enumerate() {
        let result = service.result(job).expect("scan job completed");
        let cut = result.expectation(|w| cut_value_of_bitstring(&graph, w));
        if cut > best.1 {
            best = (i, cut);
        }
    }
    println!(
        "best scan point: #{} with expected cut {:.2}",
        best.0, best.1
    );

    let metrics = service.metrics();
    println!(
        "cache: {} hits / {} misses (hit rate {:.2})",
        metrics.cache.hits,
        metrics.cache.misses,
        metrics.cache.hit_rate(),
    );
    for (backend, util) in &metrics.per_backend {
        println!(
            "backend {backend}: {} jobs, {:.1} ms busy",
            util.jobs,
            util.busy_seconds * 1e3
        );
    }
    for (tenant, stats) in &metrics.per_tenant {
        println!(
            "tenant {tenant}: {} submitted, {} completed, {} failed",
            stats.submitted, stats.completed, stats.failed
        );
    }
    Ok(())
}
