//! Listing 1–3 reproduction: the 10-qubit QFT motivational example expressed
//! through the middle layer instead of a backend-specific SDK.
//!
//! The program declares a typed phase register (Listing 2), asks for a
//! `QFT_TEMPLATE` with an explicit result schema and cost hint (Listing 3),
//! and executes it under the Listing 4 context — Aer-like simulator, basis
//! `[sx, rz, cx]`, linear 10-qubit coupling map, optimization level 2 —
//! comparing the descriptor's cost hint against the transpiled reality.
//!
//! Run with: `cargo run --release --example qft_phase`

use qml_core::prelude::*;

fn main() -> Result<()> {
    // Intent (Listings 2 + 3): a 10-carrier phase register plus QFT + measure.
    let bundle = qft_program(10, QftParams::default())?;
    println!("--- quantum data type (Listing 2) ---");
    println!(
        "{}",
        serde_json::to_string_pretty(&bundle.data_types[0]).unwrap()
    );
    println!("\n--- QFT operator descriptor (Listing 3) ---");
    println!(
        "{}",
        serde_json::to_string_pretty(&bundle.operators[0]).unwrap()
    );

    let descriptor_hint = bundle.operators[0].cost_hint.unwrap();

    // Policy (Listing 4): Aer-like engine, 10 000 shots as in Listing 1,
    // basis [sx, rz, cx], linear coupling 0-1-…-9, optimization level 2.
    let context = ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(10_000)
            .with_seed(42)
            .with_target(Target::linear(10))
            .with_optimization_level(2),
    );
    let job = bundle.with_context(context);

    let runtime = Runtime::with_default_backends();
    let id = runtime.submit(job)?;
    let result = runtime.run_job(id)?;

    println!(
        "\n--- execution ({} shots on {}) ---",
        result.shots, result.engine
    );
    let metrics = result.gate_metrics.unwrap();
    println!(
        "descriptor cost hint : twoq = {:?}, depth = {:?}",
        descriptor_hint.twoq, descriptor_hint.depth
    );
    println!(
        "transpiled reality   : twoq = {}, depth = {}, total gates = {}, swaps inserted = {}",
        metrics.two_qubit_gates, metrics.depth, metrics.total_gates, metrics.swaps_inserted
    );

    // The QFT of |0…0⟩ is the uniform distribution over all 1024 phases: the
    // decoded phases should cover the full circle roughly evenly.
    println!(
        "\ndistinct outcomes observed: {} of 1024",
        result.counts.len()
    );
    println!("a few decoded phase readouts (AS_PHASE, phase_scale = 1/1024):");
    for (word, _) in result.top_k(5) {
        if let Some(qml_core::types::DecodedValue::Phase { index, fraction }) =
            result.decoded.decoded.get(&word)
        {
            println!("  {word}  ->  index {index:4}  phase {:.4} turns", fraction);
        }
    }
    let max_p = result.top_k(1).first().map(|(_, p)| *p).unwrap_or_default();
    println!("\nmost likely single outcome has p = {max_p:.4} (uniform would be ~0.001)");
    Ok(())
}
