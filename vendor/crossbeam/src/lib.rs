//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::scope` with the 0.8 call shape (`scope(|s| ...)` →
//! `Result`, spawn closures taking `&Scope`) implemented over
//! `std::thread::scope`. A child-thread panic propagates out of `scope` as a
//! panic (std semantics) instead of an `Err`, which is strictly stricter —
//! every caller in this workspace immediately `.expect()`s the result anyway.

use std::thread;

/// Scope handle passed to [`scope`] closures.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives the scope handle again,
    /// mirroring crossbeam's signature (commonly ignored as `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: for<'s> FnOnce(&Scope<'s, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || {
                let rescope = Scope { inner };
                f(&rescope)
            }),
        }
    }
}

/// Handle to a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread to finish.
    pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
        self.inner.join()
    }
}

/// Run a closure with a scope in which borrowing, scoped threads can be
/// spawned; returns once all of them have finished.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| {
        let wrapper = Scope { inner: s };
        f(&wrapper)
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }
}
