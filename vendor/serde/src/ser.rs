//! Serialization error trait, mirroring `serde::ser`.

use std::fmt::Display;

/// Trait every serializer error type implements.
pub trait Error: Sized {
    /// Build an error from any displayable message.
    fn custom<T: Display>(msg: T) -> Self;
}

pub use crate::Serializer;
