//! Deserialization error trait, mirroring `serde::de`.

use std::fmt::Display;

/// Trait every deserializer error type implements.
pub trait Error: Sized {
    /// Build an error from any displayable message.
    fn custom<T: Display>(msg: T) -> Self;
}

pub use crate::Deserializer;
