//! Offline stand-in for `serde`.
//!
//! The real crates.io registry is unreachable in this build environment, so
//! this crate provides a drop-in replacement for the subset of serde that the
//! workspace uses. It keeps serde's *surface* — `Serialize`/`Deserialize`
//! traits with `Serializer`/`Deserializer` type parameters, `serde::de::Error`
//! / `serde::ser::Error`, and the derive macros — but replaces the streaming
//! data model with a simple owned [`value::Value`] tree, which is all a JSON
//! (de)serializer needs.

pub mod de;
pub mod ser;
pub mod value;

mod impls;

pub use serde_derive::{Deserialize, Serialize};

use value::Value;

/// A type that can be serialized through any [`Serializer`].
pub trait Serialize {
    /// Serialize `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A serialization sink. Implementations consume a [`Value`] tree.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: ser::Error;

    /// Consume a complete value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Serialize a string (convenience used by hand-written impls).
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::String(v.to_owned()))
    }
}

/// A type that can be deserialized through any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserialize an instance.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A deserialization source. Implementations surrender a [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;

    /// Surrender the complete value tree.
    fn take_value(self) -> Result<Value, Self::Error>;
}
