//! `Serialize`/`Deserialize` implementations for std types.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::de::Error as DeError;
use crate::ser::Error as SerError;
use crate::value::{from_value_any, to_value_any, Value};
use crate::{Deserialize, Deserializer, Serialize, Serializer};

// ---------------------------------------------------------------------------
// References
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

// ---------------------------------------------------------------------------
// Value itself
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.take_value()
    }
}

// ---------------------------------------------------------------------------
// Scalars
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(D::Error::custom(format!(
                "expected boolean, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::I64(*self as i64))
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.take_value()?;
                value
                    .as_i64()
                    .and_then(|x| <$ty>::try_from(x).ok())
                    .ok_or_else(|| {
                        D::Error::custom(format!(
                            "expected {} integer, found {}",
                            stringify!($ty),
                            value.kind()
                        ))
                    })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let wide = *self as u64;
                if let Ok(narrow) = i64::try_from(wide) {
                    serializer.serialize_value(Value::I64(narrow))
                } else {
                    serializer.serialize_value(Value::U64(wide))
                }
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.take_value()?;
                value
                    .as_u64()
                    .and_then(|x| <$ty>::try_from(x).ok())
                    .ok_or_else(|| {
                        D::Error::custom(format!(
                            "expected {} integer, found {}",
                            stringify!($ty),
                            value.kind()
                        ))
                    })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::F64(*self as f64))
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.take_value()?;
                value.as_f64().map(|x| x as $ty).ok_or_else(|| {
                    D::Error::custom(format!(
                        "expected number, found {}",
                        value.kind()
                    ))
                })
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::String(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(D::Error::custom(format!(
                "expected single-character string, found {}",
                other.kind()
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::String(s) => Ok(s),
            other => Err(D::Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Option
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_value(Value::Null),
            Some(inner) => inner.serialize(serializer),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(None),
            other => from_value_any(other).map(Some),
        }
    }
}

// ---------------------------------------------------------------------------
// Sequences
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut items = Vec::with_capacity(self.len());
        for item in self {
            items.push(to_value_any(item).map_err(S::Error::custom)?);
        }
        serializer.serialize_value(Value::Array(items))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Array(items) => items.into_iter().map(from_value_any).collect(),
            other => Err(D::Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut items = Vec::with_capacity(self.len());
        for item in self {
            items.push(to_value_any(item).map_err(S::Error::custom)?);
        }
        serializer.serialize_value(Value::Array(items))
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Array(items) => items.into_iter().map(from_value_any).collect(),
            other => Err(D::Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) => $len:literal,)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items = vec![$(to_value_any(&self.$idx).map_err(S::Error::custom)?),+];
                serializer.serialize_value(Value::Array(items))
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.take_value()? {
                    Value::Array(items) if items.len() == $len => {
                        let mut iter = items.into_iter();
                        Ok(($( { let _ = $idx; from_value_any::<$name, D::Error>(iter.next().unwrap())? }, )+))
                    }
                    other => Err(D::Error::custom(format!(
                        "expected {}-element array, found {}",
                        $len,
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0) => 1,
    (A: 0, B: 1) => 2,
    (A: 0, B: 1, C: 2) => 3,
    (A: 0, B: 1, C: 2, E: 3) => 4,
}

// ---------------------------------------------------------------------------
// Maps
//
// String-keyed maps round-trip as JSON objects. Maps with structured keys
// (e.g. `BTreeMap<(usize, usize), f64>`) serialize as arrays of `[key, value]`
// pairs; deserialization accepts either form.
// ---------------------------------------------------------------------------

fn map_to_value<'a, K, V, I>(entries: I, len: usize) -> Result<Value, crate::value::ValueError>
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut keys = Vec::with_capacity(len);
    let mut values = Vec::with_capacity(len);
    let mut all_strings = true;
    for (k, v) in entries {
        let key = to_value_any(k)?;
        all_strings &= matches!(key, Value::String(_));
        keys.push(key);
        values.push(to_value_any(v)?);
    }
    if all_strings {
        let members = keys
            .into_iter()
            .zip(values)
            .map(|(k, v)| match k {
                Value::String(s) => (s, v),
                _ => unreachable!(),
            })
            .collect();
        Ok(Value::Object(members))
    } else {
        let pairs = keys
            .into_iter()
            .zip(values)
            .map(|(k, v)| Value::Array(vec![k, v]))
            .collect();
        Ok(Value::Array(pairs))
    }
}

fn map_from_value<'de, K, V, M, E>(value: Value) -> Result<M, E>
where
    K: Deserialize<'de>,
    V: Deserialize<'de>,
    M: FromIterator<(K, V)>,
    E: DeError,
{
    match value {
        Value::Object(members) => members
            .into_iter()
            .map(|(k, v)| {
                Ok((
                    from_value_any::<K, E>(Value::String(k))?,
                    from_value_any::<V, E>(v)?,
                ))
            })
            .collect(),
        Value::Array(pairs) => pairs
            .into_iter()
            .map(|pair| match pair {
                Value::Array(mut kv) if kv.len() == 2 => {
                    let v = kv.pop().unwrap();
                    let k = kv.pop().unwrap();
                    Ok((from_value_any::<K, E>(k)?, from_value_any::<V, E>(v)?))
                }
                other => Err(E::custom(format!(
                    "expected [key, value] pair, found {}",
                    other.kind()
                ))),
            })
            .collect(),
        other => Err(E::custom(format!("expected map, found {}", other.kind()))),
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let value = map_to_value(self.iter(), self.len()).map_err(S::Error::custom)?;
        serializer.serialize_value(value)
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        map_from_value(deserializer.take_value()?)
    }
}

impl<K, V, St> Serialize for HashMap<K, V, St>
where
    K: Serialize + Eq + std::hash::Hash,
    V: Serialize,
{
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let value = map_to_value(self.iter(), self.len()).map_err(S::Error::custom)?;
        serializer.serialize_value(value)
    }
}

impl<'de, K, V> Deserialize<'de> for HashMap<K, V>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        map_from_value(deserializer.take_value()?)
    }
}

// ---------------------------------------------------------------------------
// Unit
// ---------------------------------------------------------------------------

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Null)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let _ = deserializer.take_value()?;
        Ok(())
    }
}
