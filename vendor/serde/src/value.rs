//! The owned value tree this serde stand-in uses as its data model, plus the
//! bridging serializer/deserializer the derive macros generate calls to.

use std::fmt;
use std::marker::PhantomData;

use crate::{de, ser, Deserialize, Deserializer, Serialize, Serializer};

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also stands in for "missing field").
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer that does not fit in `i64`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Member lookup; `Null` when absent or not an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string slice if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(x) => Some(*x as f64),
            Value::U64(x) => Some(*x as f64),
            Value::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::I64(x) if *x >= 0 => Some(*x as u64),
            Value::U64(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(x) => Some(*x),
            Value::U64(x) => i64::try_from(*x).ok(),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::value::print::compact(self))
    }
}

/// Error produced when bridging through the value tree.
#[derive(Debug, Clone)]
pub struct ValueError(pub String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

impl ser::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

impl de::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

/// Serializer with `Ok = Value`: captures a value tree from any `Serialize`.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;
    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// Deserializer reading from an owned value tree, generic over the caller's
/// error type.
pub struct ValueDeserializer<E> {
    value: Value,
    _marker: PhantomData<E>,
}

impl<E> ValueDeserializer<E> {
    /// Wrap a value tree.
    pub fn new(value: Value) -> Self {
        ValueDeserializer {
            value,
            _marker: PhantomData,
        }
    }
}

impl<'de, E: de::Error> Deserializer<'de> for ValueDeserializer<E> {
    type Error = E;
    fn take_value(self) -> Result<Value, E> {
        Ok(self.value)
    }
}

/// Serialize anything into a value tree.
pub fn to_value_any<T: Serialize + ?Sized>(value: &T) -> Result<Value, ValueError> {
    value.serialize(ValueSerializer)
}

/// Deserialize anything out of a value tree, with the caller's error type.
pub fn from_value_any<'de, T: Deserialize<'de>, E: de::Error>(value: Value) -> Result<T, E> {
    T::deserialize(ValueDeserializer::<E>::new(value))
}

pub(crate) mod print {
    use super::Value;

    pub fn escape_into(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                '\u{08}' => out.push_str("\\b"),
                '\u{0c}' => out.push_str("\\f"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn number_f64(x: f64) -> String {
        if x.is_finite() {
            format!("{x:?}")
        } else {
            // JSON has no non-finite literals; real serde_json rejects them,
            // we print null to stay total.
            "null".to_string()
        }
    }

    pub fn compact(value: &Value) -> String {
        let mut out = String::new();
        write_compact(value, &mut out);
        out
    }

    fn write_compact(value: &Value, out: &mut String) {
        match value {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::I64(x) => out.push_str(&x.to_string()),
            Value::U64(x) => out.push_str(&x.to_string()),
            Value::F64(x) => out.push_str(&number_f64(*x)),
            Value::String(s) => escape_into(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_compact(item, out);
                }
                out.push(']');
            }
            Value::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    write_compact(v, out);
                }
                out.push('}');
            }
        }
    }
}
