//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Size specification for collections: an exact length or a length range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Build a vector strategy: `vec(element_strategy, len)` or
/// `vec(element_strategy, lo..hi)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
