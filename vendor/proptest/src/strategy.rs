//! Strategies: deterministic random value generators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;
use rand::Rng;

/// A random-value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then a dependent strategy from it.
    fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying a predicate (retrying a bounded number of
    /// times, then panicking).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
    fn sample(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// `prop_filter` adapter.
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.inner.sample(rng);
            if (self.f)(&value) {
                return value;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates", self.whence);
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Type-erased strategy sampler (used by `prop_oneof!`).
pub type BoxedSample<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Erase a strategy into a sampling closure.
pub fn boxed<S: Strategy + 'static>(strategy: S) -> BoxedSample<S::Value> {
    Box::new(move |rng| strategy.sample(rng))
}

/// Uniform choice between several strategies of the same value type.
pub struct Union<T> {
    options: Vec<BoxedSample<T>>,
}

impl<T> Union<T> {
    /// Build from erased options (at least one).
    pub fn new(options: Vec<BoxedSample<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        (self.options[idx])(rng)
    }
}

/// Strategy for any value of a type with a canonical distribution.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Types with a canonical strategy.
pub trait Arbitrary {
    /// Generate a canonical random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// Ranges as strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// ---------------------------------------------------------------------------
// Tuples of strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+),)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
}

// ---------------------------------------------------------------------------
// String patterns as strategies
// ---------------------------------------------------------------------------

/// `&str` patterns like `"[a-z]{1,8}"` act as string strategies: a character
/// class followed by a repetition count. Unparseable patterns fall back to
/// short alphanumeric strings.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_pattern(self).unwrap_or_else(|| {
            (
                "abcdefghijklmnopqrstuvwxyz0123456789".chars().collect(),
                1,
                8,
            )
        });
        let len = rng.gen_range(lo..=hi.max(lo));
        (0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }
}

fn parse_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut chars = Vec::new();
    let class_chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < class_chars.len() {
        if i + 2 < class_chars.len() && class_chars[i + 1] == '-' {
            let (a, b) = (class_chars[i], class_chars[i + 2]);
            for c in a..=b {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(class_chars[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((chars, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn pattern_strategy_respects_class_and_length() {
        let mut rng = TestRng::for_case("pattern", 0);
        for _ in 0..100 {
            let s = "[a-z]{1,8}".sample(&mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn union_samples_every_option_eventually() {
        let u = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::for_case("union", 0);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(u.sample(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
