//! Test-runner configuration, case errors, and the deterministic RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Deterministic per-case RNG: seeded from the test's module path and the
/// case index, so failures reproduce across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for one case of one named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        seed ^= u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
