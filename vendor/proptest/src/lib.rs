//! Offline stand-in for `proptest`.
//!
//! Runs each property over `cases` deterministically seeded random inputs.
//! Supports the strategy surface this workspace uses: numeric ranges, tuples
//! of strategies, `Just`, `any::<bool>()`, `prop_oneof!`, simple `[class]{a,b}`
//! string patterns, `collection::vec`, `prop_map`, `prop_flat_map`, and the
//! `proptest! { ... }` / `prop_assert*` / `prop_assume!` macros. No input
//! shrinking: a failing case reports its inputs via `Debug` and panics.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Skip the current case unless an assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Pick uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// Define property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn name(x in 0u64..10, v in collection::vec(any::<bool>(), 3)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $config; $($rest)*);
    };
    (@run $config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                let max_attempts = config.cases.saturating_mul(16).max(64);
                while accepted < config.cases && attempts < max_attempts {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        attempts,
                    );
                    attempts += 1;
                    $(let $arg = $crate::strategy::Strategy::sample(&$strategy, &mut rng);)*
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case failed: {}\ninputs: {:?}",
                                msg,
                                ($(&$arg,)*)
                            );
                        }
                    }
                }
                assert!(
                    accepted > 0,
                    "proptest: every generated case was rejected by prop_assume!"
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}
