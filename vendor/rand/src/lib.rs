//! Offline stand-in for `rand`.
//!
//! Provides the subset of the rand 0.8 surface this workspace uses:
//! `Rng::gen`, `Rng::gen_range`, `SeedableRng::seed_from_u64`, and
//! `rngs::StdRng` (implemented as xoshiro256**, seeded via splitmix64).
//! Deterministic per seed, which is exactly what the seeded experiments
//! require; it makes no cryptographic claims.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling interface layered over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type (`bool`, floats,
    /// integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a canonical "standard" distribution.
pub trait Standard {
    /// Sample from the standard distribution.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be sampled from.
pub trait SampleRange<T> {
    /// Sample uniformly from this range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$ty as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$ty as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard RNG: xoshiro256** seeded through splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4000..6000).contains(&heads), "{heads}");
    }
}
