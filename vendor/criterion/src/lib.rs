//! Offline stand-in for `criterion`.
//!
//! Implements the macro/API surface the bench targets use —
//! `criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `group.sample_size`, `group.bench_function`, `b.iter` — measuring with
//! plain wall-clock timing and printing mean/min per-iteration times. It has
//! no statistical machinery; it exists so `cargo bench` runs offline.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Top-level benchmark context.
pub struct Criterion {
    default_sample_size: usize,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `--quick` (also used by `cargo test --benches` smoke runs) drops to
        // a single timed iteration per benchmark.
        let quick = std::env::args().any(|a| a == "--quick" || a == "--test");
        Criterion {
            default_sample_size: 10,
            quick,
        }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            quick: self.quick,
            _criterion: self,
        }
    }

    /// Benchmark a function directly (singleton group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let quick = self.quick;
        let sample_size = self.default_sample_size;
        run_benchmark(name.as_ref(), sample_size, quick, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    quick: bool,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark one function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        run_benchmark(&full, self.sample_size, self.quick, f);
        self
    }

    /// Finish the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measure one sample: the total wall-clock time of
    /// `iters_per_sample` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std_black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, quick: bool, mut f: F) {
    let samples = if quick { 1 } else { sample_size };
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples),
        iters_per_sample: 1,
    };
    // Warm-up + calibration sample.
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name}: benchmark closure never called Bencher::iter");
        return;
    }
    bencher.samples.clear();
    for _ in 0..samples {
        f(&mut bencher);
    }
    let total: Duration = bencher.samples.iter().sum();
    let n = bencher.samples.len().max(1) as u32;
    let mean = total / n;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "bench: {name:<50} mean {:>12} min {:>12} ({} samples)",
        format_duration(mean),
        format_duration(min),
        n,
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Define a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
