//! Offline stand-in for `rayon`.
//!
//! Implements the parallel-iterator surface this workspace actually uses —
//! `par_chunks_mut(..).for_each`, `par_iter_mut().enumerate().for_each`, and
//! `(a..b).into_par_iter().{map,filter}().collect()` — with real data
//! parallelism over `std::thread::scope`, splitting work into one contiguous
//! block per available core. Results preserve input order exactly like rayon.

use std::num::NonZeroUsize;
use std::thread;

fn num_threads() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(16)
}

/// Split `len` items into at most `num_threads()` contiguous `(start, end)`
/// blocks.
fn blocks(len: usize) -> Vec<(usize, usize)> {
    let workers = num_threads().min(len.max(1));
    let base = len / workers;
    let extra = len % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        out.push((start, start + size));
        start += size;
    }
    out
}

/// Index types parallel ranges can iterate over.
pub trait ParIndex: Copy + Send + Sync {
    /// Convert to a usize offset count.
    fn to_usize(self) -> usize;
    /// Rebuild from a usize offset count.
    fn from_usize(value: usize) -> Self;
}

impl ParIndex for usize {
    fn to_usize(self) -> usize {
        self
    }
    fn from_usize(value: usize) -> Self {
        value
    }
}

impl ParIndex for u64 {
    fn to_usize(self) -> usize {
        usize::try_from(self).expect("index fits in usize")
    }
    fn from_usize(value: usize) -> Self {
        value as u64
    }
}

/// Parallel iterator over an index range, optionally filtered and mapped.
pub struct ParRange<I: ParIndex = usize> {
    start: I,
    end: I,
}

impl<I: ParIndex> ParRange<I> {
    fn bounds(&self) -> (usize, usize) {
        let start = self.start.to_usize();
        let end = self.end.to_usize().max(start);
        (start, end)
    }

    /// Filter: keep indices satisfying the predicate.
    pub fn filter<P: Fn(&I) -> bool + Sync>(self, predicate: P) -> ParRangeFilter<I, P> {
        ParRangeFilter {
            range: self,
            predicate,
        }
    }

    /// Map each index through `f`.
    pub fn map<T, F: Fn(I) -> T + Sync>(self, f: F) -> ParRangeMap<I, F> {
        ParRangeMap { range: self, f }
    }

    /// Run `f` for every index.
    pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
        self.map(f).collect::<(), Vec<()>>();
    }
}

/// A filtered [`ParRange`].
pub struct ParRangeFilter<I: ParIndex, P> {
    range: ParRange<I>,
    predicate: P,
}

impl<I: ParIndex, P: Fn(&I) -> bool + Sync> ParRangeFilter<I, P> {
    /// Collect the surviving indices in order.
    pub fn collect<C: FromParVec<I>>(self) -> C {
        let (start, end) = self.range.bounds();
        let predicate = &self.predicate;
        let chunks = run_blocks(end - start, move |(lo, hi)| {
            (start + lo..start + hi)
                .map(I::from_usize)
                .filter(|i| predicate(i))
                .collect::<Vec<I>>()
        });
        C::from_par_vec(chunks.into_iter().flatten().collect())
    }
}

/// A mapped [`ParRange`].
pub struct ParRangeMap<I: ParIndex, F> {
    range: ParRange<I>,
    f: F,
}

impl<I: ParIndex, F> ParRangeMap<I, F> {
    /// Collect the mapped values in index order.
    pub fn collect<T, C>(self) -> C
    where
        F: Fn(I) -> T + Sync,
        T: Send,
        C: FromParVec<T>,
    {
        let (start, end) = self.range.bounds();
        let f = &self.f;
        let chunks = run_blocks(end - start, move |(lo, hi)| {
            (start + lo..start + hi)
                .map(|i| f(I::from_usize(i)))
                .collect::<Vec<T>>()
        });
        C::from_par_vec(chunks.into_iter().flatten().collect())
    }
}

/// Execute one closure per block of `len` items, returning per-block results
/// in block order.
fn run_blocks<T: Send>(len: usize, work: impl Fn((usize, usize)) -> T + Sync) -> Vec<T> {
    let plan = blocks(len);
    if plan.len() <= 1 {
        return plan.into_iter().map(&work).collect();
    }
    let work = &work;
    thread::scope(|scope| {
        let handles: Vec<_> = plan
            .into_iter()
            .map(|block| scope.spawn(move || work(block)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon stub worker panicked"))
            .collect()
    })
}

/// Collection targets for parallel collects.
pub trait FromParVec<T> {
    /// Build from an ordered Vec.
    fn from_par_vec(items: Vec<T>) -> Self;
}

impl<T> FromParVec<T> for Vec<T> {
    fn from_par_vec(items: Vec<T>) -> Self {
        items
    }
}

/// Parallel mutable slice iterator (`par_iter_mut`).
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Pair each element with its index.
    pub fn enumerate(self) -> ParIterMutEnumerate<'a, T> {
        ParIterMutEnumerate { slice: self.slice }
    }

    /// Run `f` on every element in parallel.
    pub fn for_each<F: Fn(&mut T) + Sync>(self, f: F) {
        par_for_each_indexed(self.slice, 0, &|(_i, item)| f(item));
    }
}

/// Enumerated [`ParIterMut`].
pub struct ParIterMutEnumerate<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMutEnumerate<'a, T> {
    /// Run `f` on every `(index, element)` pair in parallel.
    pub fn for_each<F: Fn((usize, &mut T)) + Sync>(self, f: F) {
        par_for_each_indexed(self.slice, 0, &f);
    }
}

fn par_for_each_indexed<T: Send, F: Fn((usize, &mut T)) + Sync>(
    slice: &mut [T],
    offset: usize,
    f: &F,
) {
    let len = slice.len();
    let plan = blocks(len);
    if plan.len() <= 1 {
        for (i, item) in slice.iter_mut().enumerate() {
            f((offset + i, item));
        }
        return;
    }
    thread::scope(|scope| {
        let mut rest = slice;
        let mut consumed = 0;
        for (lo, hi) in plan {
            let (head, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            let base = offset + consumed;
            consumed += hi - lo;
            scope.spawn(move || {
                for (i, item) in head.iter_mut().enumerate() {
                    f((base + i, item));
                }
            });
        }
    });
}

/// Parallel mutable chunk iterator (`par_chunks_mut`).
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Run `f` on every chunk in parallel.
    pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
        let chunk = self.chunk;
        let total_chunks = self.slice.len().div_ceil(chunk.max(1));
        let plan = blocks(total_chunks);
        if plan.len() <= 1 {
            for piece in self.slice.chunks_mut(chunk) {
                f(piece);
            }
            return;
        }
        let f = &f;
        thread::scope(|scope| {
            let mut rest = self.slice;
            for (lo, hi) in plan {
                let take = ((hi - lo) * chunk).min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                rest = tail;
                scope.spawn(move || {
                    for piece in head.chunks_mut(chunk) {
                        f(piece);
                    }
                });
            }
        });
    }
}

/// Extension traits mirroring `rayon::prelude`.
pub mod prelude {
    use super::*;

    /// `into_par_iter()` for index ranges.
    pub trait IntoParallelIterator {
        /// The parallel iterator type.
        type Iter;
        /// Convert into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: ParIndex> IntoParallelIterator for std::ops::Range<I> {
        type Iter = ParRange<I>;
        fn into_par_iter(self) -> ParRange<I> {
            ParRange {
                start: self.start,
                end: self.end,
            }
        }
    }

    /// `par_iter_mut()` for slices and vectors.
    pub trait IntoParallelRefMutIterator<'a> {
        /// Element type.
        type Item: 'a;
        /// The parallel iterator type.
        type Iter;
        /// Borrow as a parallel mutable iterator.
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Item = &'a mut T;
        type Iter = ParIterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
            ParIterMut { slice: self }
        }
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Item = &'a mut T;
        type Iter = ParIterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
            ParIterMut { slice: self }
        }
    }

    /// `par_chunks_mut()` for slices and vectors.
    pub trait ParallelSliceMut<T: Send> {
        /// Split into mutable chunks processed in parallel.
        fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T> {
            assert!(chunk > 0, "chunk size must be positive");
            ParChunksMut { slice: self, chunk }
        }
    }

    impl<T: Send> ParallelSliceMut<T> for Vec<T> {
        fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T> {
            self.as_mut_slice().par_chunks_mut(chunk)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_range_map_preserves_order() {
        let squares: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        assert!(squares.windows(2).all(|w| w[0] < w[1] || w[0] == 0));
        assert_eq!(squares[31], 961);
    }

    #[test]
    fn par_range_filter_preserves_order() {
        let evens: Vec<usize> = (0..100usize)
            .into_par_iter()
            .filter(|i| i % 2 == 0)
            .collect();
        assert_eq!(evens, (0..100).filter(|i| i % 2 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_enumerate_touches_every_element() {
        let mut data = vec![0usize; 257];
        data.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = i + 1);
        assert!(data.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    fn par_chunks_mut_covers_whole_slice() {
        let mut data = vec![0u8; 103];
        data.par_chunks_mut(10).for_each(|chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert!(data.iter().all(|&x| x == 1));
    }
}
