//! Offline stand-in for `serde_derive`.
//!
//! Derives `Serialize`/`Deserialize` for the vendored, value-based `serde`
//! facade in `vendor/serde`. Supports the subset of serde attributes this
//! workspace uses: `rename`, `default`, `default = "path"`,
//! `skip_serializing_if = "path"`, `flatten`, `transparent`, `untagged`,
//! and `deny_unknown_fields`, over named/tuple/unit structs and enums with
//! unit, newtype, tuple, and struct variants. No generics.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

#[derive(Default, Clone)]
struct ContainerAttrs {
    untagged: bool,
    transparent: bool,
    deny_unknown_fields: bool,
}

#[derive(Clone)]
enum DefaultAttr {
    None,
    Std,
    Path(String),
}

#[derive(Clone)]
struct Field {
    ident: String,
    ty: String,
    rename: Option<String>,
    default: DefaultAttr,
    skip_if: Option<String>,
    flatten: bool,
}

impl Field {
    fn json_name(&self) -> String {
        self.rename.clone().unwrap_or_else(|| self.ident.clone())
    }
    fn is_option(&self) -> bool {
        let t = self.ty.replace(' ', "");
        t.starts_with("Option<")
            || t.starts_with("::core::option::Option<")
            || t.starts_with("core::option::Option<")
            || t.starts_with("std::option::Option<")
    }
}

#[derive(Clone)]
enum Shape {
    Unit,
    Newtype(String),
    Tuple(Vec<String>),
    Named(Vec<Field>),
}

#[derive(Clone)]
struct Variant {
    ident: String,
    rename: Option<String>,
    shape: Shape,
}

impl Variant {
    fn json_name(&self) -> String {
        self.rename.clone().unwrap_or_else(|| self.ident.clone())
    }
}

enum Item {
    Struct(String, ContainerAttrs, Shape),
    Enum(String, ContainerAttrs, Vec<Variant>),
}

// ---------------------------------------------------------------------------
// Attribute parsing
// ---------------------------------------------------------------------------

/// Serde attribute directives collected from one or more `#[serde(...)]`.
#[derive(Default)]
struct SerdeDirectives {
    rename: Option<String>,
    default: Option<Option<String>>,
    skip_if: Option<String>,
    flatten: bool,
    untagged: bool,
    transparent: bool,
    deny_unknown_fields: bool,
}

fn literal_string(tok: &TokenTree) -> String {
    let text = tok.to_string();
    let inner = text.trim_start_matches('"').trim_end_matches('"');
    // Un-escape the common cases appearing in attribute strings.
    inner.replace("\\\"", "\"").replace("\\\\", "\\")
}

fn parse_serde_group(group: &proc_macro::Group, out: &mut SerdeDirectives) {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            _ => {
                i += 1;
                continue;
            }
        };
        let mut value: Option<String> = None;
        if i + 2 < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i + 1] {
                if p.as_char() == '=' {
                    value = Some(literal_string(&tokens[i + 2]));
                    i += 2;
                }
            }
        }
        match name.as_str() {
            "rename" => out.rename = value.clone(),
            "default" => out.default = Some(value.clone()),
            "skip_serializing_if" => out.skip_if = value.clone(),
            "flatten" => out.flatten = true,
            "untagged" => out.untagged = true,
            "transparent" => out.transparent = true,
            "deny_unknown_fields" => out.deny_unknown_fields = true,
            // rename_all / bound / tag / crate — not used in this workspace.
            _ => {}
        }
        i += 1;
        // Skip separating comma if present.
        if i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                }
            }
        }
    }
}

/// Consume a `#[...]` attribute starting at `i` (pointing at `#`). Returns the
/// new index; records serde directives when the attribute is `serde(...)`.
fn consume_attribute(tokens: &[TokenTree], i: usize, out: &mut SerdeDirectives) -> usize {
    debug_assert!(matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#'));
    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
        if g.delimiter() == Delimiter::Bracket {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        parse_serde_group(args, out);
                    }
                }
            }
            return i + 2;
        }
    }
    i + 1
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Split a token list on top-level commas, tracking `<...>` nesting depth.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth: i32 = 0;
    for tok in tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if !current.is_empty() {
                        out.push(std::mem::take(&mut current));
                    }
                    continue;
                }
                _ => {}
            }
        }
        current.push(tok.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    let stream: TokenStream = tokens.iter().cloned().collect();
    stream.to_string()
}

/// Parse the fields of a named-field group `{ ... }`.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut directives = SerdeDirectives::default();
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == '#' {
                    i = consume_attribute(&tokens, i, &mut directives);
                    continue;
                }
            }
            break;
        }
        if i >= tokens.len() {
            break;
        }
        i = skip_visibility(&tokens, i);
        let ident = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected field name, found `{other}`"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde_derive stub: expected `:` after field `{ident}`, found `{other}`")
            }
        }
        // Collect type tokens until a top-level comma.
        let mut ty_tokens = Vec::new();
        let mut angle_depth: i32 = 0;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            ty_tokens.push(tokens[i].clone());
            i += 1;
        }
        fields.push(Field {
            ident,
            ty: tokens_to_string(&ty_tokens),
            rename: directives.rename,
            default: match directives.default {
                None => DefaultAttr::None,
                Some(None) => DefaultAttr::Std,
                Some(Some(path)) => DefaultAttr::Path(path),
            },
            skip_if: directives.skip_if,
            flatten: directives.flatten,
        });
    }
    fields
}

/// Parse the types of a tuple group `( ... )`.
fn parse_tuple_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    split_top_level_commas(&tokens)
        .into_iter()
        .map(|entry| {
            // Strip attributes and visibility from each tuple field.
            let mut i = 0;
            let mut sink = SerdeDirectives::default();
            while i < entry.len() {
                if let TokenTree::Punct(p) = &entry[i] {
                    if p.as_char() == '#' {
                        i = consume_attribute(&entry, i, &mut sink);
                        continue;
                    }
                }
                break;
            }
            i = skip_visibility(&entry, i);
            tokens_to_string(&entry[i..])
        })
        .collect()
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut directives = SerdeDirectives::default();
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == '#' {
                    i = consume_attribute(&tokens, i, &mut directives);
                    continue;
                }
            }
            break;
        }
        if i >= tokens.len() {
            break;
        }
        let ident = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected variant name, found `{other}`"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                let types = parse_tuple_fields(g);
                if types.len() == 1 {
                    Shape::Newtype(types.into_iter().next().unwrap())
                } else {
                    Shape::Tuple(types)
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g))
            }
            _ => Shape::Unit,
        };
        // Skip trailing comma.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant {
            ident,
            rename: directives.rename,
            shape,
        });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut container = SerdeDirectives::default();
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            if p.as_char() == '#' {
                i = consume_attribute(&tokens, i, &mut container);
                continue;
            }
        }
        break;
    }
    i = skip_visibility(&tokens, i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, found `{other}`"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic type `{name}` is not supported");
        }
    }
    let attrs = ContainerAttrs {
        untagged: container.untagged,
        transparent: container.transparent,
        deny_unknown_fields: container.deny_unknown_fields,
    };
    match keyword.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let types = parse_tuple_fields(g);
                    if types.len() == 1 {
                        Shape::Newtype(types.into_iter().next().unwrap())
                    } else {
                        Shape::Tuple(types)
                    }
                }
                _ => Shape::Unit,
            };
            Item::Struct(name, attrs, shape)
        }
        "enum" => {
            let variants = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => parse_variants(g),
                other => panic!("serde_derive stub: malformed enum body: {other:?}"),
            };
            Item::Enum(name, attrs, variants)
        }
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Codegen helpers
// ---------------------------------------------------------------------------

const VALUE: &str = "serde::value::Value";
const TO_VALUE: &str = "serde::value::to_value_any";
const FROM_VALUE: &str = "serde::value::from_value_any";
const SER_ERR: &str = "serde::ser::Error::custom";
const DE_ERR: &str = "serde::de::Error::custom";

fn escape_str(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct(name, attrs, shape) => {
            let body = match shape {
                Shape::Named(fields) if attrs.transparent => {
                    let f = &fields[0];
                    format!(
                        "serializer.serialize_value({TO_VALUE}(&self.{id}).map_err({SER_ERR})?)",
                        id = f.ident
                    )
                }
                Shape::Named(fields) => ser_named_fields_body(fields, "self."),
                Shape::Newtype(_) => {
                    format!("serializer.serialize_value({TO_VALUE}(&self.0).map_err({SER_ERR})?)")
                }
                Shape::Tuple(types) => {
                    let elems: Vec<String> = (0..types.len())
                        .map(|i| format!("{TO_VALUE}(&self.{i}).map_err({SER_ERR})?"))
                        .collect();
                    format!(
                        "serializer.serialize_value({VALUE}::Array(::std::vec![{}]))",
                        elems.join(", ")
                    )
                }
                Shape::Unit => format!("serializer.serialize_value({VALUE}::Null)"),
            };
            wrap_serialize(name, &body)
        }
        Item::Enum(name, attrs, variants) => {
            let mut arms = Vec::new();
            for v in variants {
                let tag = escape_str(&v.json_name());
                let arm = match &v.shape {
                    Shape::Unit if attrs.untagged => format!(
                        "Self::{id} => serializer.serialize_value({VALUE}::Null),",
                        id = v.ident
                    ),
                    Shape::Unit => format!(
                        "Self::{id} => serializer.serialize_value({VALUE}::String(\"{tag}\".to_string())),",
                        id = v.ident
                    ),
                    Shape::Newtype(_) if attrs.untagged => format!(
                        "Self::{id}(f0) => serializer.serialize_value({TO_VALUE}(f0).map_err({SER_ERR})?),",
                        id = v.ident
                    ),
                    Shape::Newtype(_) => format!(
                        "Self::{id}(f0) => serializer.serialize_value({VALUE}::Object(::std::vec![(\"{tag}\".to_string(), {TO_VALUE}(f0).map_err({SER_ERR})?)])),",
                        id = v.ident
                    ),
                    Shape::Tuple(types) => {
                        let binders: Vec<String> =
                            (0..types.len()).map(|i| format!("f{i}")).collect();
                        let elems: Vec<String> = binders
                            .iter()
                            .map(|b| format!("{TO_VALUE}({b}).map_err({SER_ERR})?"))
                            .collect();
                        let payload = format!("{VALUE}::Array(::std::vec![{}])", elems.join(", "));
                        if attrs.untagged {
                            format!(
                                "Self::{id}({binds}) => serializer.serialize_value({payload}),",
                                id = v.ident,
                                binds = binders.join(", ")
                            )
                        } else {
                            format!(
                                "Self::{id}({binds}) => serializer.serialize_value({VALUE}::Object(::std::vec![(\"{tag}\".to_string(), {payload})])),",
                                id = v.ident,
                                binds = binders.join(", ")
                            )
                        }
                    }
                    Shape::Named(fields) => {
                        let binders: Vec<String> =
                            fields.iter().map(|f| f.ident.clone()).collect();
                        let inner = ser_named_fields_expr(fields, "");
                        if attrs.untagged {
                            format!(
                                "Self::{id} {{ {binds} }} => serializer.serialize_value({inner}),",
                                id = v.ident,
                                binds = binders.join(", ")
                            )
                        } else {
                            format!(
                                "Self::{id} {{ {binds} }} => serializer.serialize_value({VALUE}::Object(::std::vec![(\"{tag}\".to_string(), {inner})])),",
                                id = v.ident,
                                binds = binders.join(", ")
                            )
                        }
                    }
                };
                arms.push(arm);
            }
            let body = format!("match self {{ {} }}", arms.join("\n"));
            wrap_serialize(name, &body)
        }
    }
}

/// Object-building statements for named fields; `prefix` is `self.` or `` for
/// pattern binders. Returns a full `{ ...; serializer.serialize_value(...) }`.
fn ser_named_fields_body(fields: &[Field], prefix: &str) -> String {
    let expr = ser_named_fields_expr(fields, prefix);
    format!("serializer.serialize_value({expr})")
}

/// An expression evaluating to the `Value::Object` of the given fields.
fn ser_named_fields_expr(fields: &[Field], prefix: &str) -> String {
    let mut stmts = vec![format!(
        "let mut object: ::std::vec::Vec<(::std::string::String, {VALUE})> = ::std::vec::Vec::new();"
    )];
    for f in fields {
        let access = if prefix.is_empty() {
            format!("(&{})", f.ident)
        } else {
            format!("(&{}{})", prefix, f.ident)
        };
        if f.flatten {
            stmts.push(format!(
                "match {TO_VALUE}({access}).map_err({SER_ERR})? {{
                    {VALUE}::Object(m) => {{ for (k, v) in m {{ object.push((k, v)); }} }}
                    {VALUE}::Null => {{}}
                    _ => return ::core::result::Result::Err({SER_ERR}(\"can only flatten maps\")),
                }}"
            ));
            continue;
        }
        let json_name = escape_str(&f.json_name());
        let push = format!(
            "object.push((\"{json_name}\".to_string(), {TO_VALUE}({access}).map_err({SER_ERR})?));"
        );
        match &f.skip_if {
            Some(path) => stmts.push(format!("if !{path}({access}) {{ {push} }}")),
            None => stmts.push(push),
        }
    }
    format!("{{ {} {VALUE}::Object(object) }}", stmts.join("\n"))
}

fn wrap_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]
impl serde::Serialize for {name} {{
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> ::core::result::Result<S::Ok, S::Error> {{
        {body}
    }}
}}"
    )
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct(name, attrs, shape) => {
            let body = match shape {
                Shape::Named(fields) if attrs.transparent => {
                    let f = &fields[0];
                    format!(
                        "let inner: {ty} = {FROM_VALUE}(deserializer.take_value()?)?;
                         ::core::result::Result::Ok({name} {{ {id}: inner }})",
                        ty = f.ty,
                        id = f.ident
                    )
                }
                Shape::Named(fields) => de_named_fields_body(
                    name,
                    fields,
                    attrs.deny_unknown_fields,
                    "deserializer.take_value()?",
                    &format!("{name} {{ %FIELDS% }}"),
                ),
                Shape::Newtype(ty) => format!(
                    "let inner: {ty} = {FROM_VALUE}(deserializer.take_value()?)?;
                     ::core::result::Result::Ok({name}(inner))"
                ),
                Shape::Tuple(types) => de_tuple_body(
                    name,
                    types,
                    "deserializer.take_value()?",
                    &format!("{name}(%FIELDS%)"),
                ),
                Shape::Unit => format!(
                    "let _ = deserializer.take_value()?;
                     ::core::result::Result::Ok({name})"
                ),
            };
            wrap_deserialize(name, &body)
        }
        Item::Enum(name, attrs, variants) if attrs.untagged => {
            let mut stmts = vec!["let value = deserializer.take_value()?;".to_string()];
            for v in variants {
                let ty = match &v.shape {
                    Shape::Newtype(ty) => ty.clone(),
                    _ => panic!(
                        "serde_derive stub: untagged enum `{name}` must have only newtype variants"
                    ),
                };
                stmts.push(format!(
                    "{{ let attempt: ::core::result::Result<{ty}, serde::value::ValueError> = {FROM_VALUE}(value.clone());
                       if let ::core::result::Result::Ok(x) = attempt {{ return ::core::result::Result::Ok(Self::{id}(x)); }} }}",
                    id = v.ident
                ));
            }
            stmts.push(format!(
                "::core::result::Result::Err({DE_ERR}(\"data did not match any variant of untagged enum {name}\"))"
            ));
            wrap_deserialize(name, &stmts.join("\n"))
        }
        Item::Enum(name, _attrs, variants) => {
            // Externally tagged representation.
            let mut unit_arms = Vec::new();
            let mut payload_arms = Vec::new();
            for v in variants {
                let tag = escape_str(&v.json_name());
                match &v.shape {
                    Shape::Unit => unit_arms.push(format!(
                        "\"{tag}\" => ::core::result::Result::Ok(Self::{id}),",
                        id = v.ident
                    )),
                    Shape::Newtype(_) => payload_arms.push(format!(
                        "\"{tag}\" => ::core::result::Result::Ok(Self::{id}({FROM_VALUE}(payload)?)),",
                        id = v.ident
                    )),
                    Shape::Tuple(types) => {
                        let inner = de_tuple_body(
                            name,
                            types,
                            "payload",
                            &format!("Self::{}(%FIELDS%)", v.ident),
                        );
                        payload_arms.push(format!("\"{tag}\" => {{ {inner} }}"));
                    }
                    Shape::Named(fields) => {
                        let inner = de_named_fields_body(
                            name,
                            fields,
                            false,
                            "payload",
                            &format!("Self::{} {{ %FIELDS% }}", v.ident),
                        );
                        payload_arms.push(format!("\"{tag}\" => {{ {inner} }}"));
                    }
                }
            }
            let body = format!(
                "let value = deserializer.take_value()?;
                 match value {{
                     {VALUE}::String(s) => match s.as_str() {{
                         {unit}
                         other => ::core::result::Result::Err({DE_ERR}(format!(\"unknown variant `{{}}` of enum {name}\", other))),
                     }},
                     {VALUE}::Object(m) if m.len() == 1 => {{
                         let (tag, payload) = m.into_iter().next().unwrap();
                         match tag.as_str() {{
                             {payload_arms}
                             other => ::core::result::Result::Err({DE_ERR}(format!(\"unknown variant `{{}}` of enum {name}\", other))),
                         }}
                     }}
                     other => ::core::result::Result::Err({DE_ERR}(format!(\"invalid value for enum {name}: {{}}\", other.kind()))),
                 }}",
                unit = unit_arms.join("\n"),
                payload_arms = payload_arms.join("\n"),
            );
            wrap_deserialize(name, &body)
        }
    }
}

/// Statements extracting named fields from `source_expr` (an expression of
/// type Value), finishing with `Ok(<ctor with %FIELDS% replaced>)`.
fn de_named_fields_body(
    type_name: &str,
    fields: &[Field],
    deny_unknown: bool,
    source_expr: &str,
    ctor_template: &str,
) -> String {
    let mut stmts = vec![format!(
        "let mut object = match {source_expr} {{
             {VALUE}::Object(m) => m,
             other => return ::core::result::Result::Err({DE_ERR}(format!(\"expected object for {type_name}, found {{}}\", other.kind()))),
         }};"
    )];
    let mut flatten_field: Option<&Field> = None;
    for f in fields {
        if f.flatten {
            flatten_field = Some(f);
            continue;
        }
        let json_name = escape_str(&f.json_name());
        let missing = match &f.default {
            DefaultAttr::Std => "::core::default::Default::default()".to_string(),
            DefaultAttr::Path(path) => format!("{path}()"),
            DefaultAttr::None if f.is_option() => "::core::option::Option::None".to_string(),
            DefaultAttr::None => format!(
                "return ::core::result::Result::Err({DE_ERR}(\"missing field `{json_name}`\"))"
            ),
        };
        stmts.push(format!(
            "let field_{id}: {ty} = match object.iter().position(|(k, _)| k == \"{json_name}\") {{
                 ::core::option::Option::Some(i) => {FROM_VALUE}(object.remove(i).1)?,
                 ::core::option::Option::None => {missing},
             }};",
            id = f.ident,
            ty = f.ty
        ));
    }
    if let Some(f) = flatten_field {
        stmts.push(format!(
            "let field_{id}: {ty} = {FROM_VALUE}({VALUE}::Object(::core::mem::take(&mut object)))?;",
            id = f.ident,
            ty = f.ty
        ));
    } else if deny_unknown {
        stmts.push(format!(
            "if let ::core::option::Option::Some((k, _)) = object.first() {{
                 return ::core::result::Result::Err({DE_ERR}(format!(\"unknown field `{{}}` in {type_name}\", k)));
             }}"
        ));
    }
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{id}: field_{id}", id = f.ident))
        .collect();
    let ctor = ctor_template.replace("%FIELDS%", &inits.join(", "));
    stmts.push(format!("::core::result::Result::Ok({ctor})"));
    stmts.join("\n")
}

/// Statements extracting a tuple of `types` from `source_expr`, finishing with
/// `Ok(<ctor with %FIELDS% replaced>)`.
fn de_tuple_body(
    type_name: &str,
    types: &[String],
    source_expr: &str,
    ctor_template: &str,
) -> String {
    let n = types.len();
    let mut stmts = vec![format!(
        "let array = match {source_expr} {{
             {VALUE}::Array(a) => a,
             other => return ::core::result::Result::Err({DE_ERR}(format!(\"expected array for {type_name}, found {{}}\", other.kind()))),
         }};
         if array.len() != {n} {{
             return ::core::result::Result::Err({DE_ERR}(format!(\"expected {n} elements, found {{}}\", array.len())));
         }}
         let mut iter = array.into_iter();"
    )];
    for (i, ty) in types.iter().enumerate() {
        stmts.push(format!(
            "let field_{i}: {ty} = {FROM_VALUE}(iter.next().unwrap())?;"
        ));
    }
    let inits: Vec<String> = (0..n).map(|i| format!("field_{i}")).collect();
    let ctor = ctor_template.replace("%FIELDS%", &inits.join(", "));
    stmts.push(format!("::core::result::Result::Ok({ctor})"));
    stmts.join("\n")
}

fn wrap_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]
impl<'de> serde::Deserialize<'de> for {name} {{
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> ::core::result::Result<Self, D::Error> {{
        {body}
    }}
}}"
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Derive the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_serialize(&item);
    code.parse()
        .expect("serde_derive stub: generated invalid Serialize impl")
}

/// Derive the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_deserialize(&item);
    code.parse()
        .expect("serde_derive stub: generated invalid Deserialize impl")
}
