//! Recursive-descent JSON parser producing the vendored serde `Value` tree.

use crate::Error;
use serde::value::Value;

pub fn parse(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(members)),
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let first = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // Surrogate pair.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(Error::new("unpaired surrogate"));
                            }
                            let second = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&second) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                        } else {
                            first
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(Error::new("control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(b);
                        let end = start + len;
                        if end > self.bytes.len() {
                            return Err(Error::new("invalid utf-8 in string"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| Error::new("invalid utf-8 in string"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(x) = text.parse::<i64>() {
                return Ok(Value::I64(x));
            }
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::U64(x));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}
