//! Offline stand-in for `serde_json`: JSON text ⇄ the vendored serde's
//! [`Value`] tree ⇄ any `Serialize`/`Deserialize` type.

use std::fmt;

pub use serde::value::Value;

mod parser;

/// Error raised by serialization, deserialization, or parsing.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Serialize a value to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let tree = serde::value::to_value_any(value).map_err(|e| Error::new(e.to_string()))?;
    Ok(tree.to_string())
}

/// Serialize a value to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let tree = serde::value::to_value_any(value).map_err(|e| Error::new(e.to_string()))?;
    Ok(pretty(&tree))
}

fn pretty(value: &Value) -> String {
    // `Display` on Value is compact; re-walk for the 2-space-indent form.
    fn write_pretty(value: &Value, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        let pad_inner = "  ".repeat(indent + 1);
        match value {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_inner);
                    write_pretty(item, indent + 1, out);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(&pad_inner);
                    out.push_str(&Value::String(k.clone()).to_string());
                    out.push_str(": ");
                    write_pretty(v, indent + 1, out);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }
    let mut out = String::new();
    write_pretty(value, 0, &mut out);
    out
}

/// Serialize a value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    serde::value::to_value_any(value).map_err(|e| Error::new(e.to_string()))
}

/// Deserialize a value from a [`Value`] tree.
pub fn from_value<'de, T: serde::Deserialize<'de>>(value: Value) -> Result<T, Error> {
    serde::value::from_value_any(value)
}

/// Parse a JSON string into any `Deserialize` type.
pub fn from_str<'de, T: serde::Deserialize<'de>>(text: &str) -> Result<T, Error> {
    let tree = parser::parse(text)?;
    serde::value::from_value_any(tree)
}
