//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API: `lock()`
//! returns the guard directly, recovering from poisoning (parking_lot has no
//! poisoning at all, so recovery matches its semantics).

use std::fmt;
use std::sync::{self, TryLockError};

/// A mutex whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
