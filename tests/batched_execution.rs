//! Integration tests for device-level batched execution and the two PR-4
//! regression fixes:
//!
//! * `Backend::execute_batch` (gate + anneal): bit-for-bit identity with the
//!   sequential cached path, submission-order outcomes, failing-member
//!   isolation, and exactly one realization for a cold-cache compatible
//!   batch.
//! * Micro-batch dispatch through the streaming service: batches form for
//!   plan-compatible traffic, fairness accounting is per member, and the
//!   results match a batching-disabled run exactly.
//! * **DRR monopoly regression**: zero-cost (hint-less) jobs must spend
//!   deficit, so a hint-less queue cannot drain in one parked visit.
//! * **Seed-correlation regression**: unseeded jobs derive their seed from
//!   the realized program instead of a flat 0, so distinct unseeded programs
//!   no longer share sampling noise — while staying fully deterministic.

use std::collections::BTreeMap;

use qml_core::backends::{AnnealBackend, Backend, GateBackend, TranspileCache};
use qml_core::graph::cycle;
use qml_core::prelude::*;
use qml_core::types::ParamValue;
use qml_service::{QmlService, ServiceConfig, SweepRequest};

fn gate_context(seed: u64, samples: u64) -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(samples)
            .with_seed(seed)
            .with_target(Target::ring(4)),
    )
}

fn unseeded_gate_context(samples: u64) -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(samples)
            .with_target(Target::ring(4)),
    )
}

fn fixed_qaoa() -> JobBundle {
    qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap()
}

/// A symbolic QAOA sweep: one program, `n` late-bound angle points, one
/// seeded context — every member shares one gate-plan key.
fn angle_sweep_bundles(n: usize) -> Vec<JobBundle> {
    let template = qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Symbolic { layers: 1 }).unwrap();
    let mut sweep = SweepRequest::new("batch", template).with_context(gate_context(7, 128));
    for i in 0..n {
        let mut bindings = BTreeMap::new();
        bindings.insert(
            "gamma_0".to_string(),
            ParamValue::Float(0.2 + 0.05 * i as f64),
        );
        bindings.insert("beta_0".to_string(), ParamValue::Float(0.4));
        sweep = sweep.with_binding_set(bindings);
    }
    sweep.expand().unwrap()
}

fn anneal_context(reads: u64) -> ContextDescriptor {
    ContextDescriptor::for_anneal("anneal.neal_simulator", AnnealConfig::with_reads(reads))
}

/// A shot ladder over one Ising problem: same BQM, same schedule, varying
/// read counts — one anneal-plan key.
fn read_ladder_bundles(reads: &[u64]) -> Vec<JobBundle> {
    let base = maxcut_ising_program(&cycle(4)).unwrap();
    reads
        .iter()
        .map(|&r| base.clone().with_context(anneal_context(r)))
        .collect()
}

// ---------------------------------------------------------------------------
// Backend-level execute_batch
// ---------------------------------------------------------------------------

#[test]
fn gate_batch_is_bit_identical_to_sequential_and_misses_once() {
    let bundles = angle_sweep_bundles(6);
    let backend = GateBackend::new();

    let sequential_cache = TranspileCache::new();
    let sequential: Vec<_> = bundles
        .iter()
        .map(|b| backend.execute_cached(b, &sequential_cache).unwrap())
        .collect();

    let batch_cache = TranspileCache::new();
    let batched = backend.execute_batch(&bundles, &batch_cache);
    assert_eq!(batched.len(), 6);
    for (i, (seq, bat)) in sequential.iter().zip(&batched).enumerate() {
        assert_eq!(
            seq,
            bat.as_ref().unwrap(),
            "member {i} diverged from the sequential path"
        );
    }

    // A cold-cache batch of N compatible jobs realizes exactly one plan, and
    // the counters stay member-accurate (identical to sequential).
    let stats = batch_cache.gate_stats();
    assert_eq!(stats.misses, 1, "one transpilation for the whole batch");
    assert_eq!(stats.hits, 5);
    assert_eq!(stats.entries, 1);
    assert_eq!(sequential_cache.gate_stats(), stats);
}

#[test]
fn gate_batch_outcomes_stay_in_submission_order() {
    // Same plan key throughout, but distinguishable sampling policies: the
    // outcome at index i must carry member i's shot count.
    let samples = [32u64, 64, 96, 128];
    let bundles: Vec<JobBundle> = samples
        .iter()
        .map(|&s| fixed_qaoa().with_context(gate_context(1, s)))
        .collect();
    let cache = TranspileCache::new();
    let results = GateBackend::new().execute_batch(&bundles, &cache);
    for (i, result) in results.iter().enumerate() {
        assert_eq!(result.as_ref().unwrap().shots, samples[i]);
    }
    assert_eq!(cache.gate_stats().misses, 1);
}

#[test]
fn gate_batch_failing_member_does_not_poison_its_group() {
    // Member 1 targets the annealing engine: the gate backend cannot prepare
    // it. Members 0 and 2 share a plan and must complete untouched.
    let bundles = vec![
        fixed_qaoa().with_context(gate_context(1, 64)),
        fixed_qaoa().with_context(anneal_context(10)),
        fixed_qaoa().with_context(gate_context(2, 64)),
    ];
    let cache = TranspileCache::new();
    let results = GateBackend::new().execute_batch(&bundles, &cache);
    assert!(results[0].is_ok());
    assert!(results[1].is_err(), "wrong-engine member fails in place");
    assert!(results[2].is_ok());
    assert_eq!(cache.gate_stats().misses, 1);

    // The good members are bit-identical to their solo executions.
    let solo_cache = TranspileCache::new();
    let solo = GateBackend::new()
        .execute_cached(&bundles[0], &solo_cache)
        .unwrap();
    assert_eq!(results[0].as_ref().unwrap(), &solo);
}

#[test]
fn gate_batch_groups_interleaved_plan_keys_without_thrashing() {
    // Two plan keys interleaved A,B,A,B on a capacity-1 cache: sequential
    // execution would rebuild on every member (LRU thrash); the batch path
    // groups by key and realizes each plan exactly once.
    let ring = fixed_qaoa().with_context(gate_context(1, 32));
    let linear = fixed_qaoa().with_context(ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(32)
            .with_seed(1)
            .with_target(Target::linear(4)),
    ));
    let bundles = vec![ring.clone(), linear.clone(), ring, linear];
    let cache = TranspileCache::with_capacity(1);
    let results = GateBackend::new().execute_batch(&bundles, &cache);
    assert!(results.iter().all(|r| r.is_ok()));
    assert_eq!(
        cache.gate_stats().misses,
        2,
        "one realization per distinct plan, regardless of cache capacity"
    );
}

#[test]
fn anneal_batch_matches_sequential_and_shares_one_lowering() {
    let bundles = read_ladder_bundles(&[50, 100, 150, 200]);
    let backend = AnnealBackend::new();

    let sequential_cache = TranspileCache::new();
    let sequential: Vec<_> = bundles
        .iter()
        .map(|b| backend.execute_cached(b, &sequential_cache).unwrap())
        .collect();

    let batch_cache = TranspileCache::new();
    let batched = backend.execute_batch(&bundles, &batch_cache);
    for (i, (seq, bat)) in sequential.iter().zip(&batched).enumerate() {
        assert_eq!(seq, bat.as_ref().unwrap(), "read-ladder member {i}");
        assert_eq!(seq.shots, [50, 100, 150, 200][i], "submission order kept");
    }
    let stats = batch_cache.anneal_stats();
    assert_eq!(stats.misses, 1, "one BQM lowering for the whole ladder");
    assert_eq!(stats.hits, 3);
}

#[test]
fn anneal_batch_failing_member_stays_isolated() {
    // A gate-model QAOA bundle cannot lower to a BQM; its neighbors sample
    // normally.
    let bundles = vec![
        read_ladder_bundles(&[50]).pop().unwrap(),
        fixed_qaoa().with_context(anneal_context(10)),
        read_ladder_bundles(&[80]).pop().unwrap(),
    ];
    let results = AnnealBackend::new().execute_batch(&bundles, &TranspileCache::new());
    assert!(results[0].is_ok());
    assert!(results[1].is_err());
    assert!(results[2].is_ok());
}

// ---------------------------------------------------------------------------
// Service-level micro-batch dispatch
// ---------------------------------------------------------------------------

#[test]
fn streaming_service_forms_micro_batches_for_compatible_traffic() {
    // A 12-point seeded context sweep from one (uncontended) tenant: the
    // fair scheduler coalesces plan-compatible jobs into micro-batches, the
    // whole sweep transpiles once, and every per-member outcome is identical
    // to a batching-disabled run.
    let run = |max_batch: usize| {
        let mut sweep = SweepRequest::new("batched", fixed_qaoa());
        for seed in 0..12 {
            sweep = sweep.with_context(gate_context(seed, 64));
        }
        let service =
            QmlService::with_config(ServiceConfig::with_workers(2).with_max_batch(max_batch));
        let batch = service.submit_sweep("tenant", sweep).unwrap();
        let report = service.run_pending();
        assert_eq!(report.completed, 12);
        let results: Vec<_> = service
            .batch_jobs(batch)
            .into_iter()
            .map(|id| service.result(id).unwrap())
            .collect();
        (results, service.metrics())
    };

    let (batched_results, batched_metrics) = run(8);
    let (solo_results, solo_metrics) = run(1);

    assert_eq!(
        batched_results, solo_results,
        "batching must not change results"
    );
    assert_eq!(batched_metrics.gate_cache.misses, 1);
    assert_eq!(batched_metrics.gate_cache.hits, 11);

    // Batches actually formed, and fairness accounting stayed per member.
    assert!(
        batched_metrics.scheduler.batches >= 1,
        "expected micro-batches, metrics: {:?}",
        batched_metrics.scheduler
    );
    assert!(batched_metrics.scheduler.batched_jobs >= 2);
    assert!(batched_metrics.scheduler.mean_batch_size() >= 2.0);
    assert_eq!(batched_metrics.scheduler.dispatched, 12);
    assert_eq!(batched_metrics.per_tenant["tenant"].dispatched, 12);

    // A batching-disabled service dispatches everything solo.
    assert_eq!(solo_metrics.scheduler.batches, 0);
    assert_eq!(solo_metrics.scheduler.solo_jobs(), 12);
}

#[test]
fn micro_batch_member_failure_is_isolated_in_the_service() {
    // Three jobs share one symbolic plan key, but the middle one's binding
    // set was lost (unbound symbols, no bindings): it passes submission
    // validation, coalesces into the micro-batch, and fails at bind time
    // inside `execute_batch` — its group-mates complete.
    let template = qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Symbolic { layers: 1 }).unwrap();
    let good = |gamma: f64| {
        let mut b = BTreeMap::new();
        b.insert("gamma_0".to_string(), ParamValue::Float(gamma));
        b.insert("beta_0".to_string(), ParamValue::Float(0.4));
        b
    };
    let point = |gamma: f64| {
        SweepRequest::new("mixed", template.clone())
            .with_context(gate_context(3, 64))
            .with_binding_set(good(gamma))
            .expand()
            .unwrap()
            .pop()
            .unwrap()
    };

    let service = QmlService::with_config(ServiceConfig::with_workers(1).with_max_batch(8));
    let (_, ok_a) = service.submit("tenant", point(0.2)).unwrap();
    let mut doomed = point(0.9);
    doomed.bindings = None;
    let (_, bad) = service.submit("tenant", doomed).unwrap();
    let (_, ok_b) = service.submit("tenant", point(0.6)).unwrap();

    let report = service.run_pending();
    assert_eq!(report.completed, 2, "group-mates complete");
    assert_eq!(report.failed, 1, "the unbound member fails alone");
    assert!(service.result(ok_a).is_some());
    assert!(service.result(ok_b).is_some());
    assert!(service.result(bad).is_none());
    // The whole group — doomed member included — shared one plan.
    assert_eq!(service.metrics().gate_cache.misses, 1);
}

// ---------------------------------------------------------------------------
// Regression: correlated default seeds
// ---------------------------------------------------------------------------

#[test]
fn unseeded_gate_jobs_do_not_share_sampling_noise_with_seed_zero() {
    // Before the fix every unseeded gate job ran with seed = 0, so its
    // counts were identical to an explicitly seed-0 run — and therefore to
    // every other unseeded job of the same circuit shape. The derived
    // default (program hash) breaks that correlation.
    let backend = GateBackend::new();
    let unseeded = fixed_qaoa().with_context(unseeded_gate_context(1024));
    let seed_zero = fixed_qaoa().with_context(gate_context(0, 1024));

    let a = backend.execute(&unseeded).unwrap();
    let b = backend.execute(&seed_zero).unwrap();
    assert_ne!(
        a.counts, b.counts,
        "unseeded execution must not be the seed-0 stream"
    );

    // Distinct unseeded programs (different binding fingerprints ⇒ different
    // program hashes) draw from distinct streams even when their bound
    // circuits are identical in shape.
    let symbolic = qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Symbolic { layers: 1 }).unwrap();
    let point = |gamma: f64| {
        let mut b = BTreeMap::new();
        b.insert("gamma_0".to_string(), ParamValue::Float(gamma));
        b.insert("beta_0".to_string(), ParamValue::Float(RING_P1_ANGLES.beta));
        SweepRequest::new("pt", symbolic.clone())
            .with_context(unseeded_gate_context(1024))
            .with_binding_set(b)
            .expand()
            .unwrap()
            .pop()
            .unwrap()
    };
    let p = point(RING_P1_ANGLES.gamma);
    let fixed = backend.execute(&unseeded).unwrap();
    let late = backend.execute(&p).unwrap();
    assert_ne!(
        fixed.counts, late.counts,
        "two distinct unseeded programs must not be sample-correlated"
    );

    // Determinism is preserved: the derived seed is a pure function of the
    // program, so re-running an unseeded bundle reproduces it exactly.
    assert_eq!(a, backend.execute(&unseeded).unwrap());
    // Explicit seeds behave exactly as before.
    assert_eq!(b, backend.execute(&seed_zero).unwrap());
}

#[test]
fn unseeded_anneal_jobs_do_not_share_sampling_noise_with_seed_zero() {
    let backend = AnnealBackend::new();
    let base = maxcut_ising_program(&cycle(4)).unwrap();
    let unseeded = base.clone().with_context(anneal_context(500));
    let mut seeded_cfg = AnnealConfig::with_reads(500);
    seeded_cfg.seed = Some(0);
    let seed_zero = base.with_context(ContextDescriptor::for_anneal(
        "anneal.neal_simulator",
        seeded_cfg,
    ));

    let a = backend.execute(&unseeded).unwrap();
    let b = backend.execute(&seed_zero).unwrap();
    assert_ne!(
        a.counts, b.counts,
        "unseeded annealing must not be the seed-0 stream"
    );
    // Deterministic: re-running the unseeded bundle reproduces its counts.
    assert_eq!(a.counts, backend.execute(&unseeded).unwrap().counts);
    // Explicit seeds are untouched by the fix.
    assert_eq!(b.counts, backend.execute(&seed_zero).unwrap().counts);
}
