//! Property tests for fleet routing invariants (PR 8).
//!
//! The [`FleetRouter`] is pure bookkeeping — no locks, no clocks, no I/O —
//! so its routing guarantees are testable as properties over randomized
//! fleets and job streams:
//!
//! * a routed job always lands on a device capable of serving it;
//! * once every candidate has cost history, the chosen device is within the
//!   tie band of the cheapest capable device;
//! * exclusion sets are respected across a requeue walk, and the walk
//!   terminates (the capable set is finite and exclusions only grow);
//! * end to end, randomized fault schedules lose no job and duplicate no
//!   outcome: completed + failed always equals submitted.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;

use qml_core::backends::testing::{FaultPlan, FaultyBackend};
use qml_core::backends::{Backend, GateBackend};
use qml_core::graph::cycle;
use qml_core::prelude::*;
use qml_core::service::{
    DeviceSpec, FleetRouter, QmlService, ServiceConfig, SweepRequest, COST_TIE_BAND,
};

const PLANE: &str = "qml-gate-simulator";

fn unlimited_fleet(n: usize) -> FleetRouter {
    let specs = (0..n)
        .map(|i| {
            DeviceSpec::new(
                format!("dev-{i}"),
                Arc::new(GateBackend::new()) as Arc<dyn Backend>,
                CapabilityDescriptor::unlimited(),
            )
        })
        .collect();
    FleetRouter::new(specs, 0.4, 2, 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Capability invariant: whatever the fleet shape and job stream, a
    /// routed job lands on a device wide enough to serve it, and routing
    /// returns `None` only when no device on the plane is capable.
    #[test]
    fn routed_jobs_always_land_on_a_capable_device(
        widths in proptest::collection::vec(2usize..=32, 1..5),
        jobs in proptest::collection::vec(1usize..=32, 1..32),
    ) {
        let specs = widths
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                DeviceSpec::new(
                    format!("dev-{i}"),
                    Arc::new(GateBackend::new()) as Arc<dyn Backend>,
                    CapabilityDescriptor::unlimited().with_max_qubits(w),
                )
            })
            .collect();
        let mut fleet = FleetRouter::new(specs, 0.4, 2, 0);
        for (job, &qubits) in jobs.iter().enumerate() {
            let req = JobRequirements { qubits, opt_level: 1 };
            match fleet.select(PLANE, Some(&req), Some(7), job as u64) {
                Some(pick) => prop_assert!(
                    qubits <= widths[pick],
                    "job of width {qubits} routed to device of width {}",
                    widths[pick]
                ),
                None => prop_assert!(
                    widths.iter().all(|&w| w < qubits),
                    "routing gave up although a capable device exists"
                ),
            }
        }
    }

    /// Cost invariant: once every device has measured history for a plan,
    /// the selected device's predicted cost is within [`COST_TIE_BAND`] of
    /// the cheapest candidate's (a first observation seeds the EWMA with the
    /// raw measurement, so the seeded costs *are* the predictions here).
    #[test]
    fn with_history_the_choice_stays_within_the_tie_band_of_cheapest(
        costs in proptest::collection::vec(0.01f64..1.0, 2..5),
        job in 0u64..1000,
    ) {
        let mut fleet = unlimited_fleet(costs.len());
        let key = 42u64;
        for (i, &seconds) in costs.iter().enumerate() {
            fleet.observe(i, Some(key), seconds, true, false);
        }
        let pick = fleet.select(PLANE, None, Some(key), job).unwrap();
        let cheapest = costs.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!(
            costs[pick] <= cheapest * (1.0 + COST_TIE_BAND) + 1e-12,
            "picked {} but the cheapest candidate costs {}",
            costs[pick],
            cheapest
        );
    }

    /// Exclusion invariant: a requeue walk (fault → exclude → re-route)
    /// never revisits an excluded device, and terminates with `None` exactly
    /// when every device has faulted on the job.
    #[test]
    fn exclusion_sets_are_respected_across_requeue_walks(
        n in 2usize..5,
        job in 0u64..1000,
    ) {
        let mut fleet = unlimited_fleet(n);
        let mut excluded = BTreeSet::new();
        loop {
            match fleet.select(PLANE, None, None, job) {
                Some(pick) => {
                    prop_assert!(
                        !excluded.contains(&pick),
                        "routed back onto excluded device {pick}"
                    );
                    fleet.exclude(job, pick);
                    excluded.insert(pick);
                    prop_assert!(excluded.len() <= n, "walk failed to terminate");
                }
                None => {
                    // `None` only once every device is excluded.
                    prop_assert_eq!(excluded.len(), n);
                    break;
                }
            }
        }
    }
}

fn gate_device(id: &str, plan: FaultPlan) -> DeviceSpec {
    DeviceSpec::new(
        id,
        Arc::new(FaultyBackend::new(GateBackend::new(), plan)) as Arc<dyn Backend>,
        CapabilityDescriptor::unlimited(),
    )
}

fn qaoa_sweep(jobs: u64) -> SweepRequest {
    let program =
        qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap();
    let mut sweep = SweepRequest::new("routing-prop", program);
    for seed in 0..jobs {
        sweep = sweep.with_context(ContextDescriptor::for_gate(
            ExecConfig::new("gate.aer_simulator")
                .with_samples(32)
                .with_seed(seed)
                .with_target(Target::ring(4)),
        ));
    }
    sweep
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// End-to-end exactly-once invariant: under a randomized fault schedule
    /// (transient faults on one device, an optional permanent death on a
    /// second, one guaranteed-healthy sibling) every submitted job settles
    /// exactly once — nothing lost, nothing duplicated — and, because a
    /// healthy capable device always exists, every job ultimately completes.
    #[test]
    fn no_job_is_lost_or_duplicated_under_randomized_failures(
        transient in proptest::collection::vec(0u64..12, 0..6),
        fail_from in 0u64..16,
        jobs in 4u64..10,
    ) {
        let plan_a = FaultPlan::none().with_fail_nth(transient.iter().copied());
        // Values past the schedule horizon mean "never dies".
        let plan_b = if fail_from < 8 {
            FaultPlan::none().with_fail_from(fail_from)
        } else {
            FaultPlan::none()
        };
        let config = ServiceConfig::with_workers(2)
            .with_device(gate_device("gate-a", plan_a))
            .with_device(gate_device("gate-b", plan_b))
            .with_device(gate_device("gate-c", FaultPlan::none()));
        let service = QmlService::with_config(config);
        let batch = service.submit_sweep("prop", qaoa_sweep(jobs)).unwrap();
        let summary = service.run_pending();

        // Every job settles exactly once, and because a healthy capable
        // device always exists, every job ultimately completes.
        prop_assert_eq!(summary.completed + summary.failed, jobs as usize);
        prop_assert_eq!(summary.failed, 0);
        let metrics = service.metrics();
        prop_assert_eq!(metrics.jobs_submitted, jobs);
        prop_assert_eq!(metrics.jobs_completed, jobs);
        prop_assert_eq!(metrics.jobs_failed, 0);
        prop_assert_eq!(metrics.queue_depth, 0);
        // One terminal result per submitted job.
        for id in service.batch_jobs(batch) {
            prop_assert!(service.result(id).is_some(), "job {id:?} lost its result");
        }
        // Per-device completions fold to the batch total: no outcome was
        // double-settled onto a device.
        let completed: u64 = metrics
            .per_device
            .values()
            .filter(|d| d.plane == PLANE)
            .map(|d| d.completed)
            .sum();
        prop_assert_eq!(completed, jobs);
    }
}
