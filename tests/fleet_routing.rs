//! Property tests for fleet routing invariants (PR 8).
//!
//! The [`FleetRouter`] is pure bookkeeping — no locks, no clocks, no I/O —
//! so its routing guarantees are testable as properties over randomized
//! fleets and job streams:
//!
//! * a routed job always lands on a device capable of serving it;
//! * once every candidate has cost history, the chosen device is within the
//!   tie band of the cheapest capable device;
//! * exclusion sets are respected across a requeue walk, and the walk
//!   terminates (the capable set is finite and exclusions only grow);
//! * cordoned devices receive no new routes (while staying admission-time
//!   feasible, so queued work waits out the maintenance window), and
//!   uncordoning restores the full candidate set;
//! * end to end, randomized fault schedules lose no job and duplicate no
//!   outcome: completed + failed always equals submitted.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;

use qml_core::backends::testing::{FaultPlan, FaultyBackend};
use qml_core::backends::{Backend, GateBackend};
use qml_core::graph::cycle;
use qml_core::prelude::*;
use qml_core::service::{
    DeviceSpec, FleetRouter, QmlService, ServiceConfig, SweepRequest, COST_TIE_BAND,
};

const PLANE: &str = "qml-gate-simulator";

fn unlimited_fleet(n: usize) -> FleetRouter {
    let specs = (0..n)
        .map(|i| {
            DeviceSpec::new(
                format!("dev-{i}"),
                Arc::new(GateBackend::new()) as Arc<dyn Backend>,
                CapabilityDescriptor::unlimited(),
            )
        })
        .collect();
    FleetRouter::new(specs, 0.4, 2, 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Capability invariant: whatever the fleet shape and job stream, a
    /// routed job lands on a device wide enough to serve it, and routing
    /// returns `None` only when no device on the plane is capable.
    #[test]
    fn routed_jobs_always_land_on_a_capable_device(
        widths in proptest::collection::vec(2usize..=32, 1..5),
        jobs in proptest::collection::vec(1usize..=32, 1..32),
    ) {
        let specs = widths
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                DeviceSpec::new(
                    format!("dev-{i}"),
                    Arc::new(GateBackend::new()) as Arc<dyn Backend>,
                    CapabilityDescriptor::unlimited().with_max_qubits(w),
                )
            })
            .collect();
        let mut fleet = FleetRouter::new(specs, 0.4, 2, 0);
        for (job, &qubits) in jobs.iter().enumerate() {
            let req = JobRequirements { qubits, opt_level: 1 };
            match fleet.select(PLANE, Some(&req), Some(7), job as u64) {
                Some(pick) => prop_assert!(
                    qubits <= widths[pick],
                    "job of width {qubits} routed to device of width {}",
                    widths[pick]
                ),
                None => prop_assert!(
                    widths.iter().all(|&w| w < qubits),
                    "routing gave up although a capable device exists"
                ),
            }
        }
    }

    /// Cost invariant: once every device has measured history for a plan,
    /// the selected device's predicted cost is within [`COST_TIE_BAND`] of
    /// the cheapest candidate's (a first observation seeds the EWMA with the
    /// raw measurement, so the seeded costs *are* the predictions here).
    #[test]
    fn with_history_the_choice_stays_within_the_tie_band_of_cheapest(
        costs in proptest::collection::vec(0.01f64..1.0, 2..5),
        job in 0u64..1000,
    ) {
        let mut fleet = unlimited_fleet(costs.len());
        let key = 42u64;
        for (i, &seconds) in costs.iter().enumerate() {
            fleet.observe(i, Some(key), seconds, true, false);
        }
        let pick = fleet.select(PLANE, None, Some(key), job).unwrap();
        let cheapest = costs.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!(
            costs[pick] <= cheapest * (1.0 + COST_TIE_BAND) + 1e-12,
            "picked {} but the cheapest candidate costs {}",
            costs[pick],
            cheapest
        );
    }

    /// Exclusion invariant: a requeue walk (fault → exclude → re-route)
    /// never revisits an excluded device, and terminates with `None` exactly
    /// when every device has faulted on the job.
    #[test]
    fn exclusion_sets_are_respected_across_requeue_walks(
        n in 2usize..5,
        job in 0u64..1000,
    ) {
        let mut fleet = unlimited_fleet(n);
        let mut excluded = BTreeSet::new();
        loop {
            match fleet.select(PLANE, None, None, job) {
                Some(pick) => {
                    prop_assert!(
                        !excluded.contains(&pick),
                        "routed back onto excluded device {pick}"
                    );
                    fleet.exclude(job, pick);
                    excluded.insert(pick);
                    prop_assert!(excluded.len() <= n, "walk failed to terminate");
                }
                None => {
                    // `None` only once every device is excluded.
                    prop_assert_eq!(excluded.len(), n);
                    break;
                }
            }
        }
    }
}

#[test]
fn cordoned_devices_accept_no_new_routes_until_uncordoned() {
    let mut fleet = unlimited_fleet(3);
    assert!(fleet.cordon("dev-1"));
    assert!(!fleet.cordon("dev-9"), "unknown ids are rejected");
    let picked: BTreeSet<usize> = (0..9)
        .filter_map(|job| {
            fleet.select(
                PLANE,
                Some(&JobRequirements {
                    qubits: 4,
                    opt_level: 1,
                }),
                None,
                job,
            )
        })
        .collect();
    assert_eq!(picked, BTreeSet::from([0, 2]), "dev-1 is out of rotation");
    // A cordon is administrative, not a capability change: admission-time
    // feasibility still sees the device, so queued jobs wait out the
    // maintenance window instead of failing.
    assert!(fleet.capable_exists(PLANE, None));
    assert!(fleet.snapshot()["dev-1"].cordoned);
    assert!(fleet.uncordon("dev-1"));
    assert!(!fleet.snapshot()["dev-1"].cordoned);
    let rejoined: BTreeSet<usize> = (100..109)
        .filter_map(|job| fleet.select(PLANE, None, None, job))
        .collect();
    assert_eq!(rejoined, BTreeSet::from([0, 1, 2]), "dev-1 rejoined");
}

#[test]
fn a_sweep_completes_around_a_cordoned_device() {
    // End to end through the service: cordon one of two devices before
    // submitting, and every job completes on the other while the cordoned
    // device dispatches nothing.
    let config = ServiceConfig::with_workers(2)
        .with_device(gate_device("gate-a", FaultPlan::none()))
        .with_device(gate_device("gate-b", FaultPlan::none()));
    let service = QmlService::with_config(config);
    assert!(service.cordon_device("gate-a"));
    assert!(!service.cordon_device("missing"));
    service.submit_sweep("tenant", qaoa_sweep(8)).unwrap();
    let report = service.run_pending();
    assert_eq!(report.completed, 8);
    let per_device = service.metrics().per_device;
    assert!(per_device["gate-a"].cordoned);
    assert_eq!(per_device["gate-a"].dispatched, 0, "cordoned device idles");
    assert_eq!(per_device["gate-b"].completed, 8);
    // Lift the cordon: the device takes traffic again.
    assert!(service.uncordon_device("gate-a"));
    service.submit_sweep("tenant", qaoa_sweep(8)).unwrap();
    assert_eq!(service.run_pending().completed, 8);
    let per_device = service.metrics().per_device;
    assert!(!per_device["gate-a"].cordoned);
    assert!(
        per_device["gate-a"].dispatched > 0,
        "uncordoned device serves"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cordon invariant: whatever subset of the fleet is cordoned, routing
    /// never lands on a cordoned device, and returns `None` exactly when
    /// every device is cordoned (the job waits — a cordon never fails work).
    /// Uncordoning restores the full candidate set.
    #[test]
    fn routing_never_lands_on_a_cordoned_device(
        n in 1usize..5,
        cordoned_mask in 0u32..32,
        jobs in proptest::collection::vec(0u64..1000, 1..16),
    ) {
        let mut fleet = unlimited_fleet(n);
        let cordoned: BTreeSet<usize> =
            (0..n).filter(|i| cordoned_mask & (1 << i) != 0).collect();
        for &i in &cordoned {
            let id = format!("dev-{i}");
            prop_assert!(fleet.cordon(&id));
            prop_assert!(fleet.is_cordoned(i));
        }
        for &job in &jobs {
            match fleet.select(PLANE, None, None, job) {
                Some(pick) => prop_assert!(
                    !cordoned.contains(&pick),
                    "job {job} routed to cordoned device {pick}"
                ),
                None => prop_assert!(
                    cordoned.len() == n,
                    "routing gave up although an uncordoned device exists"
                ),
            }
        }
        for &i in &cordoned {
            let id = format!("dev-{i}");
            prop_assert!(fleet.uncordon(&id));
        }
        for &job in &jobs {
            prop_assert!(fleet.select(PLANE, None, None, job).is_some());
        }
    }
}

fn gate_device(id: &str, plan: FaultPlan) -> DeviceSpec {
    DeviceSpec::new(
        id,
        Arc::new(FaultyBackend::new(GateBackend::new(), plan)) as Arc<dyn Backend>,
        CapabilityDescriptor::unlimited(),
    )
}

fn qaoa_sweep(jobs: u64) -> SweepRequest {
    let program =
        qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap();
    let mut sweep = SweepRequest::new("routing-prop", program);
    for seed in 0..jobs {
        sweep = sweep.with_context(ContextDescriptor::for_gate(
            ExecConfig::new("gate.aer_simulator")
                .with_samples(32)
                .with_seed(seed)
                .with_target(Target::ring(4)),
        ));
    }
    sweep
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// End-to-end exactly-once invariant: under a randomized fault schedule
    /// (transient faults on one device, an optional permanent death on a
    /// second, one guaranteed-healthy sibling) every submitted job settles
    /// exactly once — nothing lost, nothing duplicated — and, because a
    /// healthy capable device always exists, every job ultimately completes.
    #[test]
    fn no_job_is_lost_or_duplicated_under_randomized_failures(
        transient in proptest::collection::vec(0u64..12, 0..6),
        fail_from in 0u64..16,
        jobs in 4u64..10,
    ) {
        let plan_a = FaultPlan::none().with_fail_nth(transient.iter().copied());
        // Values past the schedule horizon mean "never dies".
        let plan_b = if fail_from < 8 {
            FaultPlan::none().with_fail_from(fail_from)
        } else {
            FaultPlan::none()
        };
        let config = ServiceConfig::with_workers(2)
            .with_device(gate_device("gate-a", plan_a))
            .with_device(gate_device("gate-b", plan_b))
            .with_device(gate_device("gate-c", FaultPlan::none()));
        let service = QmlService::with_config(config);
        let batch = service.submit_sweep("prop", qaoa_sweep(jobs)).unwrap();
        let summary = service.run_pending();

        // Every job settles exactly once, and because a healthy capable
        // device always exists, every job ultimately completes.
        prop_assert_eq!(summary.completed + summary.failed, jobs as usize);
        prop_assert_eq!(summary.failed, 0);
        let metrics = service.metrics();
        prop_assert_eq!(metrics.jobs_submitted, jobs);
        prop_assert_eq!(metrics.jobs_completed, jobs);
        prop_assert_eq!(metrics.jobs_failed, 0);
        prop_assert_eq!(metrics.queue_depth, 0);
        // One terminal result per submitted job.
        for id in service.batch_jobs(batch) {
            prop_assert!(service.result(id).is_some(), "job {id:?} lost its result");
        }
        // Per-device completions fold to the batch total: no outcome was
        // double-settled onto a device.
        let completed: u64 = metrics
            .per_device
            .values()
            .filter(|d| d.plane == PLANE)
            .map(|d| d.completed)
            .sum();
        prop_assert_eq!(completed, jobs);
    }
}
