//! Deterministic fleet failover end-to-end tests (PR 8).
//!
//! The tentpole invariant: **a device death mid-sweep is absorbed by the
//! fleet without touching results**. Gate sampling seeds derive from the
//! bundle, never from device identity, so a job requeued off a dead device
//! and re-executed on a healthy sibling must produce bit-identical counts to
//! a run where nothing ever failed. Alongside: a downed device receives zero
//! dispatches once excluded, transient faults heal through recovery probes,
//! and measured-cost fairness bands hold with the fleet enabled.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qml_core::backends::testing::{FaultPlan, FaultyBackend};
use qml_core::backends::{Backend, ExecutionResult, GateBackend};
use qml_core::graph::cycle;
use qml_core::prelude::*;
use qml_core::service::{BatchId, DeviceSpec, QmlService, ServiceConfig, SweepRequest};

const PLANE: &str = "qml-gate-simulator";
const WAIT: Duration = Duration::from_secs(60);

fn gate_context(seed: u64, samples: u64) -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(samples)
            .with_seed(seed)
            .with_target(Target::ring(4)),
    )
}

fn fixed_qaoa() -> JobBundle {
    qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap()
}

fn qaoa_sweep(name: &str, seeds: std::ops::Range<u64>) -> SweepRequest {
    let mut sweep = SweepRequest::new(name, fixed_qaoa());
    for seed in seeds {
        sweep = sweep.with_context(gate_context(seed, 256));
    }
    sweep
}

fn gate_device(id: &str, plan: FaultPlan) -> DeviceSpec {
    DeviceSpec::new(
        id,
        Arc::new(FaultyBackend::new(GateBackend::new(), plan)) as Arc<dyn Backend>,
        CapabilityDescriptor::unlimited(),
    )
}

/// Per-job results of a batch, in expansion order.
fn results_of(service: &QmlService, batch: BatchId) -> Vec<ExecutionResult> {
    service
        .batch_jobs(batch)
        .into_iter()
        .map(|id| service.result(id).expect("job completed"))
        .collect()
}

#[test]
fn mid_sweep_device_death_is_absorbed_bit_for_bit() {
    // Baseline: the same sweep on a healthy single-device plane.
    let baseline = QmlService::with_config(ServiceConfig::with_workers(1).with_max_batch(1));
    let baseline_batch = baseline
        .submit_sweep("tenant", qaoa_sweep("scan", 0..8))
        .unwrap();
    assert_eq!(baseline.run_pending().completed, 8);
    let expected = results_of(&baseline, baseline_batch);

    // Fleet of three: gate-b dies on its very first execution (a permanent
    // fault), so it faults once (degraded), faults again (down), and must
    // never be dispatched to again.
    let config = ServiceConfig::with_workers(1)
        .with_max_batch(1)
        .with_device(gate_device("gate-a", FaultPlan::none()))
        .with_device(gate_device("gate-b", FaultPlan::none().with_fail_from(0)))
        .with_device(gate_device("gate-c", FaultPlan::none()));
    let service = QmlService::with_config(config);
    let batch = service
        .submit_sweep("tenant", qaoa_sweep("scan", 0..8))
        .unwrap();
    let summary = service.run_pending();
    assert_eq!(summary.completed, 8, "the fleet absorbs the dead device");
    assert_eq!(summary.failed, 0);

    // Results are bit-identical to the healthy run: requeued jobs sampled
    // from the same bundle-derived seeds on their rescue device.
    let got = results_of(&service, batch);
    for (i, (a, b)) in expected.iter().zip(&got).enumerate() {
        assert_eq!(a.counts, b.counts, "job {i} diverged from healthy baseline");
        assert_eq!(a.shots, b.shots);
    }

    // Exactly-once failover accounting: gate-b saw exactly its two faulted
    // attempts (one to degrade, one to go down), each requeued away once.
    let metrics = service.metrics();
    assert_eq!(metrics.scheduler.requeued, 2);
    let dead = &metrics.per_device["gate-b"];
    assert_eq!(dead.health, "down");
    assert_eq!(dead.dispatched, 2);
    assert_eq!(dead.failed, 2);
    assert_eq!(dead.completed, 0);
    assert_eq!(dead.requeued, 2);
    let completed: u64 = metrics
        .per_device
        .values()
        .filter(|d| d.plane == PLANE)
        .map(|d| d.completed)
        .sum();
    assert_eq!(completed, 8, "every job completed on exactly one device");

    // Zero dispatches after exclusion: fresh traffic never touches the
    // downed device (probing is disabled by default).
    let batch2 = service
        .submit_sweep("tenant", qaoa_sweep("scan2", 100..104))
        .unwrap();
    assert_eq!(service.run_pending().completed, 4);
    assert_eq!(results_of(&service, batch2).len(), 4);
    let after = service.device_metrics();
    assert_eq!(
        after["gate-b"].dispatched, 2,
        "a down device receives zero dispatches"
    );
}

#[test]
fn transient_fault_heals_through_a_recovery_probe() {
    // gate-a faults exactly once (its first execution) and a down threshold
    // of 1 takes it straight down; a probe every 3 settled outcomes then
    // rehabilitates it.
    let config = ServiceConfig::with_workers(1)
        .with_max_batch(1)
        .with_down_threshold(1)
        .with_probe_interval(3)
        .with_device(gate_device("gate-a", FaultPlan::none().with_fail_nth([0])))
        .with_device(gate_device("gate-b", FaultPlan::none()));
    let service = QmlService::with_config(config);
    service
        .submit_sweep("tenant", qaoa_sweep("heal", 0..12))
        .unwrap();
    let summary = service.run_pending();
    assert_eq!(summary.completed, 12);
    assert_eq!(summary.failed, 0);

    let metrics = service.metrics();
    assert_eq!(
        metrics.scheduler.requeued, 1,
        "one faulted attempt requeued"
    );
    let healed = &metrics.per_device["gate-a"];
    assert_eq!(
        healed.health, "healthy",
        "the probe rehabilitated the device"
    );
    assert!(
        healed.completed >= 1,
        "a successful probe re-admits the device to the rotation"
    );
}

#[test]
fn per_job_device_attribution_points_at_the_executing_device() {
    let config = ServiceConfig::with_workers(1)
        .with_max_batch(1)
        .with_device(gate_device("gate-a", FaultPlan::none()))
        .with_device(gate_device("gate-b", FaultPlan::none()));
    let service = QmlService::with_config(config);
    let batch = service
        .submit_sweep("tenant", qaoa_sweep("attr", 0..6))
        .unwrap();
    assert_eq!(service.run_pending().completed, 6);

    let mut per_device: BTreeMap<String, u64> = BTreeMap::new();
    for id in service.batch_jobs(batch) {
        let device = service
            .device_of(id)
            .expect("terminal outcomes are attributed");
        *per_device.entry(device.to_string()).or_default() += 1;
    }
    // Attribution totals agree with the devices' own completion gauges.
    let snapshot = service.device_metrics();
    for (device, jobs) in &per_device {
        assert_eq!(snapshot[device].completed, *jobs);
    }
    assert_eq!(per_device.values().sum::<u64>(), 6);
    assert!(
        per_device.len() >= 2,
        "history-less routing explores both devices: {per_device:?}"
    );
}

/// The same with-fleet workload as `tests/measured_fairness.rs`: two tenants
/// of equal weight, one sandbagging its cost hints. Submit `jobs` per tenant
/// interleaved, run on one worker until `sample_at` jobs completed, abort,
/// and return per-tenant (busy-seconds, completed).
fn run_mis_estimated_fleet(jobs: u64, sample_at: u64) -> ((f64, u64), (f64, u64)) {
    let hintless = {
        let mut bundle = fixed_qaoa();
        for op in &mut bundle.operators {
            op.cost_hint = None;
        }
        bundle
    };
    let config = ServiceConfig::with_workers(1)
        .with_max_batch(1)
        .with_device(gate_device("gate-a", FaultPlan::none()))
        .with_device(gate_device("gate-b", FaultPlan::none()))
        .with_device(gate_device("gate-c", FaultPlan::none()));
    let service = QmlService::with_config(config);
    for i in 0..jobs {
        service
            .submit(
                "sandbagged",
                hintless.clone().with_context(gate_context(i, 4096)),
            )
            .unwrap();
        service
            .submit(
                "honest",
                fixed_qaoa().with_context(gate_context(1000 + i, 4096)),
            )
            .unwrap();
    }
    let handle = service.start().unwrap();
    let deadline = Instant::now() + WAIT;
    while service.metrics().jobs_completed < sample_at && Instant::now() < deadline {
        std::thread::sleep(Duration::from_micros(500));
    }
    handle.abort();
    let metrics = service.metrics();
    let sand = &metrics.per_tenant["sandbagged"];
    let honest = &metrics.per_tenant["honest"];
    (
        (sand.busy_seconds, sand.completed),
        (honest.busy_seconds, honest.completed),
    )
}

#[test]
fn measured_fairness_bands_hold_with_the_fleet_enabled() {
    // The fleet layer must not perturb measured-cost fairness: equal-weight
    // tenants still converge to comparable busy-seconds even when one
    // under-states its costs — now across three devices instead of one.
    let ((sand_busy, sand_done), (honest_busy, honest_done)) = run_mis_estimated_fleet(200, 150);
    assert!(
        sand_done >= 10 && honest_done >= 10,
        "both tenants must make progress mid-run (sandbagged {sand_done}, honest {honest_done})"
    );
    let ratio = (sand_busy + 1e-9) / (honest_busy + 1e-9);
    assert!(
        (1.0 / 3.0..=3.0).contains(&ratio),
        "equal weights must mean comparable busy-seconds with the fleet on; \
         got ratio {ratio:.2} ({sand_busy:.4}s over {sand_done} jobs vs \
         {honest_busy:.4}s over {honest_done})"
    );
}
