//! Integration tests for **parametric transpilation**: a symbolic program is
//! lowered and transpiled once, and every binding set of a sweep re-binds the
//! cached plan's slot table instead of re-transpiling.
//!
//! Covers the PR's acceptance criteria: an N-point binding sweep over one
//! symbolic bundle performs exactly 1 gate transpilation (1 miss, N−1 hits),
//! and bound-late results match bind-first results on identical seeds.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use qml_core::backends::{Backend, GateBackend, TranspileCache};
use qml_core::graph::{cut_value_of_bitstring, cycle};
use qml_core::prelude::*;
use qml_core::runtime::BackendRegistry;
use qml_core::service::{QmlService, ServiceConfig, SweepRequest};
use qml_core::types::{BindingSet, ParamValue};

fn gate_context(seed: u64, samples: u64) -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(samples)
            .with_seed(seed)
            .with_target(Target::ring(4))
            .with_optimization_level(2),
    )
}

fn symbolic_qaoa() -> JobBundle {
    qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Symbolic { layers: 1 }).unwrap()
}

fn grid_bindings() -> Vec<BTreeMap<String, ParamValue>> {
    let mut out = Vec::new();
    for gi in 1..=3 {
        for bi in 1..=3 {
            let mut b = BTreeMap::new();
            b.insert(
                "gamma_0".to_string(),
                ParamValue::Float(std::f64::consts::PI * gi as f64 / 8.0),
            );
            b.insert(
                "beta_0".to_string(),
                ParamValue::Float(std::f64::consts::FRAC_PI_2 * bi as f64 / 4.0),
            );
            out.push(b);
        }
    }
    out
}

/// The headline acceptance criterion: a 9-point γ/β grid over one symbolic
/// QAOA bundle transpiles exactly once — 1 gate-plan miss, 8 hits, 1 entry.
#[test]
fn nine_point_sweep_transpiles_once() {
    let mut sweep = SweepRequest::new("grid", symbolic_qaoa()).with_context(gate_context(42, 512));
    for bindings in grid_bindings() {
        sweep = sweep.with_binding_set(bindings);
    }
    let service = QmlService::with_config(ServiceConfig::with_workers(3));
    let batch = service.submit_sweep("optimizer", sweep).unwrap();
    let report = service.run_pending();
    assert_eq!(report.completed, 9);
    assert_eq!(report.failed, 0);

    let metrics = service.metrics();
    assert_eq!(
        metrics.gate_cache.misses, 1,
        "one transpilation for 9 points"
    );
    assert_eq!(metrics.gate_cache.hits, 8);
    assert_eq!(metrics.gate_cache.entries, 1);
    assert_eq!(metrics.gate_cache.evictions, 0);
    assert!((metrics.gate_cache.hit_rate() - 8.0 / 9.0).abs() < 1e-12);

    // The bindings actually reached the circuits: distinct points produce
    // distinct distributions (same seed, same shots — only angles vary).
    let jobs = service.batch_jobs(batch);
    let distinct: std::collections::BTreeSet<_> = jobs
        .iter()
        .map(|&id| service.result(id).unwrap().counts)
        .collect();
    assert!(
        distinct.len() > 1,
        "angle grid must not collapse to one result"
    );
}

/// Warm-cache executions reproduce the uncached pipeline bit-for-bit: the
/// plan bound late is the same circuit the uncached path builds and binds.
#[test]
fn cached_parametric_execution_matches_uncached() {
    let backend = GateBackend::new();
    let cache = TranspileCache::new();
    for (i, bindings) in grid_bindings().into_iter().enumerate() {
        let job = symbolic_qaoa()
            .with_bindings(BindingSet::from_param_values(&bindings))
            .with_context(gate_context(7 + i as u64, 256));
        let cached = backend.execute_cached(&job, &cache).unwrap();
        let direct = backend.execute(&job).unwrap();
        assert_eq!(cached.counts, direct.counts, "point {i}");
        assert_eq!(cached.gate_metrics, direct.gate_metrics);
    }
    let stats = cache.gate_stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, 8);
}

/// Two sweeps whose programs differ only in symbol spelling share one plan.
#[test]
fn symbol_spelling_does_not_split_the_cache() {
    let backend = GateBackend::new();
    let cache = TranspileCache::new();
    // Build the same symbolic structure with different symbol names by
    // binding through the BindingSet (names only matter for lookup).
    let a = symbolic_qaoa()
        .with_bindings(BindingSet::new().with("gamma_0", 0.4).with("beta_0", 0.3))
        .with_context(gate_context(1, 128));
    backend.execute_cached(&a, &cache).unwrap();
    assert_eq!(
        a.symbolic_program_hash(),
        symbolic_qaoa().symbolic_program_hash(),
        "bindings stay out of the symbolic hash"
    );
    let b = symbolic_qaoa()
        .with_bindings(BindingSet::new().with("gamma_0", 1.1).with("beta_0", 0.9))
        .with_context(gate_context(2, 128));
    backend.execute_cached(&b, &cache).unwrap();
    assert_eq!(cache.gate_stats().entries, 1);
    assert_eq!(cache.gate_stats().hits, 1);
}

/// A bounded cache under plan churn evicts LRU plans and surfaces the count
/// through the service metrics.
#[test]
fn lru_evictions_surface_in_service_metrics() {
    let scheduler = qml_core::runtime::Scheduler::new(BackendRegistry::with_default_backends());
    let runtime = qml_core::runtime::Runtime::with_cache(
        scheduler,
        Arc::new(TranspileCache::with_capacity(1)),
    );
    let service = QmlService::with_runtime(runtime, ServiceConfig::with_workers(2));

    // Three structurally different programs thrash a capacity-1 plane.
    for width in [4usize, 6, 8] {
        let bundle = qaoa_maxcut_program(&cycle(width), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))
            .unwrap()
            .with_context(ContextDescriptor::for_gate(
                ExecConfig::new("gate.aer_simulator")
                    .with_samples(32)
                    .with_seed(1)
                    .with_target(Target::ring(width)),
            ));
        service.submit("tenant", bundle).unwrap();
    }
    service.run_pending();
    let metrics = service.metrics();
    assert_eq!(metrics.gate_cache.entries, 1, "capacity bound respected");
    assert!(
        metrics.gate_cache.evictions >= 2,
        "LRU evictions must be counted, got {}",
        metrics.gate_cache.evictions
    );
    assert_eq!(metrics.cache.evictions, metrics.gate_cache.evictions);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Property (acceptance criterion): for random angle bindings, executing
    /// a symbolically-transpiled-then-bound circuit yields the same result
    /// distribution as bind-first-then-transpile on the identical seed path.
    #[test]
    fn bound_late_matches_bind_first(
        gamma in -3.0f64..3.0,
        beta in -3.0f64..3.0,
        seed in 0u64..1000,
        level in 0u8..4,
    ) {
        let context = ContextDescriptor::for_gate(
            ExecConfig::new("gate.aer_simulator")
                .with_samples(256)
                .with_seed(seed)
                .with_target(Target::ring(4))
                .with_optimization_level(level),
        );
        let backend = GateBackend::new();
        let cache = TranspileCache::new();

        // Bind-late: symbolic program + BindingSet through the parametric
        // cached path (cold, then warm to also exercise the hit path).
        let late = symbolic_qaoa()
            .with_bindings(BindingSet::new().with("gamma_0", gamma).with("beta_0", beta))
            .with_context(context.clone());
        let cold = backend.execute_cached(&late, &cache).unwrap();
        let warm = backend.execute_cached(&late, &cache).unwrap();
        prop_assert_eq!(&cold.counts, &warm.counts);

        // Bind-first: substitute the angles into the operators (the seed
        // path), then lower + transpile the concrete program.
        let mut map = BTreeMap::new();
        map.insert("gamma_0".to_string(), ParamValue::Float(gamma));
        map.insert("beta_0".to_string(), ParamValue::Float(beta));
        let first = symbolic_qaoa().bind(&map).with_context(context);
        let first_result = backend.execute(&first).unwrap();

        // Identical seeds ⇒ identical sampled distributions.
        prop_assert_eq!(&cold.counts, &first_result.counts);

        // Sanity: the distribution is a genuine QAOA distribution.
        let graph = cycle(4);
        let cut = cold.expectation(|w| cut_value_of_bitstring(&graph, w));
        prop_assert!((0.0..=4.0).contains(&cut));
    }
}
