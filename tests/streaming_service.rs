//! Integration tests for the streaming service loop: submit-while-running,
//! two-tenant fairness under a large sweep, token-bucket rate limiting, and
//! drain-vs-abort shutdown semantics.

use std::sync::Arc;
use std::time::Duration;

use qml_core::graph::cycle;
use qml_core::prelude::*;
use qml_core::runtime::JobStatus;
use qml_core::service::{QmlService, RateLimit, ServiceConfig, SweepRequest, TenantPolicy};

fn gate_context(seed: u64, samples: u64) -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(samples)
            .with_seed(seed)
            .with_target(Target::ring(4)),
    )
}

fn fixed_qaoa() -> JobBundle {
    qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap()
}

const WAIT: Duration = Duration::from_secs(60);

#[test]
fn jobs_submitted_while_running_complete_without_restart() {
    let service = QmlService::with_config(ServiceConfig::with_workers(2));
    let handle = service.start().unwrap();

    // Submit from other threads while the pool is live.
    let submitters: Vec<_> = (0..3)
        .map(|t| {
            let service = service.clone();
            std::thread::spawn(move || {
                (0..4)
                    .map(|i| {
                        let seed = t * 10 + i;
                        let (_, job) = service
                            .submit(
                                &format!("tenant-{t}"),
                                fixed_qaoa().with_context(gate_context(seed, 64)),
                            )
                            .unwrap();
                        job
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let jobs: Vec<_> = submitters
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();

    assert!(service.wait_idle(WAIT), "service should quiesce");
    for job in &jobs {
        assert!(
            matches!(service.status(*job), Some(JobStatus::Completed)),
            "job {job:?} not completed: {:?}",
            service.status(*job)
        );
    }
    let summary = handle.drain();
    assert_eq!(summary.completed, 12);
    assert_eq!(service.metrics().jobs_completed, 12);
}

#[test]
fn small_tenant_is_not_starved_by_a_big_sweep() {
    // max_batch 1: this test proves per-job DRR interleaving. With batching
    // on, an uncontended whale may have its whole sweep claimed in a handful
    // of batch dispatches before the minnow's submission lands — correct
    // (nobody else was queued when the batches formed) but a race against
    // the assertions below; micro-batch fairness has its own tests in
    // `tests/batched_execution.rs` and the scheduler unit tests.
    let service = QmlService::with_config(ServiceConfig::with_workers(2).with_max_batch(1));

    // Tenant "whale": a 48-point seeded sweep, admitted before the pool
    // starts so its queue is deep from the first dispatch.
    let mut sweep = SweepRequest::new("big", fixed_qaoa());
    for seed in 0..48 {
        sweep = sweep.with_context(gate_context(seed, 512));
    }
    let whale_batch = service.submit_sweep("whale", sweep).unwrap();

    let handle = service.start().unwrap();

    // Tenant "minnow": one small job submitted *while* the whale's sweep is
    // being executed.
    let (_, minnow_job) = service
        .submit("minnow", fixed_qaoa().with_context(gate_context(99, 64)))
        .unwrap();

    let status = service.wait_for(minnow_job, WAIT);
    assert!(
        matches!(status, Some(JobStatus::Completed)),
        "minnow job should complete, got {status:?}"
    );

    // Fairness: at the moment the minnow's job completed, the whale's sweep
    // must not have finished — deficit round robin interleaved the minnow
    // instead of queueing it behind all 48 whale jobs.
    let whale_done = service
        .batch_jobs(whale_batch)
        .iter()
        .filter(|id| matches!(service.status(**id), Some(JobStatus::Completed)))
        .count();
    assert!(
        whale_done < 48,
        "minnow waited for the whole whale sweep (whale_done = {whale_done})"
    );

    let summary = handle.drain();
    assert_eq!(summary.completed, 49, "everything still completes");

    // The small tenant's submit→dispatch wait is bounded and recorded.
    let metrics = service.metrics();
    assert_eq!(metrics.per_tenant["minnow"].dispatched, 1);
    assert!(
        metrics.per_tenant["minnow"].mean_wait_seconds()
            <= metrics.per_tenant["whale"].mean_wait_seconds(),
        "minnow (wait {:.4}s) should not wait longer on average than the whale (wait {:.4}s)",
        metrics.per_tenant["minnow"].mean_wait_seconds(),
        metrics.per_tenant["whale"].mean_wait_seconds()
    );
}

#[test]
fn rate_limit_is_enforced_while_running() {
    // "limited" gets a burst-only bucket of 2 jobs and no sustained rate:
    // exactly two of its six jobs may dispatch while the service runs.
    let config = ServiceConfig::with_workers(2).with_tenant_policy(
        "limited",
        TenantPolicy::default().with_rate_limit(RateLimit {
            jobs_per_second: 0.0,
            burst: 2.0,
        }),
    );
    let service = QmlService::with_config(config);
    for seed in 0..6 {
        service
            .submit("limited", fixed_qaoa().with_context(gate_context(seed, 32)))
            .unwrap();
    }
    let handle = service.start().unwrap();

    // Wait for the burst to finish, then confirm the service holds steady.
    let deadline = std::time::Instant::now() + WAIT;
    while service.metrics().jobs_completed < 2 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    std::thread::sleep(Duration::from_millis(50));
    let metrics = service.metrics();
    assert_eq!(metrics.jobs_completed, 2, "burst allows exactly two jobs");
    assert_eq!(metrics.queue_depth, 4, "the rest stay queued");
    assert!(
        metrics.per_tenant["limited"].throttled > 0,
        "throttle events are counted"
    );
    assert!(metrics.scheduler.throttled > 0);

    // Abort keeps the throttled jobs queued...
    let summary = handle.abort();
    assert_eq!(summary.completed, 2);
    assert_eq!(service.metrics().queue_depth, 4);

    // ...and a graceful drain waives rate limits so shutdown terminates.
    let report = service.run_pending();
    assert_eq!(report.completed, 4);
    assert_eq!(service.metrics().queue_depth, 0);
}

#[test]
fn drain_finishes_all_admitted_work() {
    // Even a rate-limited tenant drains fully: drain() waives rate limits so
    // graceful shutdown cannot hang on an empty token bucket.
    let config = ServiceConfig::with_workers(2).with_tenant_policy(
        "slow",
        TenantPolicy::default().with_rate_limit(RateLimit {
            jobs_per_second: 0.0,
            burst: 1.0,
        }),
    );
    let service = QmlService::with_config(config);
    let mut jobs = Vec::new();
    for seed in 0..8 {
        let (_, job) = service
            .submit("slow", fixed_qaoa().with_context(gate_context(seed, 32)))
            .unwrap();
        jobs.push(job);
    }
    let handle = service.start().unwrap();
    let summary = handle.drain();
    assert_eq!(summary.jobs, 8);
    assert_eq!(summary.completed, 8);
    assert_eq!(service.metrics().queue_depth, 0);
    for job in jobs {
        assert!(matches!(service.status(job), Some(JobStatus::Completed)));
    }
}

#[test]
fn abort_stops_at_the_next_job_boundary_and_restart_resumes() {
    // max_batch = 1: abort stops at the next *dispatch* boundary, and a
    // micro-batch is one dispatch — an uncontended tenant would drain all 12
    // jobs in two batches, racing the queue-depth assertion below. Solo
    // dispatches make the boundary a single job, which is what this test is
    // about.
    let service = QmlService::with_config(ServiceConfig::with_workers(1).with_max_batch(1));
    let mut jobs = Vec::new();
    // 8192-sample jobs: each takes long enough that the polling thread below
    // reliably lands its abort before the single worker drains all twelve (a
    // 512-sample queue could empty inside one oversleep of the 200µs poll).
    for seed in 0..12 {
        let (_, job) = service
            .submit(
                "tenant",
                fixed_qaoa().with_context(gate_context(seed, 8192)),
            )
            .unwrap();
        jobs.push(job);
    }
    let handle = service.start().unwrap();

    // Let at least one job finish, then pull the plug.
    let deadline = std::time::Instant::now() + WAIT;
    while service.metrics().jobs_completed < 1 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_micros(200));
    }
    let summary = handle.abort();

    // In-flight work finished (abort is a job-boundary stop, not a kill):
    // every job is either untouched (Queued) or fully Completed — never torn.
    assert!(summary.completed >= 1, "at least the first job finished");
    let after_abort = service.metrics();
    assert!(
        after_abort.queue_depth > 0,
        "abort must leave undispatched work queued"
    );
    for job in &jobs {
        assert!(
            matches!(
                service.status(*job),
                Some(JobStatus::Queued) | Some(JobStatus::Completed)
            ),
            "job {job:?} in unexpected state {:?}",
            service.status(*job)
        );
    }

    // A later run (here the one-shot wrapper) resumes the leftover queue.
    service.run_pending();
    assert_eq!(service.metrics().queue_depth, 0);
    assert_eq!(service.metrics().jobs_completed, 12);
}

#[test]
fn in_flight_cap_is_never_exceeded() {
    // Tenant "capped" may have at most 1 job executing even on a 4-wide
    // pool; tenant "free" keeps the other workers busy. Sample the in-flight
    // gauge continuously — it must never exceed the cap.
    let config = ServiceConfig::with_workers(4)
        .with_tenant_policy("capped", TenantPolicy::default().with_max_in_flight(1));
    let service = QmlService::with_config(config);
    for seed in 0..6 {
        service
            .submit("capped", fixed_qaoa().with_context(gate_context(seed, 256)))
            .unwrap();
        service
            .submit(
                "free",
                fixed_qaoa().with_context(gate_context(100 + seed, 256)),
            )
            .unwrap();
    }
    let handle = service.start().unwrap();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sampler = {
        let service = service.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut max_seen = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                if let Some(stats) = service.metrics().per_tenant.get("capped") {
                    max_seen = max_seen.max(stats.in_flight);
                }
                std::thread::sleep(Duration::from_micros(100));
            }
            max_seen
        })
    };
    let summary = handle.drain();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let max_in_flight = sampler.join().unwrap();
    assert_eq!(summary.completed, 12);
    assert!(
        max_in_flight <= 1,
        "cap of 1 violated: saw {max_in_flight} in flight"
    );
}

#[test]
fn weighted_tenants_split_throughput_unevenly() {
    // Not a wall-clock assertion (single-CPU CI): check the *dispatch
    // ordering* — among the first half of dispatches, the weight-3 tenant
    // must own a clear majority.
    let config = ServiceConfig::with_workers(1)
        .with_tenant_policy("heavy", TenantPolicy::default().with_weight(3.0));
    let service = QmlService::with_config(config);
    let mut heavy = SweepRequest::new("heavy", fixed_qaoa());
    let mut light = SweepRequest::new("light", fixed_qaoa());
    for seed in 0..16 {
        heavy = heavy.with_context(gate_context(seed, 64));
        light = light.with_context(gate_context(100 + seed, 64));
    }
    let heavy_batch = service.submit_sweep("heavy", heavy).unwrap();
    service.submit_sweep("light", light).unwrap();

    // Drive the scheduler deterministically through the one-shot wrapper
    // with a single worker: dispatch order == completion order.
    let light_done_when_heavy_finished = {
        let handle = service.start().unwrap();
        let heavy_jobs = service.batch_jobs(heavy_batch);
        let deadline = std::time::Instant::now() + WAIT;
        loop {
            let done = heavy_jobs
                .iter()
                .filter(|id| matches!(service.status(**id), Some(JobStatus::Completed)))
                .count();
            if done == 16 || std::time::Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        let light_done = service.metrics().per_tenant["light"].completed;
        handle.drain();
        light_done
    };
    // With 3:1 weights the heavy tenant finishes its 16 jobs after roughly
    // 16/3 ≈ 5-6 light completions; equal weights would give ~16.
    assert!(
        light_done_when_heavy_finished <= 10,
        "3:1 weighting not visible: light completed {light_done_when_heavy_finished} \
         of 16 before heavy finished"
    );
    assert_eq!(service.metrics().jobs_completed, 32);
}
