//! Integration tests for service classes: deadline-aware latency scheduling
//! coexisting with throughput sweeps.
//!
//! The contract under test, end to end through the public service API:
//!
//! * a closed-loop variational optimizer (submit one latency-class
//!   evaluation, await the objective, propose the next angles) stays
//!   responsive while another tenant saturates the pool with a
//!   throughput-class sweep — bounded wall-time inflation, and a
//!   **bit-identical** optimization trajectory (seeded simulation plus a
//!   deterministic driver mean load may slow the loop, never steer it);
//! * deadline-free latency jobs can never be counted as deadline misses,
//!   and generous deadlines are met on an idle service;
//! * the latency class cannot starve a throughput tenant beyond the DRR
//!   weight band: classes reorder work *within* a tenant only.

use std::time::{Duration, Instant};

use qml_core::algorithms::PatternSearch;
use qml_core::graph::{cut_value_of_bitstring, cycle, Graph};
use qml_core::prelude::*;
use qml_core::service::{QmlService, ServiceConfig, SweepRequest};

const WAIT: Duration = Duration::from_secs(60);

fn gate_context(seed: u64, samples: u64) -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(samples)
            .with_seed(seed)
            .with_target(Target::ring(6)),
    )
}

fn fixed_qaoa() -> JobBundle {
    qaoa_maxcut_program(&cycle(6), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap()
}

/// One full pattern search through the running service: every evaluation
/// binds the proposed angles onto the shared symbolic program, submits it
/// latency-class, and blocks on the measured expected cut. Seeds depend only
/// on the evaluation index, so two runs observe identical objectives.
fn optimize(service: &QmlService, graph: &Graph, program: &JobBundle) -> (PatternSearch, Duration) {
    let mut search = PatternSearch::new(
        QaoaAngles {
            gamma: 0.1,
            beta: 1.0,
        },
        0.4,
        0.05,
    );
    let started = Instant::now();
    while let Some(angles) = search.next_angles() {
        let eval = search.evaluations() as u64;
        let bundle = program
            .clone()
            .with_bindings(
                BindingSet::new()
                    .with("gamma_0", angles.gamma)
                    .with("beta_0", angles.beta),
            )
            .with_service_class(ServiceClass::latency())
            .with_context(gate_context(1000 + eval, 8192));
        let (_, job) = service.submit("opt", bundle).unwrap();
        assert!(
            service.wait_for(job, WAIT).is_some(),
            "evaluation timed out"
        );
        let result = service.result(job).expect("evaluation completed");
        search.observe(result.expectation(|word| cut_value_of_bitstring(graph, word)));
    }
    (search, started.elapsed())
}

#[test]
fn closed_loop_stays_responsive_and_deterministic_under_saturation() {
    let graph = cycle(6);
    let program = qaoa_maxcut_program(&graph, &QaoaSchedule::Symbolic { layers: 1 }).unwrap();
    let service = QmlService::with_config(ServiceConfig::with_workers(2));
    let handle = service.start().unwrap();

    // Two alternating idle/loaded rounds, keeping the *minimum* wall per
    // side: this binary shares the machine with the rest of the test suite,
    // so any single measurement can be inflated by unrelated CPU weather
    // (the same reason the perf harness alternates A/B repetitions). The
    // min filters transient contention; the scheduling contract under test
    // is deterministic, so every trajectory must still be bit-identical.
    const ROUNDS: usize = 3;
    const WHALE_JOBS: u64 = 1000;
    let mut idle_walls = Vec::new();
    let mut loaded_walls = Vec::new();
    let mut searches = Vec::new();
    for round in 0..ROUNDS {
        let (idle, idle_wall) = optimize(&service, &graph, &program);
        assert!(idle.converged(), "idle optimization must converge");
        idle_walls.push(idle_wall);
        searches.push(idle);

        // A whale saturates the pool with a throughput-class sweep, then
        // the same optimization runs again from scratch.
        let mut sweep = SweepRequest::new(format!("whale-{round}"), fixed_qaoa());
        for seed in 0..WHALE_JOBS {
            sweep = sweep.with_context(gate_context(seed, 64));
        }
        service.submit_sweep("whale", sweep).unwrap();
        let (loaded, loaded_wall) = optimize(&service, &graph, &program);
        assert!(loaded.converged(), "loaded optimization must converge");
        loaded_walls.push(loaded_wall);
        searches.push(loaded);
        assert!(service.wait_idle(Duration::from_secs(120)));
    }
    let idle_wall = idle_walls.iter().min().copied().unwrap();
    let loaded_wall = loaded_walls.iter().min().copied().unwrap();

    // Latency-class scheduling bounds the interactive loop's inflation even
    // though a 1000-job backlog is competing for both workers.
    let ratio = loaded_wall.as_secs_f64() / idle_wall.as_secs_f64().max(1e-9);
    assert!(
        ratio <= 3.0,
        "closed loop degraded {ratio:.2}x under saturation \
         (idle {:.1} ms, loaded {:.1} ms)",
        idle_wall.as_secs_f64() * 1e3,
        loaded_wall.as_secs_f64() * 1e3,
    );

    // Load may slow the loop down; it must not change a single proposed
    // angle or observed objective: all four runs (idle and loaded alike)
    // walk one bit-identical trajectory.
    let reference = &searches[0];
    for search in &searches[1..] {
        assert_eq!(reference.evaluations(), search.evaluations());
        for (a, b) in reference.trajectory().iter().zip(search.trajectory()) {
            assert_eq!(a.0.gamma.to_bits(), b.0.gamma.to_bits());
            assert_eq!(a.0.beta.to_bits(), b.0.beta.to_bits());
            assert_eq!(
                a.1.to_bits(),
                b.1.to_bits(),
                "objective diverged under load"
            );
        }
    }

    let metrics = service.metrics();
    let latency = &metrics.per_class["latency"];
    let throughput = &metrics.per_class["throughput"];
    assert_eq!(
        latency.completed,
        (searches.len() * reference.evaluations()) as u64,
        "every evaluation ran latency-class"
    );
    assert_eq!(latency.deadline_miss, 0, "deadline-free jobs cannot miss");
    assert_eq!(
        throughput.completed,
        ROUNDS as u64 * WHALE_JOBS,
        "the whales still finished"
    );
    handle.drain();
}

#[test]
fn deadlines_are_tracked_per_class_and_generous_ones_are_met() {
    let service = QmlService::with_config(ServiceConfig::with_workers(2));
    // Deadline-free latency jobs plus generously-deadlined ones, alongside
    // plain throughput work.
    for i in 0..4u64 {
        service
            .submit(
                "interactive",
                fixed_qaoa()
                    .with_service_class(ServiceClass::latency())
                    .with_context(gate_context(i, 64)),
            )
            .unwrap();
        service
            .submit(
                "interactive",
                fixed_qaoa()
                    .with_service_class(ServiceClass::latency_within(WAIT))
                    .with_context(gate_context(100 + i, 64)),
            )
            .unwrap();
        service
            .submit("bulk", fixed_qaoa().with_context(gate_context(200 + i, 64)))
            .unwrap();
    }
    let report = service.run_pending();
    assert_eq!(report.completed, 12);
    let metrics = service.metrics();
    let latency = &metrics.per_class["latency"];
    let throughput = &metrics.per_class["throughput"];
    assert_eq!(latency.dispatched, 8);
    assert_eq!(latency.completed, 8);
    assert_eq!(latency.queued, 0);
    assert_eq!(
        latency.deadline_miss, 0,
        "an idle service meets a 60s deadline"
    );
    assert_eq!(throughput.dispatched, 4);
    assert_eq!(throughput.deadline_miss, 0, "throughput never carries one");
}

#[test]
fn latency_class_cannot_starve_throughput_beyond_the_weight_band() {
    // Equal weights, identical real per-job cost; "interactive" submits
    // everything latency-class, "bulk" everything throughput-class. Classes
    // reorder within a tenant only, so mid-run busy-seconds must stay in
    // the same band a class-less workload would get.
    let service = QmlService::with_config(ServiceConfig::with_workers(1).with_max_batch(1));
    for i in 0..150u64 {
        service
            .submit(
                "interactive",
                fixed_qaoa()
                    .with_service_class(ServiceClass::latency())
                    .with_context(gate_context(i, 4096)),
            )
            .unwrap();
        service
            .submit(
                "bulk",
                fixed_qaoa().with_context(gate_context(1000 + i, 4096)),
            )
            .unwrap();
    }
    let handle = service.start().unwrap();
    // Sample mid-run, while both tenants are still backlogged: a full drain
    // would trivially equalize busy-seconds (equal total work).
    let deadline = Instant::now() + WAIT;
    while service.metrics().jobs_completed < 100 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_micros(500));
    }
    handle.abort();
    let metrics = service.metrics();
    let interactive = &metrics.per_tenant["interactive"];
    let bulk = &metrics.per_tenant["bulk"];
    assert!(
        interactive.completed >= 10 && bulk.completed >= 10,
        "both tenants must make progress mid-run ({} vs {})",
        interactive.completed,
        bulk.completed
    );
    let ratio = (interactive.busy_seconds + 1e-9) / (bulk.busy_seconds + 1e-9);
    assert!(
        (1.0 / 3.0..=3.0).contains(&ratio),
        "latency class must not bend the weight band; got busy-seconds \
         ratio {ratio:.2}"
    );
    // The class split is visible in the same snapshot.
    assert!(metrics.per_class["latency"].dispatched >= 10);
    assert!(metrics.per_class["throughput"].dispatched >= 10);
}
