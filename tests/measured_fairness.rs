//! Integration tests for measured-cost fairness: the scheduler's deficit is
//! reconciled against observed busy-seconds (charge-back + online cost
//! model), so weighted fairness holds in device time even when placement
//! estimates are wildly wrong.

use std::time::{Duration, Instant};

use qml_core::graph::cycle;
use qml_core::prelude::*;
use qml_core::service::{QmlService, ServiceConfig, SweepRequest};

fn gate_context(seed: u64, samples: u64) -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(samples)
            .with_seed(seed)
            .with_target(Target::ring(4)),
    )
}

fn fixed_qaoa() -> JobBundle {
    qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap()
}

/// The same program with its descriptors' cost hints stripped: placement
/// estimates 0.0 (floored to the scheduler's minimum), while the job's real
/// execution cost is unchanged — the systematic mis-estimate this PR's
/// fairness loop exists to absorb.
fn hintless_qaoa() -> JobBundle {
    let mut bundle = fixed_qaoa();
    for op in &mut bundle.operators {
        op.cost_hint = None;
    }
    bundle
}

const WAIT: Duration = Duration::from_secs(60);

#[test]
fn busy_seconds_and_estimate_error_gauges_populate() {
    let service = QmlService::with_config(ServiceConfig::with_workers(2));
    let mut sweep = SweepRequest::new("seeds", fixed_qaoa());
    for seed in 0..6 {
        sweep = sweep.with_context(gate_context(seed, 64));
    }
    service.submit_sweep("alice", sweep).unwrap();
    let report = service.run_pending();
    assert_eq!(report.completed, 6);

    let metrics = service.metrics();
    // Every finished job fed the measured-cost loop.
    assert_eq!(metrics.scheduler.cost_samples, 6);
    assert!(metrics.scheduler.mean_abs_estimate_error() >= 0.0);
    // Per-tenant busy-seconds mirror the per-backend attribution: both fold
    // the same honest per-job durations.
    let tenant_busy = metrics.per_tenant["alice"].busy_seconds;
    let backend_busy: f64 = metrics.per_backend.values().map(|u| u.busy_seconds).sum();
    assert!(tenant_busy > 0.0, "measured busy-seconds must accumulate");
    assert!(
        (tenant_busy - backend_busy).abs() < 1e-9,
        "tenant ({tenant_busy}) and backend ({backend_busy}) busy-seconds \
         fold the same durations"
    );
}

/// Submit `jobs` per tenant (interleaved), run on one worker until
/// `sample_at` jobs completed, abort, and return the per-tenant
/// (busy-seconds, completed) pairs as ((sandbagged), (honest)).
fn run_mis_estimated(config: ServiceConfig, jobs: u64, sample_at: u64) -> ((f64, u64), (f64, u64)) {
    let service = QmlService::with_config(config);
    for i in 0..jobs {
        service
            .submit(
                "sandbagged",
                hintless_qaoa().with_context(gate_context(i, 4096)),
            )
            .unwrap();
        service
            .submit(
                "honest",
                fixed_qaoa().with_context(gate_context(1000 + i, 4096)),
            )
            .unwrap();
    }
    let handle = service.start().unwrap();
    // Sample mid-run, while both tenants are still backlogged: a full drain
    // would trivially equalize busy-seconds (equal total work).
    let deadline = Instant::now() + WAIT;
    while service.metrics().jobs_completed < sample_at && Instant::now() < deadline {
        std::thread::sleep(Duration::from_micros(500));
    }
    handle.abort();
    let metrics = service.metrics();
    let sand = &metrics.per_tenant["sandbagged"];
    let honest = &metrics.per_tenant["honest"];
    (
        (sand.busy_seconds, sand.completed),
        (honest.busy_seconds, honest.completed),
    )
}

#[test]
fn under_estimated_tenant_cannot_hog_busy_seconds() {
    // Two tenants, equal weights, identical *real* per-job cost — but
    // "sandbagged" strips its cost hints (admitted at the 1.0 floor) while
    // "honest" carries descriptor hints that over-state the job by ~85×.
    // In estimate units the scheduler would hand sandbagged ~85 jobs per
    // rotation and honest one; measured-cost repricing and charge-back
    // price both at their observed busy-seconds, so device time converges
    // to the 1:1 weight ratio after the cold-start rotation.
    let config = ServiceConfig::with_workers(1).with_max_batch(1);
    let ((sand_busy, sand_done), (honest_busy, honest_done)) = run_mis_estimated(config, 200, 150);
    assert!(
        sand_done >= 10 && honest_done >= 10,
        "both tenants must make progress mid-run (sandbagged {sand_done}, honest {honest_done})"
    );
    let ratio = (sand_busy + 1e-9) / (honest_busy + 1e-9);
    assert!(
        (1.0 / 3.0..=3.0).contains(&ratio),
        "equal weights must mean comparable busy-seconds; got ratio {ratio:.2} \
         ({sand_busy:.4}s over {sand_done} jobs vs {honest_busy:.4}s over {honest_done})"
    );
}

#[test]
fn disabling_the_measured_loop_restores_the_old_estimate_unit_monopoly() {
    // The "before" proof: with the cost model and charge-back disabled (the
    // pre-measured scheduler), the same workload lets the under-estimated
    // tenant hog the device: it receives a large multiple of the honest
    // tenant's busy-seconds at equal weight.
    let config = ServiceConfig::with_workers(1)
        .with_max_batch(1)
        .with_cost_ewma_alpha(0.0)
        .with_charge_back_clamp(0.0);
    let ((sand_busy, sand_done), (honest_busy, honest_done)) = run_mis_estimated(config, 200, 150);
    let ratio = (sand_busy + 1e-9) / (honest_busy + 1e-9);
    assert!(
        ratio > 3.0,
        "without measured-cost fairness the 85× estimate skew must dominate \
         dispatch; got ratio {ratio:.2} ({sand_done} vs {honest_done} jobs)"
    );
}

#[test]
fn measured_costs_reprice_streaming_resubmissions() {
    // Round 1 submits a plan the scheduler has never measured: admission
    // uses the descriptor estimate and the error gauge records the gap.
    // Round 2 resubmits the same plan after its outcomes have been
    // measured: admissions now charge the model's busy-seconds prediction,
    // so the per-job estimate error must shrink decisively.
    let service = QmlService::with_config(ServiceConfig::with_workers(1));
    let handle = service.start().unwrap();
    let submit_round = |base: u64| {
        for i in 0..8 {
            service
                .submit(
                    "opt",
                    fixed_qaoa().with_context(gate_context(base + i, 256)),
                )
                .unwrap();
        }
    };
    submit_round(0);
    assert!(service.wait_idle(WAIT), "round 1 must finish");
    let round1 = service.metrics().scheduler;
    assert_eq!(round1.cost_samples, 8);
    let round1_mean = round1.estimate_error_units / round1.cost_samples as f64;

    submit_round(1000);
    assert!(service.wait_idle(WAIT), "round 2 must finish");
    handle.drain();
    let total = service.metrics().scheduler;
    assert_eq!(total.cost_samples, 16);
    let round2_mean = (total.estimate_error_units - round1.estimate_error_units) / 8.0;
    assert!(
        round2_mean < round1_mean * 0.5,
        "model-priced admissions must at least halve the estimate error \
         (round 1 {round1_mean:.3} units/job, round 2 {round2_mean:.3})"
    );
}

#[test]
fn shot_ladder_batches_still_form_with_measured_costs() {
    // Micro-batching and measured costs compose: an anneal shot ladder
    // coalesces (read policy is outside the plan key), completes, and the
    // measured loop sees every member.
    let service = QmlService::with_config(ServiceConfig::with_workers(1));
    for reads in [16u64, 64, 256, 1024] {
        service
            .submit(
                "ladder",
                maxcut_ising_program(&cycle(4)).unwrap().with_context(
                    ContextDescriptor::for_anneal(
                        "anneal.neal_simulator",
                        AnnealConfig::with_reads(reads),
                    ),
                ),
            )
            .unwrap();
    }
    let report = service.run_pending();
    assert_eq!(report.completed, 4);
    let metrics = service.metrics();
    assert!(metrics.scheduler.batches >= 1, "the ladder must coalesce");
    assert_eq!(metrics.scheduler.cost_samples, 4);
    assert!(metrics.per_tenant["ladder"].busy_seconds > 0.0);
}
