//! Integration tests for the allocation-free execute hot path (PR 7).
//!
//! The tentpole invariant: **overlay-bind == clone-bind, bit for bit**. A
//! [`BoundCircuit`](qml_core::sim::BoundCircuit) overlay over the shared plan
//! circuit must produce exactly the counts the old clone-and-rewrite path
//! produced for identical seeds — across optimization levels, shot ladders,
//! and both backend planes — and the cache counters must be unaffected by
//! how binding is implemented.

use std::collections::BTreeMap;

use proptest::prelude::*;

use qml_core::backends::{
    lower_to_circuit, AnnealBackend, Backend, GateBackend, GatePlan, TranspileCache,
};
use qml_core::graph::cycle;
use qml_core::prelude::*;
use qml_core::sim::Simulator;
use qml_core::transpile::{transpile, TranspileTarget};
use qml_core::types::{BindingSet, ParamValue};

fn gate_context(seed: u64, samples: u64, level: u8) -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(samples)
            .with_seed(seed)
            .with_target(Target::ring(4))
            .with_optimization_level(level),
    )
}

fn symbolic_qaoa() -> JobBundle {
    qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Symbolic { layers: 1 }).unwrap()
}

/// Transpile the symbolic QAOA program into a parametric [`GatePlan`] the
/// way the gate backend does, at the given optimization level.
fn qaoa_plan(level: u8) -> GatePlan {
    let lowered = lower_to_circuit(&symbolic_qaoa()).unwrap();
    let transpiled = transpile(&lowered.circuit, &TranspileTarget::ideal(), level).unwrap();
    GatePlan::new(
        transpiled.circuit,
        lowered.symbols,
        transpiled.metrics,
        lowered.register,
        lowered.schema,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Plan-level property: for random bindings, seeds, shot counts, and
    /// every optimization level, sampling through the zero-copy overlay
    /// reproduces the materialized clone-bound circuit bit for bit.
    #[test]
    fn overlay_bind_matches_clone_bind_bit_for_bit(
        gamma in -3.0f64..3.0,
        beta in -3.0f64..3.0,
        seed in 0u64..1000,
        shots in 1u64..2048,
        level in 0u8..4,
    ) {
        let plan = qaoa_plan(level);
        prop_assert!(plan.is_parametric());
        let values = [gamma, beta];

        let cloned = plan.bind(&values).unwrap();
        let overlay = plan.bind_overlay(&values).unwrap();
        prop_assert_eq!(&overlay.to_circuit(), &cloned);

        let sim = Simulator::new();
        let via_clone = sim.run(&cloned, shots, seed);
        let via_overlay = sim.try_run_view(&overlay, shots, seed).unwrap();
        prop_assert_eq!(via_clone, via_overlay);
    }

    /// End-to-end gate plane: the cached (overlay) pipeline matches the
    /// uncached pipeline — counts, decoded schema, metrics — and the cache
    /// counters reflect lookups, not binding strategy.
    #[test]
    fn gate_plane_cached_overlay_matches_direct(
        gamma in -3.0f64..3.0,
        beta in -3.0f64..3.0,
        seed in 0u64..1000,
        level in 0u8..4,
    ) {
        let backend = GateBackend::new();
        let cache = TranspileCache::new();
        for (i, shots) in [64u64, 256, 1024].into_iter().enumerate() {
            let bundle = symbolic_qaoa()
                .with_bindings(
                    BindingSet::new().with("gamma_0", gamma).with("beta_0", beta),
                )
                .with_context(gate_context(seed, shots, level));
            let cached = backend.execute_cached(&bundle, &cache).unwrap();
            let direct = backend.execute(&bundle).unwrap();
            prop_assert_eq!(&cached.counts, &direct.counts);
            prop_assert_eq!(&cached.decoded, &direct.decoded);
            prop_assert_eq!(cached.gate_metrics, direct.gate_metrics);
            prop_assert_eq!(cached.shots, shots);
            let stats = cache.gate_stats();
            // The shot ladder shares one plan: 1 miss, then only hits.
            prop_assert_eq!(stats.misses, 1);
            prop_assert_eq!(stats.hits, i as u64);
        }
    }
}

/// Anneal plane: a read ladder through the cached path matches the uncached
/// path exactly and shares one lowered plan — binding strategy on the gate
/// plane must not disturb the BQM plane.
#[test]
fn anneal_plane_cached_matches_direct_across_read_ladder() {
    let backend = AnnealBackend::new();
    let cache = TranspileCache::new();
    for (i, reads) in [50u64, 100, 200, 400].into_iter().enumerate() {
        let mut anneal = AnnealConfig::with_reads(reads);
        anneal.seed = Some(11);
        let bundle =
            maxcut_ising_program(&cycle(4))
                .unwrap()
                .with_context(ContextDescriptor::for_anneal(
                    "anneal.neal_simulator",
                    anneal,
                ));
        let cached = backend.execute_cached(&bundle, &cache).unwrap();
        let direct = backend.execute(&bundle).unwrap();
        assert_eq!(cached, direct, "read ladder member {i}");
        assert_eq!(cached.shots, reads);
    }
    let stats = cache.anneal_stats();
    assert_eq!(stats.misses, 1, "one BQM lowering for the whole ladder");
    assert_eq!(stats.hits, 3);
}

/// A full binding grid through the service still produces distinct
/// distributions per point (the overlay really reaches the simulator).
#[test]
fn overlay_bound_sweep_points_stay_distinct() {
    let backend = GateBackend::new();
    let cache = TranspileCache::new();
    let mut distinct = std::collections::BTreeSet::new();
    for gi in 1..=3 {
        let mut bindings = BTreeMap::new();
        bindings.insert(
            "gamma_0".to_string(),
            ParamValue::Float(std::f64::consts::PI * gi as f64 / 8.0),
        );
        bindings.insert("beta_0".to_string(), ParamValue::Float(0.4));
        let bundle = symbolic_qaoa()
            .with_bindings(BindingSet::from_param_values(&bindings))
            .with_context(gate_context(42, 512, 2));
        distinct.insert(backend.execute_cached(&bundle, &cache).unwrap().counts);
    }
    assert!(
        distinct.len() > 1,
        "angle grid collapsed to one distribution"
    );
}
