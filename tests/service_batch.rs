//! Integration tests for the `qml-service` batch-execution tier: sweep
//! expansion, transpilation-cache reuse, deterministic results under
//! concurrency, and failed-job isolation within a batch.

use std::collections::BTreeMap;

use qml_core::graph::{cut_value_of_bitstring, cycle};
use qml_core::prelude::*;
use qml_core::runtime::JobStatus;
use qml_core::service::{QmlService, ServiceConfig, SweepRequest};
use qml_core::types::ParamValue;

fn gate_context(seed: u64, samples: u64) -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(samples)
            .with_seed(seed)
            .with_target(Target::ring(4)),
    )
}

fn fixed_qaoa() -> JobBundle {
    qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap()
}

fn anneal_job(reads: u64) -> JobBundle {
    maxcut_ising_program(&cycle(4))
        .unwrap()
        .with_context(ContextDescriptor::for_anneal(
            "anneal.neal_simulator",
            AnnealConfig::with_reads(reads),
        ))
}

#[test]
fn sweep_expansion_binds_angles_server_side() {
    // One symbolic intent + three angle sets: the optimizer ships one bundle,
    // the service expands and binds.
    let template = qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Symbolic { layers: 1 }).unwrap();
    let mut sweep = SweepRequest::new("angle-scan", template).with_context(gate_context(42, 512));
    for gamma in [0.4, 0.6, 0.8] {
        let mut bindings = BTreeMap::new();
        bindings.insert("gamma_0".to_string(), ParamValue::Float(gamma));
        bindings.insert("beta_0".to_string(), ParamValue::Float(0.55));
        sweep = sweep.with_binding_set(bindings);
    }

    let service = QmlService::with_config(ServiceConfig::with_workers(3));
    let batch = service.submit_sweep("optimizer", sweep).unwrap();
    let jobs = service.batch_jobs(batch);
    assert_eq!(jobs.len(), 3);

    let report = service.run_pending();
    assert_eq!(report.completed, 3);
    assert_eq!(report.failed, 0);

    // Every expanded point executed with its own angles: results are
    // well-formed QAOA distributions over the same graph.
    let graph = cycle(4);
    for job in jobs {
        let result = service.result(job).unwrap();
        assert_eq!(result.shots, 512);
        let cut = result.expectation(|w| cut_value_of_bitstring(&graph, w));
        assert!(cut > 1.0, "expected a sensible cut, got {cut}");
    }
}

#[test]
fn repeated_contexts_hit_the_transpile_cache() {
    // Eight seeded restarts of one program on one target: exactly one
    // transpilation, seven cache hits.
    let mut sweep = SweepRequest::new("restarts", fixed_qaoa());
    for seed in 0..8 {
        sweep = sweep.with_context(gate_context(seed, 128));
    }
    let service = QmlService::with_config(ServiceConfig::with_workers(4));
    service.submit_sweep("tenant", sweep).unwrap();
    let report = service.run_pending();
    assert_eq!(report.completed, 8);

    let metrics = service.metrics();
    assert_eq!(metrics.gate_cache.misses, 1);
    assert_eq!(metrics.gate_cache.hits, 7);
    assert_eq!(metrics.gate_cache.entries, 1);
    assert!(metrics.cache.hit_rate() > 0.8);
}

#[test]
fn anneal_lowering_is_cached_too() {
    let mut sweep = SweepRequest::new("reads", maxcut_ising_program(&cycle(4)).unwrap());
    for reads in [50u64, 100, 150, 200] {
        sweep = sweep.with_context(ContextDescriptor::for_anneal(
            "anneal.neal_simulator",
            AnnealConfig::with_reads(reads),
        ));
    }
    let service = QmlService::with_config(ServiceConfig::with_workers(2));
    service.submit_sweep("tenant", sweep).unwrap();
    let report = service.run_pending();
    assert_eq!(report.completed, 4);
    let metrics = service.metrics();
    assert_eq!(metrics.anneal_cache.misses, 1);
    assert_eq!(metrics.anneal_cache.hits, 3);
}

#[test]
fn concurrent_execution_is_deterministic() {
    // The same sweep drained on pools of different widths must produce
    // bit-identical per-job results: seeded executions do not depend on
    // worker interleaving or steal order.
    let run_with_workers = |workers: usize| -> Vec<(u64, std::collections::BTreeMap<String, u64>)> {
        let mut sweep = SweepRequest::new("det", fixed_qaoa());
        for seed in 0..6 {
            sweep = sweep.with_context(gate_context(seed, 256));
        }
        let service = QmlService::with_config(ServiceConfig::with_workers(workers));
        let batch = service.submit_sweep("tenant", sweep).unwrap();
        service.run_pending();
        service
            .batch_jobs(batch)
            .into_iter()
            .map(|id| {
                let r = service.result(id).unwrap();
                (r.shots, r.counts)
            })
            .collect()
    };

    let serial = run_with_workers(1);
    let parallel = run_with_workers(4);
    assert_eq!(serial, parallel);
}

#[test]
fn failed_jobs_stay_isolated_within_a_batch() {
    // A mixed batch in which one job cannot be realized (QAOA forced onto
    // the annealer): the bad job fails, every other job completes.
    let service = QmlService::with_config(ServiceConfig::with_workers(2));
    let (_, good_gate) = service
        .submit("tenant", fixed_qaoa().with_context(gate_context(1, 64)))
        .unwrap();
    let (_, bad) = service
        .submit(
            "tenant",
            fixed_qaoa().with_context(ContextDescriptor::for_anneal(
                "anneal.neal_simulator",
                AnnealConfig::with_reads(10),
            )),
        )
        .unwrap();
    let (_, good_anneal) = service.submit("tenant", anneal_job(64)).unwrap();

    let report = service.run_pending();
    assert_eq!(report.jobs, 3);
    assert_eq!(report.completed, 2);
    assert_eq!(report.failed, 1);

    assert!(matches!(
        service.status(good_gate),
        Some(JobStatus::Completed)
    ));
    assert!(matches!(
        service.status(good_anneal),
        Some(JobStatus::Completed)
    ));
    match service.status(bad) {
        Some(JobStatus::Failed(msg)) => assert!(msg.contains("ISING_PROBLEM"), "{msg}"),
        other => panic!("expected failure, got {other:?}"),
    }

    let metrics = service.metrics();
    assert_eq!(metrics.jobs_completed, 2);
    assert_eq!(metrics.jobs_failed, 1);
    assert_eq!(metrics.per_tenant["tenant"].failed, 1);
}

#[test]
fn multi_tenant_sweeps_share_the_cache() {
    // Two tenants submitting the same program benefit from each other's
    // transpilation — the cache is a service-wide resource.
    let service = QmlService::with_config(ServiceConfig::with_workers(2));
    let mut sweep_a = SweepRequest::new("a", fixed_qaoa());
    let mut sweep_b = SweepRequest::new("b", fixed_qaoa());
    for seed in 0..3 {
        sweep_a = sweep_a.with_context(gate_context(seed, 64));
        sweep_b = sweep_b.with_context(gate_context(seed + 100, 64));
    }
    service.submit_sweep("alice", sweep_a).unwrap();
    service.submit_sweep("bob", sweep_b).unwrap();
    service.run_pending();

    let metrics = service.metrics();
    assert_eq!(
        metrics.gate_cache.misses, 1,
        "one transpilation for both tenants"
    );
    assert_eq!(metrics.gate_cache.hits, 5);
    assert_eq!(metrics.per_tenant["alice"].completed, 3);
    assert_eq!(metrics.per_tenant["bob"].completed, 3);
}

#[test]
fn queue_depth_tracks_pending_and_drains() {
    let service = QmlService::with_config(ServiceConfig::with_workers(2));
    let mut sweep = SweepRequest::new("depth", fixed_qaoa());
    for seed in 0..5 {
        sweep = sweep.with_context(gate_context(seed, 32));
    }
    service.submit_sweep("tenant", sweep).unwrap();
    assert_eq!(service.metrics().queue_depth, 5);
    service.run_pending();
    assert_eq!(service.metrics().queue_depth, 0);
    // A second drain with nothing queued is a no-op.
    let empty = service.run_pending();
    assert_eq!(empty.jobs, 0);
}

#[test]
fn jobs_metadata_carries_sweep_provenance() {
    let sweep = SweepRequest::new("prov", fixed_qaoa()).with_context(gate_context(0, 32));
    let jobs = sweep.expand().unwrap();
    assert_eq!(jobs[0].metadata["sweep"], ParamValue::Str("prov".into()));
    assert_eq!(jobs[0].metadata["sweep_index"], ParamValue::Int(0));
}
