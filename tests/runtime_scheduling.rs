//! Integration test E6: the runtime — backend registry, cost-hint scheduling,
//! parallel job execution, and the orthogonal communication estimator.

use qml_core::graph::cycle;
use qml_core::prelude::*;
use qml_core::runtime::{estimate_communication, JobStatus};

fn gate_ctx(samples: u64) -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(samples)
            .with_seed(1)
            .with_target(Target::ring(4)),
    )
}

fn anneal_ctx(reads: u64) -> ContextDescriptor {
    let mut cfg = AnnealConfig::with_reads(reads);
    cfg.seed = Some(1);
    ContextDescriptor::for_anneal("anneal.neal_simulator", cfg)
}

#[test]
fn explicit_engines_route_to_the_right_backends() {
    let graph = cycle(4);
    let runtime = Runtime::with_default_backends();
    let gate_id = runtime
        .submit(
            qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))
                .unwrap()
                .with_context(gate_ctx(128)),
        )
        .unwrap();
    let anneal_id = runtime
        .submit(
            maxcut_ising_program(&graph)
                .unwrap()
                .with_context(anneal_ctx(128)),
        )
        .unwrap();
    runtime.run_all(2);
    assert_eq!(
        runtime.result(gate_id).unwrap().backend,
        "qml-gate-simulator"
    );
    assert_eq!(
        runtime.result(anneal_id).unwrap().backend,
        "qml-simulated-annealer"
    );
}

#[test]
fn contextless_bundles_are_placed_by_operator_family() {
    let graph = cycle(4);
    let scheduler = Scheduler::new(BackendRegistry::with_default_backends());
    let qaoa = qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap();
    let ising = maxcut_ising_program(&graph).unwrap();
    assert_eq!(
        scheduler.place(&qaoa).unwrap().backend.name(),
        "qml-gate-simulator"
    );
    assert_eq!(
        scheduler.place(&ising).unwrap().backend.name(),
        "qml-simulated-annealer"
    );
}

#[test]
fn unknown_engines_are_rejected_with_a_clear_error() {
    let graph = cycle(4);
    let scheduler = Scheduler::new(BackendRegistry::with_default_backends());
    let bundle = qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))
        .unwrap()
        .with_context(ContextDescriptor::for_gate(ExecConfig::new(
            "pulse.qblox_cluster",
        )));
    let err = scheduler.place(&bundle).unwrap_err();
    assert!(err.to_string().contains("pulse.qblox_cluster"));
}

#[test]
fn parallel_run_all_completes_a_mixed_batch() {
    let graph = cycle(4);
    let runtime = Runtime::with_default_backends();
    let mut ids = Vec::new();
    for _ in 0..3 {
        ids.push(
            runtime
                .submit(
                    qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))
                        .unwrap()
                        .with_context(gate_ctx(64)),
                )
                .unwrap(),
        );
        ids.push(
            runtime
                .submit(
                    maxcut_ising_program(&graph)
                        .unwrap()
                        .with_context(anneal_ctx(64)),
                )
                .unwrap(),
        );
    }
    let outcomes = runtime.run_all(4);
    assert_eq!(outcomes.len(), 6);
    for id in ids {
        assert_eq!(runtime.status(id), Some(JobStatus::Completed));
        assert!(runtime.result(id).is_some());
    }
}

#[test]
fn mismatched_engine_and_intent_fails_cleanly() {
    // A QAOA bundle forced onto the annealing engine cannot be realized; the
    // job is marked failed, other jobs are unaffected.
    let graph = cycle(4);
    let runtime = Runtime::with_default_backends();
    let bad = runtime
        .submit(
            qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))
                .unwrap()
                .with_context(anneal_ctx(32)),
        )
        .unwrap();
    let good = runtime
        .submit(
            maxcut_ising_program(&graph)
                .unwrap()
                .with_context(anneal_ctx(32)),
        )
        .unwrap();
    runtime.run_all(2);
    assert!(matches!(runtime.status(bad), Some(JobStatus::Failed(_))));
    assert_eq!(runtime.status(good), Some(JobStatus::Completed));
}

#[test]
fn communication_estimator_counts_cut_crossings() {
    let graph = cycle(4);
    let bundle = qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap();
    // Splitting the ring 2|2 cuts exactly two of the four couplings.
    let estimate = estimate_communication(&bundle, 2).unwrap();
    assert_eq!(estimate.cross_partition_operations, 2);
    // Splitting 1|3 also cuts two couplings (vertex 0 touches edges to 1 and 3).
    let estimate = estimate_communication(&bundle, 1).unwrap();
    assert_eq!(estimate.cross_partition_operations, 2);
}

#[test]
fn scheduler_estimates_track_descriptor_cost_hints() {
    let scheduler = Scheduler::new(BackendRegistry::with_default_backends());
    let small = qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap();
    let large =
        qaoa_maxcut_program(&cycle(12), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES; 3])).unwrap();
    let small_cost = scheduler.place(&small).unwrap().estimated_cost;
    let large_cost = scheduler.place(&large).unwrap().estimated_cost;
    assert!(large_cost > small_cost);
}
