//! Integration test E5: the verbatim JSON artifacts of the paper's Listings
//! 2–5 parse, validate, and are reproduced by the library's own builders.

use qml_core::prelude::*;
use qml_core::types::{OperatorDescriptor, QecConfig};

/// Listing 2 — quantum data type for the QFT phase register.
const LISTING_2: &str = r#"{
    "$schema": "qdt-core.schema.json",
    "id": "reg_phase",
    "name": "phase",
    "width": 10,
    "encoding_kind": "PHASE_REGISTER",
    "bit_order": "LSB_0",
    "measurement_semantics": "AS_PHASE",
    "phase_scale": "1/1024"
}"#;

/// Listing 3 — operator descriptor for the QFT.
const LISTING_3: &str = r#"{
    "$schema": "qod.schema.json",
    "name": "QFT",
    "rep_kind": "QFT_TEMPLATE",
    "domain_qdt": "reg_phase",
    "codomain_qdt": "reg_phase",
    "params": { "approx_degree": 0, "do_swaps": true, "inverse": false },
    "cost_hint": { "twoq": 45, "depth": 100 },
    "result_schema": {
        "basis": "Z",
        "datatype": "AS_PHASE",
        "bit_significance": "LSB_0",
        "clbit_order": [
            "reg_phase[0]", "reg_phase[1]", "reg_phase[2]",
            "reg_phase[3]", "reg_phase[4]", "reg_phase[5]",
            "reg_phase[6]", "reg_phase[7]", "reg_phase[8]",
            "reg_phase[9]"
        ]
    }
}"#;

/// Listing 4 — context descriptor selecting the Aer-like simulator.
const LISTING_4: &str = r#"{
    "$schema": "ctx.schema.json",
    "exec": {
        "engine": "gate.aer_simulator",
        "samples": 4096,
        "seed": 42,
        "target": {
            "basis_gates": ["sx", "rz", "cx"],
            "coupling_map": [[0,1],[1,2],[2,3],[3,4],[4,5],[5,6],[6,7],[7,8],[8,9]]
        },
        "options": { "optimization_level": 2 }
    }
}"#;

/// Listing 5 — error-correction policy in the QEC context.
const LISTING_5: &str = r#"{
    "$schema": "ctx.schema.json",
    "exec": { "engine": "gate.aer_simulator" },
    "qec": {
        "code_family": "surface",
        "distance": 7,
        "allocator": "auto",
        "logical_gate_set": ["H", "S", "CNOT", "T", "MEASURE_Z"]
    },
    "extensions": {}
}"#;

#[test]
fn listing2_parses_and_matches_the_builder() {
    let parsed: QuantumDataType = serde_json::from_str(LISTING_2).unwrap();
    parsed.validate().unwrap();
    let built = QuantumDataType::phase_register("reg_phase", "phase", 10).unwrap();
    assert_eq!(parsed, built);
}

#[test]
fn listing3_parses_and_matches_the_qft_library() {
    let parsed: OperatorDescriptor = serde_json::from_str(LISTING_3).unwrap();
    parsed.validate().unwrap();
    let register: QuantumDataType = serde_json::from_str(LISTING_2).unwrap();
    parsed.validate_against(&register, &register).unwrap();

    // The library's own QFT constructor produces the same intent fields; only
    // the cost hint differs (ours is computed rather than quoted).
    let bundle = qft_program(10, QftParams::default()).unwrap();
    let library = &bundle.operators[0];
    assert_eq!(library.rep_kind, parsed.rep_kind);
    assert_eq!(library.domain_qdt, parsed.domain_qdt);
    assert_eq!(library.codomain_qdt, parsed.codomain_qdt);
    assert_eq!(library.params, parsed.params);
    assert_eq!(library.result_schema, parsed.result_schema);
}

#[test]
fn listing4_parses_and_matches_the_context_builders() {
    let parsed: ContextDescriptor = serde_json::from_str(LISTING_4).unwrap();
    parsed.validate().unwrap();
    let exec = parsed.exec.as_ref().unwrap();
    assert_eq!(exec.engine, "gate.aer_simulator");
    assert_eq!(exec.samples, 4096);
    assert_eq!(exec.seed, Some(42));
    assert_eq!(exec.options.optimization_level, 2);
    let target = exec.target.as_ref().unwrap();
    assert_eq!(target.coupling_map, Target::linear(10).coupling_map);
    assert_eq!(target.basis_gates, vec!["sx", "rz", "cx"]);
}

#[test]
fn listing5_parses_and_matches_the_surface_policy() {
    let parsed: ContextDescriptor = serde_json::from_str(LISTING_5).unwrap();
    parsed.validate().unwrap();
    assert_eq!(parsed.qec.as_ref().unwrap(), &QecConfig::surface(7));
}

#[test]
fn listings_survive_a_full_bundle_round_trip() {
    // Package Listing 2 + Listing 3 + Listing 4 into a job.json and round-trip.
    let qdt: QuantumDataType = serde_json::from_str(LISTING_2).unwrap();
    let qod: OperatorDescriptor = serde_json::from_str(LISTING_3).unwrap();
    let ctx: ContextDescriptor = serde_json::from_str(LISTING_4).unwrap();
    let bundle = JobBundle::new("listing-bundle", vec![qdt], vec![qod]).with_context(ctx);
    bundle.validate().unwrap();
    let json = bundle.to_json().unwrap();
    let back = JobBundle::from_json(&json).unwrap();
    assert_eq!(back, bundle);
    for token in [
        "qdt-core.schema.json",
        "qod.schema.json",
        "ctx.schema.json",
        "QFT_TEMPLATE",
        "AS_PHASE",
        "1/1024",
    ] {
        assert!(
            json.contains(token),
            "serialized bundle is missing `{token}`"
        );
    }
}

#[test]
fn listing_bundle_executes_on_the_gate_backend() {
    // The paper's artifacts are not just parseable — they run. The Listing 3
    // descriptor carries its own result schema, so it is executable as-is
    // (the QFT template measurement is explicit in the bundle we add).
    let qdt: QuantumDataType = serde_json::from_str(LISTING_2).unwrap();
    let qod: OperatorDescriptor = serde_json::from_str(LISTING_3).unwrap();
    let meas = qml_core::algorithms::qft::qft_measurement(&qdt).unwrap();
    let ctx: ContextDescriptor = serde_json::from_str(LISTING_4).unwrap();
    let bundle = JobBundle::new("listing-exec", vec![qdt], vec![qod, meas]).with_context(ctx);
    let result = Runtime::with_default_backends()
        .scheduler()
        .execute(&bundle)
        .unwrap();
    assert_eq!(result.shots, 4096);
    assert_eq!(result.engine, "gate.aer_simulator");
}
