//! Acceptance test: **no full-`Circuit` clone on the parametric bind path**.
//!
//! `qml_sim::circuit_clone_count` is a process-global counter incremented by
//! every `Circuit::clone`. This file holds exactly one test so the counter is
//! not polluted by concurrent tests in the same process: after the plan is
//! realized (cold), warm parametric executions — solo and batched — must not
//! clone a single circuit.

use std::collections::BTreeMap;

use qml_core::backends::{Backend, GateBackend, TranspileCache};
use qml_core::graph::cycle;
use qml_core::prelude::*;
use qml_core::sim::circuit_clone_count;
use qml_core::types::{BindingSet, ParamValue};

fn bound_bundle(point: usize) -> JobBundle {
    qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Symbolic { layers: 1 })
        .unwrap()
        .with_bindings(
            BindingSet::new()
                .with("gamma_0", 0.2 + 0.05 * point as f64)
                .with("beta_0", 0.4),
        )
        .with_context(ContextDescriptor::for_gate(
            ExecConfig::new("gate.aer_simulator")
                .with_samples(128)
                .with_seed(7)
                .with_target(Target::ring(4))
                .with_optimization_level(2),
        ))
}

#[test]
fn warm_parametric_execution_never_clones_a_circuit() {
    let backend = GateBackend::new();
    let cache = TranspileCache::new();

    // Cold execution realizes the plan (transpilation may clone freely).
    backend.execute_cached(&bound_bundle(0), &cache).unwrap();
    assert_eq!(cache.gate_stats().misses, 1);

    let before = circuit_clone_count();

    // 16 warm solo executions with distinct bindings.
    for point in 0..16 {
        backend
            .execute_cached(&bound_bundle(point), &cache)
            .unwrap();
    }

    // One warm device-level batch (plan-compatible members).
    let template = qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Symbolic { layers: 1 }).unwrap();
    let mut sweep = SweepRequest::new("batch", template).with_context(ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(128)
            .with_seed(7)
            .with_target(Target::ring(4))
            .with_optimization_level(2),
    ));
    for point in 0..8 {
        let mut bindings = BTreeMap::new();
        bindings.insert(
            "gamma_0".to_string(),
            ParamValue::Float(0.2 + 0.05 * point as f64),
        );
        bindings.insert("beta_0".to_string(), ParamValue::Float(0.4));
        sweep = sweep.with_binding_set(bindings);
    }
    let bundles = sweep.expand().unwrap();
    let results = backend.execute_batch(&bundles, &cache);
    assert!(results.iter().all(|r| r.is_ok()));

    let delta = circuit_clone_count() - before;
    assert_eq!(
        delta, 0,
        "warm parametric executes must be circuit-clone-free, saw {delta} clones"
    );
}
