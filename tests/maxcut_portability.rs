//! Integration test for the paper's §5 proof of concept (E1–E3): the same
//! typed Max-Cut problem runs on the gate path and the annealing path, both
//! return the optimal cut assignments, and the tuned gate path's expected cut
//! lands in the paper's reported 3.0–3.2 band.

use std::collections::BTreeMap;

use qml_core::backends::{Backend, GateBackend};
use qml_core::graph::{cut_value_of_bitstring, cycle};
use qml_core::prelude::*;
use qml_core::types::ParamValue;

fn gate_context() -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(4096)
            .with_seed(42)
            .with_target(Target::ring(4))
            .with_optimization_level(2),
    )
}

fn anneal_context() -> ContextDescriptor {
    let mut cfg = AnnealConfig::with_reads(1000);
    cfg.seed = Some(42);
    ContextDescriptor::for_anneal("anneal.neal_simulator", cfg)
}

#[test]
fn both_backends_return_the_optimal_cuts() {
    let graph = cycle(4);
    let runtime = Runtime::with_default_backends();

    let gate_id = runtime
        .submit(
            qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))
                .unwrap()
                .with_context(gate_context()),
        )
        .unwrap();
    let anneal_id = runtime
        .submit(
            maxcut_ising_program(&graph)
                .unwrap()
                .with_context(anneal_context()),
        )
        .unwrap();
    let outcomes = runtime.run_all(2);
    assert!(outcomes.iter().all(|(_, o)| o.is_ok()));

    let gate = runtime.result(gate_id).unwrap();
    let anneal = runtime.result(anneal_id).unwrap();

    for result in [&gate, &anneal] {
        assert!(
            result.counts.contains_key("1010"),
            "{} missing 1010",
            result.backend
        );
        assert!(
            result.counts.contains_key("0101"),
            "{} missing 0101",
            result.backend
        );
    }
    // On the gate path the two optimal assignments are the two most likely
    // outcomes; on the anneal path they dominate outright.
    let top2: Vec<String> = gate.top_k(2).into_iter().map(|(w, _)| w).collect();
    assert!(top2.contains(&"1010".to_string()) && top2.contains(&"0101".to_string()));
    assert!(anneal.probability("1010") + anneal.probability("0101") > 0.8);
}

#[test]
fn intent_is_shared_bit_for_bit_across_paths() {
    let graph = cycle(4);
    let qaoa = qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap();
    let ising = maxcut_ising_program(&graph).unwrap();
    assert_eq!(qaoa.data_types, ising.data_types);
    // Serialized quantum data types are byte-identical.
    assert_eq!(
        serde_json::to_string(&qaoa.data_types[0]).unwrap(),
        serde_json::to_string(&ising.data_types[0]).unwrap()
    );
}

#[test]
fn default_ring_angles_reach_the_papers_expected_cut_band() {
    // E3: the paper reports an expected cut of roughly 3.0–3.2.
    let graph = cycle(4);
    let result = GateBackend::new()
        .execute(
            &qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))
                .unwrap()
                .with_context(gate_context()),
        )
        .unwrap();
    let expected = result.expectation(|w| cut_value_of_bitstring(&graph, w));
    assert!(
        (2.85..=3.3).contains(&expected),
        "expected cut {expected} outside the paper's band"
    );
}

#[test]
fn late_bound_angles_reach_the_same_quality() {
    // The symbolic bundle bound to the optimal angles gives the same result
    // as the fixed-angle bundle: late binding does not change semantics.
    let graph = cycle(4);
    let template = qaoa_maxcut_program(&graph, &QaoaSchedule::Symbolic { layers: 1 }).unwrap();
    let mut bindings = BTreeMap::new();
    bindings.insert(
        "gamma_0".to_string(),
        ParamValue::Float(RING_P1_ANGLES.gamma),
    );
    bindings.insert("beta_0".to_string(), ParamValue::Float(RING_P1_ANGLES.beta));
    let bound = template.bind(&bindings).with_context(gate_context());
    let fixed = qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))
        .unwrap()
        .with_context(gate_context());

    let backend = GateBackend::new();
    let a = backend.execute(&bound).unwrap();
    let b = backend.execute(&fixed).unwrap();
    assert_eq!(a.counts, b.counts);
}

#[test]
fn anneal_path_expected_cut_is_near_optimal() {
    let graph = cycle(4);
    let result = Runtime::with_default_backends()
        .scheduler()
        .execute(
            &maxcut_ising_program(&graph)
                .unwrap()
                .with_context(anneal_context()),
        )
        .unwrap();
    let expected = result.expectation(|w| cut_value_of_bitstring(&graph, w));
    assert!(expected > 3.5, "annealer expected cut {expected}");
    assert_eq!(result.energy_stats.unwrap().min_energy, -4.0);
}

#[test]
fn larger_instances_still_agree_on_the_winner() {
    // Beyond the paper's 4-node instance: on a random 8-node graph both paths
    // find the same optimal cut value as brute force.
    let graph = qml_core::graph::random_gnp(8, 0.5, 3);
    let best = qml_core::graph::brute_force(&graph).value;

    let mut cfg = AnnealConfig::with_reads(500);
    cfg.seed = Some(1);
    cfg.num_sweeps = Some(500);
    let anneal = Runtime::with_default_backends()
        .scheduler()
        .execute(
            &maxcut_ising_program(&graph)
                .unwrap()
                .with_context(ContextDescriptor::for_anneal("anneal.neal_simulator", cfg)),
        )
        .unwrap();
    let best_word = anneal
        .counts
        .keys()
        .map(|w| cut_value_of_bitstring(&graph, w))
        .fold(0.0f64, f64::max);
    assert!(
        (best_word - best).abs() < 1e-9,
        "annealer best {best_word} vs exact {best}"
    );
}
