//! Integration tests for end-to-end observability: every job of a
//! concurrent multi-tenant streaming run is traceable submit→outcome with a
//! monotone stage chain, latency percentiles land in one versioned
//! snapshot, and the default (tracing off) retains nothing.

use std::collections::BTreeMap;
use std::time::Duration;

use qml_core::graph::cycle;
use qml_core::prelude::*;
use qml_core::service::observe::{Stage, TraceEvent};
use qml_core::service::{QmlService, ServiceConfig, SNAPSHOT_VERSION};

fn gate_context(seed: u64, samples: u64) -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(samples)
            .with_seed(seed)
            .with_target(Target::ring(4)),
    )
}

fn fixed_qaoa() -> JobBundle {
    qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap()
}

const WAIT: Duration = Duration::from_secs(60);

/// The required stage chain of a successfully executed job, by
/// [`Stage::order`]: submitted(0) admitted(1) dispatched(2) bound(4)
/// executed(5) outcome(6). plan(3) is optional — present when the backend
/// reported per-member plan attribution.
const REQUIRED_ORDERS: [u8; 6] = [0, 1, 2, 4, 5, 6];

#[test]
fn every_job_of_a_concurrent_two_tenant_run_is_traceable() {
    let config = ServiceConfig::with_workers(2).with_tracing(true);
    let service = QmlService::with_config(config);
    let handle = service.start().unwrap();

    // Two tenants submit concurrently while the pool runs.
    let submitters: Vec<_> = ["alice", "bob"]
        .iter()
        .enumerate()
        .map(|(t, tenant)| {
            let service = service.clone();
            std::thread::spawn(move || {
                (0..8)
                    .map(|i| {
                        let seed = (t as u64) * 100 + i;
                        let (_, job) = service
                            .submit(tenant, fixed_qaoa().with_context(gate_context(seed, 64)))
                            .unwrap();
                        (job, *tenant)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let jobs: Vec<_> = submitters
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();

    assert!(service.wait_idle(WAIT), "service should quiesce");
    let summary = handle.drain();
    assert_eq!(summary.completed, 16);

    let stats = service.trace_stats();
    assert_eq!(stats.dropped, 0, "default capacity must not drop events");

    let events = service.trace_events();
    let mut by_job: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for event in &events {
        by_job.entry(event.job).or_default().push(event);
    }

    for (job, tenant) in &jobs {
        let chain = by_job
            .get(&job.0)
            .unwrap_or_else(|| panic!("job {job:?} left no trace"));
        // Stage chain: all required stages present, in order, with
        // non-decreasing timestamps (`drain` returns seq order; per job that
        // is also causal order).
        let orders: Vec<u8> = chain.iter().map(|e| e.stage.order()).collect();
        let mut required = REQUIRED_ORDERS.iter();
        for order in &orders {
            if Some(order) == required.clone().next() {
                required.next();
            }
        }
        assert!(
            required.next().is_none(),
            "job {job:?} missing required stages: got {orders:?}"
        );
        for pair in chain.windows(2) {
            assert!(
                pair[0].stage.order() <= pair[1].stage.order(),
                "job {job:?} stages out of order: {orders:?}"
            );
            assert!(
                pair[0].at_us <= pair[1].at_us,
                "job {job:?} timestamps not monotone"
            );
        }
        // Attribution: service-layer events carry the submitting tenant.
        for event in chain {
            match event.stage {
                Stage::Submitted
                | Stage::Admitted { .. }
                | Stage::Dispatched { .. }
                | Stage::Requeued { .. }
                | Stage::Executed { .. }
                | Stage::Outcome { .. } => {
                    assert_eq!(
                        event.tenant.as_deref(),
                        Some(*tenant),
                        "job {job:?} event mis-attributed: {event}"
                    );
                }
                Stage::Plan { .. } | Stage::Bound => {}
            }
        }
        // The run succeeded, so the terminal event says so.
        let ok = chain.iter().rev().find_map(|e| match e.stage {
            Stage::Outcome { ok } => Some(ok),
            _ => None,
        });
        assert_eq!(ok, Some(true));
    }

    // Draining freed the ring: a second drain is empty.
    assert!(service.trace_events().is_empty());
}

#[test]
fn one_snapshot_carries_per_tenant_and_per_backend_percentiles() {
    let service = QmlService::with_config(ServiceConfig::with_workers(2).with_tracing(true));
    for seed in 0..6 {
        service
            .submit("alice", fixed_qaoa().with_context(gate_context(seed, 64)))
            .unwrap();
        service
            .submit(
                "bob",
                fixed_qaoa().with_context(gate_context(100 + seed, 64)),
            )
            .unwrap();
    }
    service.run_pending();

    let snapshot = service.snapshot();
    assert_eq!(snapshot.version, SNAPSHOT_VERSION);
    assert_eq!(snapshot.service.jobs_completed, 12);
    for tenant in ["alice", "bob"] {
        let wait = &snapshot.latency.tenant_queue_wait[tenant];
        assert_eq!(wait.count, 6);
        assert!(wait.p50 <= wait.p95 && wait.p95 <= wait.p99);
        let exec = &snapshot.latency.tenant_execute[tenant];
        assert_eq!(exec.count, 6);
        assert!(exec.p50 <= exec.p95 && exec.p95 <= exec.p99);
    }
    let backend = &snapshot.latency.backend_execute["qml-gate-simulator"];
    assert_eq!(backend.count, 12, "both tenants share the gate backend");
    assert!(snapshot.trace.recorded > 0);

    // The snapshot is one self-contained JSON document.
    let line = snapshot.to_jsonl();
    assert!(!line.contains('\n'));
    let back: qml_core::service::ObservabilitySnapshot = serde_json::from_str(&line).unwrap();
    assert_eq!(back, snapshot);

    // ...and one greppable text dump.
    let kv = snapshot.dump_kv();
    assert!(kv.contains("tenant=alice"));
    assert!(kv.contains("backend=qml-gate-simulator"));
    assert!(kv.contains("p99_wait_us="));
    assert!(kv.contains("dropped=0"));
}

#[test]
fn per_device_gauges_fold_to_the_per_backend_totals() {
    use qml_core::backends::{Backend, GateBackend};
    use qml_core::service::DeviceSpec;
    use std::sync::Arc;

    // Two explicit gate devices plus the implicit anneal device: streaming
    // traffic spreads over the gate fleet, and the per-device busy-seconds
    // must fold back to exactly the per-backend attribution.
    let device = |id: &str| {
        DeviceSpec::new(
            id,
            Arc::new(GateBackend::new()) as Arc<dyn Backend>,
            CapabilityDescriptor::unlimited(),
        )
    };
    let service = QmlService::with_config(
        ServiceConfig::with_workers(2)
            .with_device(device("gate-a"))
            .with_device(device("gate-b")),
    );
    for seed in 0..10 {
        service
            .submit("alice", fixed_qaoa().with_context(gate_context(seed, 64)))
            .unwrap();
    }
    service.run_pending();

    let metrics = service.metrics();
    assert_eq!(metrics.jobs_completed, 10);
    let backend_busy = metrics.per_backend["qml-gate-simulator"].busy_seconds;
    let device_busy: f64 = metrics
        .per_device
        .values()
        .filter(|d| d.plane == "qml-gate-simulator")
        .map(|d| d.busy_seconds)
        .sum();
    assert!(backend_busy > 0.0, "the plane accrued busy time");
    assert!(
        (backend_busy - device_busy).abs() < 1e-9,
        "per-device busy-seconds ({device_busy}) must fold to the plane's \
         per-backend total ({backend_busy})"
    );
    let device_done: u64 = metrics
        .per_device
        .values()
        .filter(|d| d.plane == "qml-gate-simulator")
        .map(|d| d.completed)
        .sum();
    assert_eq!(device_done, 10, "completions fold too");

    // The devices surface in the greppable dump with their gauges.
    let kv = service.snapshot().dump_kv();
    assert!(kv.contains("device=gate-a plane=qml-gate-simulator health=healthy"));
    assert!(kv.contains("device=gate-b plane=qml-gate-simulator health=healthy"));
    assert!(kv.contains("busy_seconds="));
}

#[test]
fn tracing_is_off_by_default_but_percentiles_still_work() {
    let service = QmlService::with_config(ServiceConfig::with_workers(1));
    service
        .submit("alice", fixed_qaoa().with_context(gate_context(1, 64)))
        .unwrap();
    service.run_pending();

    // No events retained, zero ring capacity allocated...
    assert!(service.trace_events().is_empty());
    let stats = service.trace_stats();
    assert_eq!((stats.recorded, stats.dropped, stats.capacity), (0, 0, 0));

    // ...but the histogram side of the registry is always on.
    let snapshot = service.snapshot();
    assert_eq!(snapshot.latency.tenant_queue_wait["alice"].count, 1);
    assert_eq!(snapshot.latency.tenant_execute["alice"].count, 1);
}

#[test]
fn ring_overflow_is_bounded_and_counted() {
    // 8-event ring, 6 jobs × ≥6 events each: the ring must overwrite (and
    // count) the oldest events instead of growing or panicking.
    let service = QmlService::with_config(
        ServiceConfig::with_workers(1)
            .with_tracing(true)
            .with_trace_capacity(8),
    );
    for seed in 0..6 {
        service
            .submit("alice", fixed_qaoa().with_context(gate_context(seed, 32)))
            .unwrap();
    }
    service.run_pending();

    let stats = service.trace_stats();
    assert_eq!(stats.capacity, 8);
    assert!(stats.dropped > 0, "overflow must be visible, not silent");
    assert_eq!(stats.recorded, stats.dropped + 8);
    assert_eq!(service.trace_events().len(), 8);
}
