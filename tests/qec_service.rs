//! Integration test E7: QEC as execution context — the same program runs
//! unmodified with and without the `qec` block; only the resource estimate
//! changes, and the executable repetition code shows the promised error
//! suppression.

use qml_core::backends::{Backend, GateBackend};
use qml_core::graph::cycle;
use qml_core::prelude::*;
use qml_core::qec::{QecService, RepetitionCode, SurfaceCode};
use qml_core::types::QecConfig;

fn base_context() -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(2048)
            .with_seed(42)
            .with_target(Target::ring(4))
            .with_optimization_level(2),
    )
}

#[test]
fn qec_context_changes_resources_not_semantics() {
    let graph = cycle(4);
    let bundle = qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap();
    let backend = GateBackend::new();

    let plain = backend
        .execute(&bundle.clone().with_context(base_context()))
        .unwrap();
    let protected = backend
        .execute(&bundle.with_context(base_context().with_qec(QecConfig::surface(7))))
        .unwrap();

    assert_eq!(
        plain.counts, protected.counts,
        "QEC is policy, not semantics"
    );
    assert!(plain.qec_estimate.is_none());
    let estimate = protected.qec_estimate.unwrap();
    assert_eq!(estimate.logical_qubits, 4);
    assert!(estimate.physical_qubits >= 4 * 97);
    assert!(estimate.syndrome_rounds > 0);
}

#[test]
fn resource_estimates_grow_with_distance_and_shrink_failure_probability() {
    let graph = cycle(4);
    let bundle = qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap();
    let backend = GateBackend::new();
    let mut previous: Option<qml_core::qec::ResourceEstimate> = None;
    for distance in [3usize, 7, 11] {
        let result = backend
            .execute(
                &bundle
                    .clone()
                    .with_context(base_context().with_qec(QecConfig::surface(distance))),
            )
            .unwrap();
        let estimate = result.qec_estimate.unwrap();
        if let Some(prev) = previous {
            assert!(estimate.physical_qubits > prev.physical_qubits);
            assert!(estimate.workload_failure_probability < prev.workload_failure_probability);
        }
        previous = Some(estimate);
    }
}

#[test]
fn listing5_gate_set_is_enforced_by_the_service() {
    let service = QecService::from_config(&QecConfig::surface(7)).unwrap();
    service
        .check_logical_gates(&["H", "S", "CNOT", "T", "MEASURE_Z"])
        .unwrap();
    assert!(service.check_logical_gates(&["TOFFOLI"]).is_err());
}

#[test]
fn unknown_code_families_fail_loudly_at_execution_time() {
    let graph = cycle(4);
    let mut qec = QecConfig::surface(7);
    qec.code_family = "hypergraph-product".into();
    let bundle = qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))
        .unwrap()
        .with_context(base_context().with_qec(qec));
    assert!(GateBackend::new().execute(&bundle).is_err());
}

#[test]
fn repetition_code_monte_carlo_matches_analytics_and_suppresses_errors() {
    let p = 0.06;
    let mut previous = f64::INFINITY;
    for distance in [1usize, 3, 5, 7] {
        let code = RepetitionCode::new(distance);
        let analytic = code.analytic_logical_error_rate(p);
        let simulated = code.simulate_logical_error_rate(p, 100_000, 13);
        assert!(
            (analytic - simulated).abs() < 6e-3,
            "d={distance}: {analytic} vs {simulated}"
        );
        assert!(
            analytic < previous,
            "distance {distance} did not suppress errors"
        );
        previous = analytic;
    }
}

#[test]
fn surface_code_distance_selection_meets_error_budgets() {
    // The service can answer "what distance do I need?" — the question a
    // scheduler asks before placing a fault-tolerant workload.
    let p = 1e-3;
    for target in [1e-6, 1e-9, 1e-12] {
        let d = SurfaceCode::required_distance(p, target).unwrap();
        assert!(SurfaceCode::new(d, p).logical_error_rate() <= target);
    }
    assert!(SurfaceCode::required_distance(0.5, 1e-6).is_none());
}
