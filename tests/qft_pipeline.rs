//! Integration test E4: the Listing 1 use case — a 10-qubit QFT — expressed
//! through the middle layer and executed end to end, plus composition and
//! inversion of the QFT descriptor.

use qml_core::algorithms::{invert_operator, with_measurement};
use qml_core::backends::{Backend, GateBackend};
use qml_core::prelude::*;

fn linear_context(shots: u64, level: u8) -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(shots)
            .with_seed(42)
            .with_target(Target::linear(10))
            .with_optimization_level(level),
    )
}

#[test]
fn qft_on_zero_state_is_close_to_uniform() {
    let bundle = qft_program(10, QftParams::default())
        .unwrap()
        .with_context(linear_context(10_000, 2));
    let result = GateBackend::new().execute(&bundle).unwrap();
    assert_eq!(result.shots, 10_000);
    // The uniform distribution over 1024 outcomes: with 10 000 shots no
    // outcome should be dramatically over-represented.
    let max_p = result.top_k(1)[0].1;
    assert!(max_p < 0.01, "max outcome probability {max_p}");
    assert!(
        result.counts.len() > 900,
        "only {} distinct outcomes",
        result.counts.len()
    );
}

#[test]
fn transpiled_metrics_exceed_the_descriptor_hint_under_routing() {
    // The paper's cost hint (45 two-qubit ops, depth ~100) is a lower bound:
    // the realized circuit on a linear coupling map must pay routing on top.
    let bundle = qft_program(10, QftParams::default()).unwrap();
    let hint = bundle.operators[0].cost_hint.unwrap();
    let result = GateBackend::new()
        .execute(&bundle.with_context(linear_context(128, 2)))
        .unwrap();
    let metrics = result.gate_metrics.unwrap();
    assert!(metrics.two_qubit_gates as u64 >= 45);
    assert!(metrics.swaps_inserted > 0);
    assert!(hint.twoq.unwrap() >= 45);
}

#[test]
fn optimization_levels_never_change_the_distribution_shape() {
    // Exact distributions are equal; with a fixed seed the sampled counts are
    // equal only if the transpiled circuits are identical, so compare a
    // robust statistic instead: total variation between levels stays small.
    let mut references: Vec<std::collections::BTreeMap<String, u64>> = Vec::new();
    for level in [0u8, 2, 3] {
        let bundle = qft_program(6, QftParams::default()).unwrap().with_context(
            ContextDescriptor::for_gate(
                ExecConfig::new("gate.aer_simulator")
                    .with_samples(8000)
                    .with_seed(7)
                    .with_target(Target::linear(6))
                    .with_optimization_level(level),
            ),
        );
        references.push(GateBackend::new().execute(&bundle).unwrap().counts);
    }
    let tv = |a: &std::collections::BTreeMap<String, u64>,
              b: &std::collections::BTreeMap<String, u64>| {
        let keys: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
        keys.iter()
            .map(|k| {
                let pa = *a.get(*k).unwrap_or(&0) as f64 / 8000.0;
                let pb = *b.get(*k).unwrap_or(&0) as f64 / 8000.0;
                (pa - pb).abs()
            })
            .sum::<f64>()
            / 2.0
    };
    assert!(tv(&references[0], &references[1]) < 0.08);
    assert!(tv(&references[1], &references[2]) < 0.08);
}

#[test]
fn qft_followed_by_its_inverse_is_the_identity() {
    // Build QFT ∘ IQFT through descriptor inversion and check that the
    // readout is deterministically |0...0⟩.
    let register = QuantumDataType::phase_register("reg_phase", "phase", 6).unwrap();
    let qft = qml_core::algorithms::qft::qft_operator(&register, QftParams::default()).unwrap();
    let iqft = invert_operator(&qft).unwrap();
    let ops = with_measurement(vec![qft, iqft], &register).unwrap();
    let bundle =
        JobBundle::new("qft-iqft", vec![register], ops).with_context(ContextDescriptor::for_gate(
            ExecConfig::new("gate.aer_simulator")
                .with_samples(1024)
                .with_seed(11),
        ));
    let result = GateBackend::new().execute(&bundle).unwrap();
    assert_eq!(result.probability("000000"), 1.0);
}

#[test]
fn approximate_qft_costs_less_but_stays_close() {
    let exact = qft_program(8, QftParams::default()).unwrap();
    let approx = qft_program(
        8,
        QftParams {
            approx_degree: 3,
            ..QftParams::default()
        },
    )
    .unwrap();
    let ctx = ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(256)
            .with_seed(5)
            .with_target(Target::linear(8))
            .with_optimization_level(2),
    );
    let backend = GateBackend::new();
    let exact_metrics = backend
        .execute(&exact.with_context(ctx.clone()))
        .unwrap()
        .gate_metrics
        .unwrap();
    let approx_metrics = backend
        .execute(&approx.with_context(ctx))
        .unwrap()
        .gate_metrics
        .unwrap();
    assert!(approx_metrics.two_qubit_gates < exact_metrics.two_qubit_gates);
}
