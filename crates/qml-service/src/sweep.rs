//! Parameter sweeps: one intent, many jobs — expanded server-side.
//!
//! A variational workflow (QAOA angle scans, seed restarts, shot-count
//! ladders) re-submits one program under many bindings and execution
//! policies. Shipping the full bundle once per point wastes validation and
//! transfer; a [`SweepRequest`] carries the intent **once** plus the
//! dimensions to vary, and the service expands it into concrete jobs. The
//! split mirrors the paper's separation of intent (operators) from policy
//! (context): bindings vary the intent's late-bound parameters, contexts vary
//! the execution policy.

use std::collections::BTreeMap;

use qml_types::{BindingSet, ContextDescriptor, JobBundle, ParamValue, QmlError, Result};

/// A sweep: one base bundle, N binding sets × M contexts.
///
/// Expansion is the cross product of binding sets and contexts, each
/// dimension defaulting to a single neutral element when empty (no bindings /
/// the base bundle's own context). Typical sweeps vary one dimension and
/// leave the other singular.
///
/// ```
/// use std::collections::BTreeMap;
/// use qml_service::SweepRequest;
/// use qml_algorithms::{qaoa_maxcut_program, QaoaSchedule};
/// use qml_graph::cycle;
/// use qml_types::{ContextDescriptor, ExecConfig, ParamValue, Target};
///
/// // One symbolic QAOA intent, three angle points, one context.
/// let template =
///     qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Symbolic { layers: 1 })?;
/// let mut sweep = SweepRequest::new("angle-scan", template).with_context(
///     ContextDescriptor::for_gate(
///         ExecConfig::new("gate.aer_simulator")
///             .with_samples(128)
///             .with_seed(7)
///             .with_target(Target::ring(4)),
///     ),
/// );
/// for gamma in [0.2, 0.4, 0.6] {
///     let mut point = BTreeMap::new();
///     point.insert("gamma_0".to_string(), ParamValue::Float(gamma));
///     point.insert("beta_0".to_string(), ParamValue::Float(0.3));
///     sweep = sweep.with_binding_set(point);
/// }
///
/// let jobs = sweep.expand()?;
/// assert_eq!(jobs.len(), 3);
/// // The points stay symbolic (values ride as BindingSets), so the whole
/// // sweep shares ONE symbolic program — and one cached transpiled plan.
/// assert!(jobs.iter().all(|j| j.bindings.is_some()));
/// assert!(jobs
///     .iter()
///     .all(|j| j.symbolic_program_hash() == jobs[0].symbolic_program_hash()));
/// # Ok::<(), qml_types::QmlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SweepRequest {
    /// Human-readable sweep name; expanded jobs are named `{name}#{index}`.
    pub name: String,
    /// The intent bundle (may carry unbound symbols and a default context).
    pub base: JobBundle,
    /// Parameter binding sets; empty means "bind nothing".
    pub binding_sets: Vec<BTreeMap<String, ParamValue>>,
    /// Execution contexts; empty means "keep the base bundle's context".
    pub contexts: Vec<ContextDescriptor>,
}

impl SweepRequest {
    /// A sweep over the given base bundle with no dimensions yet (expands to
    /// exactly one job).
    pub fn new(name: impl Into<String>, base: JobBundle) -> Self {
        SweepRequest {
            name: name.into(),
            base,
            binding_sets: Vec::new(),
            contexts: Vec::new(),
        }
    }

    /// Add one parameter binding set, builder-style.
    pub fn with_binding_set(mut self, bindings: BTreeMap<String, ParamValue>) -> Self {
        self.binding_sets.push(bindings);
        self
    }

    /// Add one execution context, builder-style.
    pub fn with_context(mut self, context: ContextDescriptor) -> Self {
        self.contexts.push(context);
        self
    }

    /// Number of jobs this sweep expands to.
    pub fn job_count(&self) -> usize {
        self.binding_sets.len().max(1) * self.contexts.len().max(1)
    }

    /// Expand into validated job bundles with **late-bound** parameters.
    ///
    /// The base bundle's symbolic operators are kept symbolic: each numeric
    /// binding set is attached as a [`BindingSet`] instead of being
    /// substituted into the operators, so every job of the sweep shares one
    /// symbolic program (`symbolic_program_hash`) and therefore one cached
    /// parametric transpilation plan — an N-point angle scan transpiles
    /// once. Non-numeric binding values (the rare structural case) are still
    /// substituted eagerly, since plans cannot stay symbolic in them.
    ///
    /// Every expanded job must be fully bound (in place or via its binding
    /// set) and pass cross-descriptor validation; the first violation rejects
    /// the whole sweep at submission time (jobs never fail on validation
    /// mid-batch).
    pub fn expand(&self) -> Result<Vec<JobBundle>> {
        if self.name.trim().is_empty() {
            return Err(QmlError::Validation("sweep name must be non-empty".into()));
        }
        let neutral_binding = BTreeMap::new();
        let bindings: Vec<&BTreeMap<String, ParamValue>> = if self.binding_sets.is_empty() {
            vec![&neutral_binding]
        } else {
            self.binding_sets.iter().collect()
        };
        let contexts: Vec<Option<&ContextDescriptor>> = if self.contexts.is_empty() {
            vec![None]
        } else {
            self.contexts.iter().map(Some).collect()
        };

        let mut jobs = Vec::with_capacity(bindings.len() * contexts.len());
        let mut index = 0usize;
        for binding in &bindings {
            // Only numeric values for symbols used purely as continuous
            // angles may ride late: a symbol in a structural position
            // (approximation degree, edge weight, flag) changes the lowered
            // circuit's shape and must be substituted before lowering.
            let mut late = BindingSet::from_param_values(binding);
            late.entries
                .retain(|name, _| self.base.symbol_is_angle_only(name));
            let eager: BTreeMap<String, ParamValue> = binding
                .iter()
                .filter(|(name, _)| !late.binds(name))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            let mut bound = if eager.is_empty() {
                self.base.clone()
            } else {
                self.base.bind(&eager)
            };
            if !late.is_empty() {
                bound = bound.with_bindings(late);
            }
            for context in &contexts {
                let mut job = match context {
                    Some(ctx) => bound.clone().with_context((*ctx).clone()),
                    None => bound.clone(),
                };
                job.name = format!("{}#{}", self.name, index);
                let job = job
                    .with_metadata("sweep", self.name.clone())
                    .with_metadata("sweep_index", index as i64);
                job.validate()?;
                job.ensure_bound().map_err(|e| {
                    QmlError::Validation(format!(
                        "sweep `{}` job {index} still has unbound symbols: {e}",
                        self.name
                    ))
                })?;
                jobs.push(job);
                index += 1;
            }
        }
        Ok(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qml_algorithms::{qaoa_maxcut_program, QaoaSchedule, RING_P1_ANGLES};
    use qml_graph::cycle;
    use qml_types::{AnnealConfig, ExecConfig, Target};

    fn fixed_program() -> JobBundle {
        qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap()
    }

    fn symbolic_program() -> JobBundle {
        qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Symbolic { layers: 1 }).unwrap()
    }

    fn gate_context(seed: u64) -> ContextDescriptor {
        ContextDescriptor::for_gate(
            ExecConfig::new("gate.aer_simulator")
                .with_samples(64)
                .with_seed(seed)
                .with_target(Target::ring(4)),
        )
    }

    fn angle_binding(gamma: f64) -> BTreeMap<String, ParamValue> {
        let mut b = BTreeMap::new();
        b.insert("gamma_0".to_string(), ParamValue::Float(gamma));
        b.insert("beta_0".to_string(), ParamValue::Float(0.3));
        b
    }

    #[test]
    fn bare_sweep_expands_to_one_job() {
        let sweep = SweepRequest::new("single", fixed_program());
        let jobs = sweep.expand().unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].name, "single#0");
        assert_eq!(sweep.job_count(), 1);
    }

    #[test]
    fn context_sweep_preserves_intent() {
        let mut sweep = SweepRequest::new("seeds", fixed_program());
        for seed in 0..3 {
            sweep = sweep.with_context(gate_context(seed));
        }
        let jobs = sweep.expand().unwrap();
        assert_eq!(jobs.len(), 3);
        let hash = jobs[0].program_hash();
        assert!(jobs.iter().all(|j| j.program_hash() == hash));
        assert!(jobs.iter().all(|j| j.metadata.contains_key("sweep")));
    }

    #[test]
    fn binding_cross_context_expansion() {
        let sweep = SweepRequest::new("grid", symbolic_program())
            .with_binding_set(angle_binding(0.2))
            .with_binding_set(angle_binding(0.4))
            .with_context(gate_context(0))
            .with_context(gate_context(1))
            .with_context(gate_context(2));
        assert_eq!(sweep.job_count(), 6);
        let jobs = sweep.expand().unwrap();
        assert_eq!(jobs.len(), 6);
        // Two distinct realized programs (one per binding), three contexts
        // each — but the jobs stay symbolic with attached binding sets...
        let distinct: std::collections::BTreeSet<u64> =
            jobs.iter().map(|j| j.program_hash()).collect();
        assert_eq!(distinct.len(), 2);
        assert!(jobs.iter().all(|j| j.bindings.is_some()));
        // ...so all six share ONE symbolic program (= one transpiled plan).
        let symbolic: std::collections::BTreeSet<u64> =
            jobs.iter().map(|j| j.symbolic_program_hash()).collect();
        assert_eq!(symbolic.len(), 1);
        // Names enumerate in expansion order.
        assert_eq!(jobs[5].name, "grid#5");
    }

    #[test]
    fn expansion_keeps_the_base_symbolic() {
        let sweep = SweepRequest::new("late", symbolic_program())
            .with_binding_set(angle_binding(0.7))
            .with_context(gate_context(3));
        let jobs = sweep.expand().unwrap();
        assert_eq!(jobs.len(), 1);
        // Operators still carry their symbols; the values ride alongside.
        assert_eq!(
            jobs[0].unbound_symbols(),
            vec!["beta_0".to_string(), "gamma_0".to_string()]
        );
        let bindings = jobs[0].bindings.as_ref().unwrap();
        assert_eq!(bindings.get("gamma_0"), Some(0.7));
        assert_eq!(bindings.get("beta_0"), Some(0.3));
        jobs[0].ensure_bound().unwrap();
    }

    #[test]
    fn unbound_sweep_rejected_at_expansion() {
        let sweep = SweepRequest::new("oops", symbolic_program()).with_context(gate_context(0));
        let err = sweep.expand().unwrap_err();
        assert!(err.to_string().contains("unbound"), "{err}");
    }

    #[test]
    fn structural_symbols_bind_eagerly_even_when_numeric() {
        // A symbol in a structural position (QFT approximation degree) must
        // be substituted into the operators, not carried as a late binding —
        // late binding only works for continuous angles.
        let mut base =
            qml_algorithms::qft_program(4, qml_algorithms::QftParams::default()).unwrap();
        base.operators[0]
            .params
            .insert("approx_degree", ParamValue::symbol("d"));
        let mut binding = BTreeMap::new();
        binding.insert("d".to_string(), ParamValue::Int(2));
        let jobs = SweepRequest::new("shape", base)
            .with_binding_set(binding)
            .expand()
            .unwrap();
        assert!(jobs[0].bindings.is_none(), "no late binding for shapes");
        assert!(jobs[0].unbound_symbols().is_empty(), "eagerly substituted");
        assert_eq!(
            jobs[0].operators[0]
                .params
                .require_u64("approx_degree")
                .unwrap(),
            2
        );
    }

    #[test]
    fn anneal_context_sweep_expands() {
        let bundle = qml_algorithms::maxcut_ising_program(&cycle(4)).unwrap();
        let sweep = SweepRequest::new("reads", bundle)
            .with_context(ContextDescriptor::for_anneal(
                "anneal.neal_simulator",
                AnnealConfig::with_reads(50),
            ))
            .with_context(ContextDescriptor::for_anneal(
                "anneal.neal_simulator",
                AnnealConfig::with_reads(100),
            ));
        assert_eq!(sweep.expand().unwrap().len(), 2);
    }
}
