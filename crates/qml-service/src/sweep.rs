//! Parameter sweeps: one intent, many jobs — expanded server-side.
//!
//! A variational workflow (QAOA angle scans, seed restarts, shot-count
//! ladders) re-submits one program under many bindings and execution
//! policies. Shipping the full bundle once per point wastes validation and
//! transfer; a [`SweepRequest`] carries the intent **once** plus the
//! dimensions to vary, and the service expands it into concrete jobs. The
//! split mirrors the paper's separation of intent (operators) from policy
//! (context): bindings vary the intent's late-bound parameters, contexts vary
//! the execution policy.

use std::collections::BTreeMap;

use qml_types::{ContextDescriptor, JobBundle, ParamValue, QmlError, Result};

/// A sweep: one base bundle, N binding sets × M contexts.
///
/// Expansion is the cross product of binding sets and contexts, each
/// dimension defaulting to a single neutral element when empty (no bindings /
/// the base bundle's own context). Typical sweeps vary one dimension and
/// leave the other singular.
#[derive(Debug, Clone)]
pub struct SweepRequest {
    /// Human-readable sweep name; expanded jobs are named `{name}#{index}`.
    pub name: String,
    /// The intent bundle (may carry unbound symbols and a default context).
    pub base: JobBundle,
    /// Parameter binding sets; empty means "bind nothing".
    pub binding_sets: Vec<BTreeMap<String, ParamValue>>,
    /// Execution contexts; empty means "keep the base bundle's context".
    pub contexts: Vec<ContextDescriptor>,
}

impl SweepRequest {
    /// A sweep over the given base bundle with no dimensions yet (expands to
    /// exactly one job).
    pub fn new(name: impl Into<String>, base: JobBundle) -> Self {
        SweepRequest {
            name: name.into(),
            base,
            binding_sets: Vec::new(),
            contexts: Vec::new(),
        }
    }

    /// Add one parameter binding set, builder-style.
    pub fn with_binding_set(mut self, bindings: BTreeMap<String, ParamValue>) -> Self {
        self.binding_sets.push(bindings);
        self
    }

    /// Add one execution context, builder-style.
    pub fn with_context(mut self, context: ContextDescriptor) -> Self {
        self.contexts.push(context);
        self
    }

    /// Number of jobs this sweep expands to.
    pub fn job_count(&self) -> usize {
        self.binding_sets.len().max(1) * self.contexts.len().max(1)
    }

    /// Expand into concrete, validated job bundles.
    ///
    /// Every expanded job must be fully bound and pass cross-descriptor
    /// validation; the first violation rejects the whole sweep at submission
    /// time (jobs never fail on validation mid-batch).
    pub fn expand(&self) -> Result<Vec<JobBundle>> {
        if self.name.trim().is_empty() {
            return Err(QmlError::Validation("sweep name must be non-empty".into()));
        }
        let neutral_binding = BTreeMap::new();
        let bindings: Vec<&BTreeMap<String, ParamValue>> = if self.binding_sets.is_empty() {
            vec![&neutral_binding]
        } else {
            self.binding_sets.iter().collect()
        };
        let contexts: Vec<Option<&ContextDescriptor>> = if self.contexts.is_empty() {
            vec![None]
        } else {
            self.contexts.iter().map(Some).collect()
        };

        let mut jobs = Vec::with_capacity(bindings.len() * contexts.len());
        let mut index = 0usize;
        for binding in &bindings {
            let bound = if binding.is_empty() {
                self.base.clone()
            } else {
                self.base.bind(binding)
            };
            for context in &contexts {
                let mut job = match context {
                    Some(ctx) => bound.clone().with_context((*ctx).clone()),
                    None => bound.clone(),
                };
                job.name = format!("{}#{}", self.name, index);
                let job = job
                    .with_metadata("sweep", self.name.clone())
                    .with_metadata("sweep_index", index as i64);
                job.validate()?;
                job.ensure_bound().map_err(|e| {
                    QmlError::Validation(format!(
                        "sweep `{}` job {index} still has unbound symbols: {e}",
                        self.name
                    ))
                })?;
                jobs.push(job);
                index += 1;
            }
        }
        Ok(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qml_algorithms::{qaoa_maxcut_program, QaoaSchedule, RING_P1_ANGLES};
    use qml_graph::cycle;
    use qml_types::{AnnealConfig, ExecConfig, Target};

    fn fixed_program() -> JobBundle {
        qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap()
    }

    fn symbolic_program() -> JobBundle {
        qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Symbolic { layers: 1 }).unwrap()
    }

    fn gate_context(seed: u64) -> ContextDescriptor {
        ContextDescriptor::for_gate(
            ExecConfig::new("gate.aer_simulator")
                .with_samples(64)
                .with_seed(seed)
                .with_target(Target::ring(4)),
        )
    }

    fn angle_binding(gamma: f64) -> BTreeMap<String, ParamValue> {
        let mut b = BTreeMap::new();
        b.insert("gamma_0".to_string(), ParamValue::Float(gamma));
        b.insert("beta_0".to_string(), ParamValue::Float(0.3));
        b
    }

    #[test]
    fn bare_sweep_expands_to_one_job() {
        let sweep = SweepRequest::new("single", fixed_program());
        let jobs = sweep.expand().unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].name, "single#0");
        assert_eq!(sweep.job_count(), 1);
    }

    #[test]
    fn context_sweep_preserves_intent() {
        let mut sweep = SweepRequest::new("seeds", fixed_program());
        for seed in 0..3 {
            sweep = sweep.with_context(gate_context(seed));
        }
        let jobs = sweep.expand().unwrap();
        assert_eq!(jobs.len(), 3);
        let hash = jobs[0].program_hash();
        assert!(jobs.iter().all(|j| j.program_hash() == hash));
        assert!(jobs.iter().all(|j| j.metadata.contains_key("sweep")));
    }

    #[test]
    fn binding_cross_context_expansion() {
        let sweep = SweepRequest::new("grid", symbolic_program())
            .with_binding_set(angle_binding(0.2))
            .with_binding_set(angle_binding(0.4))
            .with_context(gate_context(0))
            .with_context(gate_context(1))
            .with_context(gate_context(2));
        assert_eq!(sweep.job_count(), 6);
        let jobs = sweep.expand().unwrap();
        assert_eq!(jobs.len(), 6);
        // Two distinct programs (one per binding), three contexts each.
        let distinct: std::collections::BTreeSet<u64> =
            jobs.iter().map(|j| j.program_hash()).collect();
        assert_eq!(distinct.len(), 2);
        // Names enumerate in expansion order.
        assert_eq!(jobs[5].name, "grid#5");
    }

    #[test]
    fn unbound_sweep_rejected_at_expansion() {
        let sweep = SweepRequest::new("oops", symbolic_program()).with_context(gate_context(0));
        let err = sweep.expand().unwrap_err();
        assert!(err.to_string().contains("unbound"), "{err}");
    }

    #[test]
    fn anneal_context_sweep_expands() {
        let bundle = qml_algorithms::maxcut_ising_program(&cycle(4)).unwrap();
        let sweep = SweepRequest::new("reads", bundle)
            .with_context(ContextDescriptor::for_anneal(
                "anneal.neal_simulator",
                AnnealConfig::with_reads(50),
            ))
            .with_context(ContextDescriptor::for_anneal(
                "anneal.neal_simulator",
                AnnealConfig::with_reads(100),
            ));
        assert_eq!(sweep.expand().unwrap().len(), 2);
    }
}
