//! Fleet routing: N heterogeneous devices per backend plane, with failure
//! domains.
//!
//! The scheduler used to treat each backend plane as one infinitely wide
//! device. A real deployment runs a *fleet* behind every plane — several
//! simulators of different register widths, annealers with different
//! schedule support — and devices fail. [`FleetRouter`] owns that layer:
//!
//! * each device carries a [`CapabilityDescriptor`], a bounded concurrency,
//!   its own parked-work queue, and a per-device [`CostModel`] (EWMA of
//!   measured busy-seconds per plan key);
//! * [`select`](FleetRouter::select) routes a job to the **cheapest capable
//!   healthy device**: devices with no cost history for the plan are
//!   explored first (capability-feasible round robin, which seeds their
//!   history); once every candidate has a prediction, any device within
//!   [`COST_TIE_BAND`] of the cheapest is eligible and the least-loaded one
//!   wins;
//! * observed [`DeviceFault`](qml_types::QmlError::DeviceFault) outcomes walk
//!   a device down the [`HealthState`] ladder (healthy → degraded →
//!   down at `down_threshold` consecutive faults); any success — including a
//!   recovery probe, routed to a down device once per `probe_interval`
//!   settled outcomes — restores it to healthy;
//! * when a device goes down its parked queue is evacuated to live capable
//!   siblings, and idle devices steal compatible parked work across the
//!   fleet (`FleetRouter::pop_parked`);
//! * operators can [`cordon`](FleetRouter::cordon) a device for maintenance:
//!   it accepts no new routes, in-flight work finishes normally, parked work
//!   is evacuated to (or stolen by) capable siblings, and
//!   [`uncordon`](FleetRouter::uncordon) restores routing exactly as it was.
//!   A cordon is administrative, orthogonal to health: it never moves the
//!   health ladder, and feasibility checks ignore it (jobs for an
//!   all-cordoned plane wait rather than fail);
//! * per-job **exclusion sets** record which devices already faulted on a
//!   job, so a requeued job never lands on the device that failed it. The
//!   capable set is finite and every requeue adds one exclusion, so a job
//!   either completes elsewhere or fails terminally — never loops.
//!
//! The router is pure bookkeeping — no locks, no clocks (probe pacing counts
//! settled outcomes, not wall time), no I/O — so every routing decision is
//! deterministic given the outcome sequence, which is what makes the fleet
//! invariants property-testable.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use qml_backends::Backend;
use qml_runtime::JobDispatch;
use qml_types::{CapabilityDescriptor, HealthState, JobRequirements};

use crate::cost_model::CostModel;

/// Consecutive device faults that take a device from degraded to down when
/// no explicit threshold is configured.
pub const DEFAULT_DOWN_THRESHOLD: u32 = 2;

/// Relative band around the cheapest capable device's predicted cost within
/// which devices are considered tied (the least-loaded tied device wins).
/// Cost predictions are EWMA estimates; treating a 10% spread as a tie
/// avoids herding every dispatch onto one device over measurement noise.
pub const COST_TIE_BAND: f64 = 0.10;

/// One device to register with the fleet: a stable id, the backend instance
/// that executes its work, what it can serve, and how many member jobs it
/// runs concurrently.
#[derive(Clone)]
pub struct DeviceSpec {
    /// Stable fleet-unique identifier (e.g. `"gate-a"`).
    pub id: String,
    /// The executing backend. Its [`Backend::name`] is the device's *plane*:
    /// placement picks the plane, the fleet picks the device within it.
    pub backend: Arc<dyn Backend>,
    /// What the device can realize.
    pub caps: CapabilityDescriptor,
    /// Concurrent member-job slots. Jobs routed to a device with no free
    /// slot park on its queue (up to the same headroom) until a slot frees
    /// or a sibling steals them.
    pub concurrency: usize,
}

impl DeviceSpec {
    /// A device with unbounded concurrency.
    pub fn new(
        id: impl Into<String>,
        backend: Arc<dyn Backend>,
        caps: CapabilityDescriptor,
    ) -> Self {
        DeviceSpec {
            id: id.into(),
            backend,
            caps,
            concurrency: usize::MAX,
        }
    }

    /// Bound the device's concurrent member-job slots, builder-style
    /// (values below 1 are treated as 1).
    pub fn with_concurrency(mut self, concurrency: usize) -> Self {
        self.concurrency = concurrency.max(1);
        self
    }
}

impl fmt::Debug for DeviceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviceSpec")
            .field("id", &self.id)
            .field("plane", &self.backend.name())
            .field("caps", &self.caps)
            .field("concurrency", &self.concurrency)
            .finish()
    }
}

/// A whole micro-batch parked on a device's queue: the dispatch as the
/// scheduler assembled it (plane-level placement, device not yet stamped)
/// plus what re-routing it needs.
#[derive(Debug, Clone)]
pub(crate) struct ParkedDispatch {
    pub dispatch: JobDispatch,
    pub requirements: Option<JobRequirements>,
}

/// Serializable per-device gauges, surfaced through
/// [`ServiceMetrics::per_device`](crate::ServiceMetrics) and the
/// observability dump. Device gauges fold up to the per-backend totals:
/// summing `busy_seconds` over one plane's devices reproduces that plane's
/// [`BackendUtilization`](crate::BackendUtilization) busy-seconds.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DeviceUtilization {
    /// The backend plane the device belongs to.
    pub plane: String,
    /// Current health ladder position (`"healthy"` / `"degraded"` /
    /// `"down"`).
    pub health: String,
    /// Member jobs handed to this device's backend.
    pub dispatched: u64,
    /// Member outcomes that succeeded on this device.
    pub completed: u64,
    /// Member outcomes that failed on this device (device faults included).
    pub failed: u64,
    /// Faulted member jobs requeued away from this device.
    pub requeued: u64,
    /// Parked dispatches another device stole from this device's queue.
    pub stolen_from: u64,
    /// Measured busy wall-clock on this device, faulted attempts included.
    pub busy_seconds: f64,
    /// Member jobs currently parked on the device's queue.
    pub queue_depth: u64,
    /// Member jobs currently executing on the device.
    pub in_flight: u64,
    /// True while the device is administratively cordoned (no new routes).
    /// Absent from pre-cordon snapshots, hence the default.
    #[serde(default)]
    pub cordoned: bool,
}

/// Full runtime state of one fleet device.
struct DeviceState {
    id: Arc<str>,
    plane: String,
    backend: Arc<dyn Backend>,
    caps: CapabilityDescriptor,
    concurrency: usize,
    health: HealthState,
    /// Administrative maintenance flag: a cordoned device accepts no new
    /// routes and serves nothing from its parked queue, but in-flight work
    /// finishes and settles normally. Orthogonal to `health`.
    cordoned: bool,
    /// Consecutive device faults since the last success.
    fail_streak: u32,
    /// Per-device measured cost: the EWMA this device's own outcomes feed,
    /// so a slow device prices itself out of tie-bands it doesn't deserve.
    cost: CostModel,
    /// Dispatches routed here while every slot was busy.
    queue: VecDeque<ParkedDispatch>,
    in_flight: usize,
    dispatched: u64,
    completed: u64,
    failed: u64,
    requeued: u64,
    stolen_from: u64,
    busy_seconds: f64,
    /// `outcomes_seen` stamp of the last recovery probe routed here.
    last_probe_at: u64,
}

impl fmt::Debug for DeviceState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviceState")
            .field("id", &self.id)
            .field("plane", &self.plane)
            .field("health", &self.health)
            .field("cordoned", &self.cordoned)
            .field("in_flight", &self.in_flight)
            .field("queue", &self.queue.len())
            .finish()
    }
}

impl DeviceState {
    fn has_free_slot(&self) -> bool {
        self.in_flight < self.concurrency
    }

    fn has_headroom(&self) -> bool {
        self.queue.len() < self.concurrency
    }

    /// Queue pressure used for least-loaded tie-breaks and evacuation
    /// targets.
    fn load(&self) -> usize {
        self.in_flight + self.queued_members()
    }

    fn queued_members(&self) -> usize {
        self.queue.iter().map(|p| p.dispatch.len()).sum()
    }

    fn supports(&self, req: Option<&JobRequirements>) -> bool {
        req.is_none_or(|r| self.caps.supports(r))
    }
}

/// Device-level router for all backend planes. See the module docs.
#[derive(Debug)]
pub struct FleetRouter {
    devices: Vec<DeviceState>,
    /// Per-job device exclusion sets (keyed by raw [`JobId`] value): devices
    /// that already faulted on the job and must not see it again.
    exclusions: BTreeMap<u64, BTreeSet<usize>>,
    /// Round-robin cursor for history-less routing and tie-breaks.
    rr: usize,
    /// EWMA smoothing for the per-device cost models.
    ewma_alpha: f64,
    /// Consecutive faults that take a device down (≥ 1).
    down_threshold: u32,
    /// Settled outcomes between recovery probes of a down device
    /// (0 disables probing: down is permanent).
    probe_interval: u64,
    /// Total settled outcomes, the clock probe pacing counts in.
    outcomes_seen: u64,
}

impl FleetRouter {
    /// A router over `specs`. Device cost models smooth with `ewma_alpha`
    /// (same semantics as the scheduler's admission model), `down_threshold`
    /// consecutive faults take a device down, and a down device receives one
    /// recovery probe every `probe_interval` settled outcomes (0 = never).
    pub fn new(
        specs: Vec<DeviceSpec>,
        ewma_alpha: f64,
        down_threshold: u32,
        probe_interval: u64,
    ) -> Self {
        let devices = specs
            .into_iter()
            .map(|spec| DeviceState {
                id: Arc::from(spec.id.as_str()),
                plane: spec.backend.name().to_string(),
                backend: spec.backend,
                caps: spec.caps,
                concurrency: spec.concurrency.max(1),
                health: HealthState::Healthy,
                cordoned: false,
                fail_streak: 0,
                cost: CostModel::new(ewma_alpha),
                queue: VecDeque::new(),
                in_flight: 0,
                dispatched: 0,
                completed: 0,
                failed: 0,
                requeued: 0,
                stolen_from: 0,
                busy_seconds: 0.0,
                last_probe_at: 0,
            })
            .collect();
        FleetRouter {
            devices,
            exclusions: BTreeMap::new(),
            rr: 0,
            ewma_alpha,
            down_threshold: down_threshold.max(1),
            probe_interval,
            outcomes_seen: 0,
        }
    }

    /// A router with no devices: every plane is un-fleeted and dispatches
    /// exactly as before the fleet layer existed.
    pub fn empty() -> Self {
        FleetRouter::new(Vec::new(), 0.0, DEFAULT_DOWN_THRESHOLD, 0)
    }

    /// Number of registered devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// The index of the device with this id.
    pub fn device_index(&self, id: &str) -> Option<usize> {
        self.devices.iter().position(|d| &*d.id == id)
    }

    /// The id of the device at `index`.
    pub fn device_id(&self, index: usize) -> Option<Arc<str>> {
        self.devices.get(index).map(|d| Arc::clone(&d.id))
    }

    /// The current health of the device at `index`.
    pub fn health(&self, index: usize) -> Option<HealthState> {
        self.devices.get(index).map(|d| d.health)
    }

    /// True when any device serves `plane`.
    pub fn has_plane(&self, plane: &str) -> bool {
        self.devices.iter().any(|d| d.plane == plane)
    }

    fn is_excluded(&self, job: u64, device: usize) -> bool {
        self.exclusions
            .get(&job)
            .is_some_and(|set| set.contains(&device))
    }

    /// Record that `device` faulted on `job`: the job must never route there
    /// again (until the exclusion set is cleared by a terminal outcome).
    pub fn exclude(&mut self, job: u64, device: usize) {
        self.exclusions.entry(job).or_default().insert(device);
    }

    /// How many devices `job` is excluded from — equivalently, how many
    /// faulted attempts it has survived.
    pub fn exclusion_count(&self, job: u64) -> usize {
        self.exclusions.get(&job).map_or(0, BTreeSet::len)
    }

    /// Drop `job`'s exclusion set (its outcome is terminal).
    pub fn clear_exclusions(&mut self, job: u64) {
        self.exclusions.remove(&job);
    }

    /// True when `member`'s exclusion set is a subset of `head`'s — the
    /// condition for coalescing them into one dispatch (the batch routes by
    /// the head's exclusions; a member excluded from a device the head is
    /// not would otherwise ride back onto the device that faulted it).
    pub(crate) fn exclusions_subset(&self, member: u64, head: u64) -> bool {
        match self.exclusions.get(&member) {
            None => true,
            Some(m) => match self.exclusions.get(&head) {
                None => false,
                Some(h) => m.is_subset(h),
            },
        }
    }

    /// True when some device on `plane` can serve `req` at all, regardless
    /// of health or exclusions. Un-fleeted planes (no devices) return `true`
    /// — they dispatch device-blind. This is the admission feasibility
    /// check: a job no device could ever serve is rejected at submission
    /// instead of bouncing through the queue forever.
    pub fn capable_exists(&self, plane: &str, req: Option<&JobRequirements>) -> bool {
        if !self.has_plane(plane) {
            return true;
        }
        self.devices
            .iter()
            .any(|d| d.plane == plane && d.supports(req))
    }

    /// True when a requeue of `job` off `failed` has somewhere to go: a
    /// capable same-plane device that is neither the failed device nor
    /// already excluded. Deliberately health-agnostic — health changes, the
    /// exclusion set only grows, so checking capability alone guarantees a
    /// requeue loop terminates.
    pub fn retry_candidate_exists(
        &self,
        plane: &str,
        req: Option<&JobRequirements>,
        job: u64,
        failed: usize,
    ) -> bool {
        self.devices.iter().enumerate().any(|(i, d)| {
            i != failed && d.plane == plane && d.supports(req) && !self.is_excluded(job, i)
        })
    }

    /// True when the plane can take this job *now*: some capable,
    /// non-excluded device has a free slot or parking headroom. Un-fleeted
    /// planes always accept. The scheduler calls this before spending a
    /// tenant's deficit so a saturated fleet defers the job (keeping the
    /// deficit) instead of over-committing a device.
    pub(crate) fn can_accept(&self, plane: &str, req: Option<&JobRequirements>, job: u64) -> bool {
        if !self.has_plane(plane) {
            return true;
        }
        self.devices.iter().enumerate().any(|(i, d)| {
            d.plane == plane
                && !d.cordoned
                && d.supports(req)
                && !self.is_excluded(job, i)
                && (d.has_free_slot() || d.has_headroom())
        })
    }

    /// Round-robin pick over a non-empty candidate list: the first candidate
    /// at or after the cursor, which then moves past it.
    fn rr_pick(&mut self, candidates: &[usize]) -> usize {
        let n = self.devices.len().max(1);
        let cursor = self.rr % n;
        let pick = candidates
            .iter()
            .copied()
            .min_by_key(|&i| (i + n - cursor) % n)
            .expect("candidates non-empty");
        self.rr = pick + 1;
        pick
    }

    /// Route one job: the cheapest capable healthy device on `plane`, per
    /// the policy in the module docs. Returns `None` for un-fleeted planes
    /// (dispatch device-blind) and when every capable device is excluded for
    /// this job. Selecting a down device (probe or last resort) stamps its
    /// probe clock.
    pub fn select(
        &mut self,
        plane: &str,
        req: Option<&JobRequirements>,
        plan_key: Option<u64>,
        job: u64,
    ) -> Option<usize> {
        // Cordoned devices are filtered with the capability checks: a cordon
        // removes a device from routing entirely, while health only
        // deprioritizes it (probes and last resorts still reach a down
        // device — never a cordoned one).
        let candidates: Vec<usize> = self
            .devices
            .iter()
            .enumerate()
            .filter(|(i, d)| {
                d.plane == plane && !d.cordoned && d.supports(req) && !self.is_excluded(job, *i)
            })
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        // Recovery probe: a down device that has waited out the probe
        // interval receives this job; its outcome decides whether it
        // rejoins the rotation.
        if self.probe_interval > 0 {
            let due = candidates.iter().copied().find(|&i| {
                self.devices[i].health == HealthState::Down
                    && self.outcomes_seen - self.devices[i].last_probe_at >= self.probe_interval
            });
            if let Some(i) = due {
                self.devices[i].last_probe_at = self.outcomes_seen;
                self.rr = i + 1;
                return Some(i);
            }
        }
        let live: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| self.devices[i].health != HealthState::Down)
            .collect();
        if live.is_empty() {
            // Every capable device is down: last resort, round robin over
            // them — failing fast (and walking the exclusion set) beats
            // wedging the queue forever.
            let pick = self.rr_pick(&candidates);
            self.devices[pick].last_probe_at = self.outcomes_seen;
            return Some(pick);
        }
        // Prefer devices that can take the work now; fall back to the full
        // live set when everything is saturated (the job will park).
        let open: Vec<usize> = live
            .iter()
            .copied()
            .filter(|&i| self.devices[i].has_free_slot() || self.devices[i].has_headroom())
            .collect();
        let live = if open.is_empty() { live } else { open };
        // Explore first: a device with no measurement for this plan routes
        // by round robin (healthy before degraded), seeding its history so
        // the cost comparison below becomes meaningful.
        let unknown: Vec<usize> = live
            .iter()
            .copied()
            .filter(|&i| {
                plan_key.is_none_or(|key| self.devices[i].cost.predict_seconds(key).is_none())
            })
            .collect();
        if !unknown.is_empty() {
            let healthy: Vec<usize> = unknown
                .iter()
                .copied()
                .filter(|&i| self.devices[i].health == HealthState::Healthy)
                .collect();
            let pool = if healthy.is_empty() { unknown } else { healthy };
            return Some(self.rr_pick(&pool));
        }
        // Exploit: cheapest predicted cost wins, with everything within the
        // tie band eligible; healthier then less-loaded devices break ties.
        let key = plan_key.expect("no-history branch handled plan-less jobs");
        let predict = |i: usize| {
            self.devices[i]
                .cost
                .predict_seconds(key)
                .expect("every live candidate has history")
        };
        let cheapest = live
            .iter()
            .copied()
            .map(predict)
            .fold(f64::INFINITY, f64::min);
        let n = self.devices.len();
        let cursor = self.rr % n.max(1);
        let pick = live
            .iter()
            .copied()
            .filter(|&i| predict(i) <= cheapest * (1.0 + COST_TIE_BAND))
            .min_by_key(|&i| {
                let health_rank = match self.devices[i].health {
                    HealthState::Healthy => 0u8,
                    HealthState::Degraded => 1,
                    HealthState::Down => 2,
                };
                (health_rank, self.devices[i].load(), (i + n - cursor) % n)
            })
            .expect("band contains the cheapest device");
        self.rr = pick + 1;
        Some(pick)
    }

    /// True when the device at `index` has a free execution slot.
    pub fn has_free_slot(&self, index: usize) -> bool {
        self.devices
            .get(index)
            .is_some_and(DeviceState::has_free_slot)
    }

    /// Occupy `members` execution slots on a device (one per batch member).
    pub(crate) fn take_slots(&mut self, index: usize, members: usize) {
        if let Some(dev) = self.devices.get_mut(index) {
            dev.in_flight = dev.in_flight.saturating_add(members);
            dev.dispatched += members as u64;
        }
    }

    /// Free one execution slot (one batch member settled or was skipped).
    pub(crate) fn release_slot(&mut self, index: usize) {
        if let Some(dev) = self.devices.get_mut(index) {
            dev.in_flight = dev.in_flight.saturating_sub(1);
        }
    }

    /// Count a faulted member job requeued away from this device.
    pub(crate) fn note_requeued(&mut self, index: usize) {
        if let Some(dev) = self.devices.get_mut(index) {
            dev.requeued += 1;
        }
    }

    /// The backend executing on the device at `index`.
    pub(crate) fn backend(&self, index: usize) -> Option<Arc<dyn Backend>> {
        self.devices.get(index).map(|d| Arc::clone(&d.backend))
    }

    /// Park a dispatch on a device's queue until a slot frees (or a sibling
    /// steals it).
    pub(crate) fn park(&mut self, index: usize, parked: ParkedDispatch) {
        if let Some(dev) = self.devices.get_mut(index) {
            dev.queue.push_back(parked);
        }
    }

    /// Next parked dispatch ready to run, with the device that will run it.
    ///
    /// A device with a free slot serves its own queue first (FIFO). Failing
    /// that, an **idle** device (free slot, empty queue, not down) steals
    /// the newest compatible dispatch from a same-plane sibling's queue —
    /// newest because the victim will reach its oldest work first, so
    /// stealing from the back minimizes double-handling.
    pub(crate) fn pop_parked(&mut self) -> Option<(usize, ParkedDispatch)> {
        for i in 0..self.devices.len() {
            if self.devices[i].has_free_slot()
                && !self.devices[i].cordoned
                && !self.devices[i].queue.is_empty()
            {
                let entry = self.devices[i]
                    .queue
                    .pop_front()
                    .expect("checked non-empty");
                return Some((i, entry));
            }
        }
        // Cordoned devices never thieve, but they make fine victims: that is
        // how work still parked on a freshly cordoned device drains.
        for thief in 0..self.devices.len() {
            let idle = self.devices[thief].has_free_slot()
                && self.devices[thief].queue.is_empty()
                && self.devices[thief].health != HealthState::Down
                && !self.devices[thief].cordoned;
            if !idle {
                continue;
            }
            for victim in 0..self.devices.len() {
                if victim == thief || self.devices[victim].plane != self.devices[thief].plane {
                    continue;
                }
                for pos in (0..self.devices[victim].queue.len()).rev() {
                    let compatible = {
                        let entry = &self.devices[victim].queue[pos];
                        self.devices[thief].supports(entry.requirements.as_ref())
                            && entry
                                .dispatch
                                .ids()
                                .all(|id| !self.is_excluded(id.0, thief))
                    };
                    if compatible {
                        let entry = self.devices[victim]
                            .queue
                            .remove(pos)
                            .expect("position in bounds");
                        self.devices[victim].stolen_from += 1;
                        return Some((thief, entry));
                    }
                }
            }
        }
        None
    }

    /// Cordon the device with this id for maintenance: no new routes, no
    /// own-queue service, no thieving — in-flight work finishes and settles
    /// normally, and the parked queue is immediately evacuated to capable
    /// uncordoned same-plane siblings (entries with nowhere to go stay
    /// parked, draining through sibling steals or the eventual uncordon).
    /// Idempotent; returns false for unknown device ids.
    pub fn cordon(&mut self, id: &str) -> bool {
        let Some(index) = self.device_index(id) else {
            return false;
        };
        self.devices[index].cordoned = true;
        self.evacuate(index);
        true
    }

    /// Lift a cordon placed by [`FleetRouter::cordon`]: the device rejoins
    /// routing with its health, cost history, and counters exactly as the
    /// cordon left them. Idempotent; returns false for unknown device ids.
    pub fn uncordon(&mut self, id: &str) -> bool {
        let Some(index) = self.device_index(id) else {
            return false;
        };
        self.devices[index].cordoned = false;
        true
    }

    /// True while the device at `index` is cordoned.
    pub fn is_cordoned(&self, index: usize) -> bool {
        self.devices.get(index).is_some_and(|d| d.cordoned)
    }

    /// Settle one member outcome on a device: accrue busy-seconds (faulted
    /// attempts included — the device was genuinely occupied), feed the
    /// per-device cost model on success, and walk the health ladder. A
    /// device that transitions to down has its parked queue evacuated to
    /// live capable siblings. Returns `true` on a down transition.
    pub fn observe(
        &mut self,
        index: usize,
        plan_key: Option<u64>,
        seconds: f64,
        ok: bool,
        fault: bool,
    ) -> bool {
        self.outcomes_seen += 1;
        let threshold = self.down_threshold;
        let Some(dev) = self.devices.get_mut(index) else {
            return false;
        };
        let measured = seconds.is_finite() && seconds >= 0.0;
        if measured {
            dev.busy_seconds += seconds;
        }
        let mut went_down = false;
        if ok {
            dev.completed += 1;
            dev.fail_streak = 0;
            dev.health = HealthState::Healthy;
            if let (Some(key), true) = (plan_key, measured) {
                dev.cost.observe(key, seconds);
            }
        } else {
            dev.failed += 1;
            if fault {
                dev.fail_streak += 1;
                let next = if dev.fail_streak >= threshold {
                    HealthState::Down
                } else {
                    HealthState::Degraded
                };
                went_down = next == HealthState::Down && dev.health != HealthState::Down;
                dev.health = next;
            }
        }
        if went_down {
            self.evacuate(index);
        }
        went_down
    }

    /// Move a down (or freshly cordoned) device's parked queue to live
    /// uncordoned capable same-plane siblings (least-loaded first, headroom
    /// waived — absorbing a dead device's backlog beats bouncing it).
    /// Entries with no live capable alternative stay parked on the source
    /// device: a down device runs them as a last resort and fails them
    /// terminally through the exclusion walk, while a cordoned device holds
    /// them for sibling steals or the eventual uncordon — either beats
    /// wedging a drain forever.
    fn evacuate(&mut self, from: usize) {
        let parked = std::mem::take(&mut self.devices[from].queue);
        let mut kept = VecDeque::new();
        for entry in parked {
            let target = (0..self.devices.len())
                .filter(|&i| {
                    i != from
                        && self.devices[i].plane == self.devices[from].plane
                        && self.devices[i].health != HealthState::Down
                        && !self.devices[i].cordoned
                        && self.devices[i].supports(entry.requirements.as_ref())
                        && entry.dispatch.ids().all(|id| !self.is_excluded(id.0, i))
                })
                .min_by_key(|&i| self.devices[i].load());
            match target {
                Some(i) => self.devices[i].queue.push_back(entry),
                None => kept.push_back(entry),
            }
        }
        self.devices[from].queue = kept;
    }

    /// The EWMA smoothing the per-device cost models were built with.
    pub fn ewma_alpha(&self) -> f64 {
        self.ewma_alpha
    }

    /// Per-device gauges keyed by device id.
    pub fn snapshot(&self) -> BTreeMap<String, DeviceUtilization> {
        self.devices
            .iter()
            .map(|d| {
                (
                    d.id.to_string(),
                    DeviceUtilization {
                        plane: d.plane.clone(),
                        health: d.health.name().to_string(),
                        dispatched: d.dispatched,
                        completed: d.completed,
                        failed: d.failed,
                        requeued: d.requeued,
                        stolen_from: d.stolen_from,
                        busy_seconds: d.busy_seconds,
                        queue_depth: d.queued_members() as u64,
                        in_flight: d.in_flight as u64,
                        cordoned: d.cordoned,
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qml_backends::GateBackend;
    use qml_runtime::JobId;

    const PLANE: &str = "qml-gate-simulator";

    fn spec(id: &str, caps: CapabilityDescriptor) -> DeviceSpec {
        DeviceSpec::new(id, Arc::new(GateBackend::new()), caps)
    }

    fn fleet(n: usize) -> FleetRouter {
        let specs = (0..n)
            .map(|i| spec(&format!("dev-{i}"), CapabilityDescriptor::unlimited()))
            .collect();
        FleetRouter::new(specs, 0.4, 2, 0)
    }

    fn req(qubits: usize) -> JobRequirements {
        JobRequirements {
            qubits,
            opt_level: 1,
        }
    }

    #[test]
    fn history_less_routing_round_robins_over_capable_devices() {
        let mut fleet = fleet(3);
        let picks: Vec<usize> = (0..6)
            .map(|job| fleet.select(PLANE, Some(&req(4)), Some(7), job).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn capability_filter_excludes_narrow_devices() {
        let specs = vec![
            spec(
                "narrow",
                CapabilityDescriptor::unlimited().with_max_qubits(4),
            ),
            spec("wide", CapabilityDescriptor::unlimited()),
        ];
        let mut fleet = FleetRouter::new(specs, 0.4, 2, 0);
        for job in 0..4 {
            let pick = fleet.select(PLANE, Some(&req(16)), None, job).unwrap();
            assert_eq!(fleet.device_id(pick).unwrap().as_ref(), "wide");
        }
        assert!(fleet.capable_exists(PLANE, Some(&req(16))));
        // A 4-qubit job fits both devices, so routing alternates again.
        let picks: BTreeSet<usize> = (10..14)
            .filter_map(|job| fleet.select(PLANE, Some(&req(4)), None, job))
            .collect();
        assert_eq!(picks.len(), 2, "narrow device rejoins for jobs that fit");
    }

    #[test]
    fn cheapest_device_wins_once_every_candidate_has_history() {
        let mut fleet = fleet(2);
        let key = Some(99);
        // Seed history: device 0 is 10x slower than device 1.
        fleet.observe(0, key, 1.0, true, false);
        fleet.observe(1, key, 0.1, true, false);
        for job in 10..16 {
            let pick = fleet.select(PLANE, None, key, job).unwrap();
            assert_eq!(pick, 1, "the cheap device wins outside the tie band");
        }
    }

    #[test]
    fn tie_band_breaks_toward_the_least_loaded_device() {
        let mut fleet = fleet(2);
        let key = Some(5);
        fleet.observe(0, key, 0.100, true, false);
        fleet.observe(1, key, 0.105, true, false); // within 10% of device 0
        fleet.take_slots(0, 3);
        let pick = fleet.select(PLANE, None, key, 1).unwrap();
        assert_eq!(pick, 1, "tied on cost, device 1 carries less load");
    }

    #[test]
    fn exclusions_are_respected_and_cleared() {
        let mut fleet = fleet(2);
        fleet.exclude(42, 0);
        for _ in 0..4 {
            assert_eq!(fleet.select(PLANE, None, None, 42), Some(1));
        }
        assert_eq!(fleet.exclusion_count(42), 1);
        fleet.exclude(42, 1);
        assert_eq!(fleet.select(PLANE, None, None, 42), None, "all excluded");
        assert!(!fleet.retry_candidate_exists(PLANE, None, 42, 0));
        fleet.clear_exclusions(42);
        assert!(fleet.select(PLANE, None, None, 42).is_some());
    }

    #[test]
    fn fault_streak_walks_the_health_ladder_and_success_resets_it() {
        let mut fleet = fleet(2);
        fleet.observe(0, None, 0.01, false, true);
        assert_eq!(fleet.health(0), Some(HealthState::Degraded));
        fleet.observe(0, None, 0.01, true, false);
        assert_eq!(fleet.health(0), Some(HealthState::Healthy), "success heals");
        fleet.observe(0, None, 0.01, false, true);
        let went_down = fleet.observe(0, None, 0.01, false, true);
        assert!(went_down, "threshold reached");
        assert_eq!(fleet.health(0), Some(HealthState::Down));
        // Non-fault failures (user errors) never move the ladder.
        fleet.observe(1, None, 0.01, false, false);
        assert_eq!(fleet.health(1), Some(HealthState::Healthy));
    }

    #[test]
    fn down_devices_receive_no_dispatches_while_a_live_candidate_exists() {
        let mut fleet = fleet(2);
        fleet.observe(0, None, 0.01, false, true);
        fleet.observe(0, None, 0.01, false, true);
        assert_eq!(fleet.health(0), Some(HealthState::Down));
        for job in 0..8 {
            assert_eq!(fleet.select(PLANE, None, None, job), Some(1));
        }
        // All down: last resort still routes (the exclusion walk terminates
        // the job) rather than wedging.
        fleet.observe(1, None, 0.01, false, true);
        fleet.observe(1, None, 0.01, false, true);
        assert!(fleet.select(PLANE, None, None, 100).is_some());
    }

    #[test]
    fn probe_interval_routes_a_recovery_job_to_a_down_device() {
        let mut fleet = FleetRouter::new(
            (0..2)
                .map(|i| spec(&format!("dev-{i}"), CapabilityDescriptor::unlimited()))
                .collect(),
            0.4,
            1,
            3,
        );
        fleet.observe(0, None, 0.01, false, true); // threshold 1: down
        assert_eq!(fleet.health(0), Some(HealthState::Down));
        // Not due yet: traffic routes to the live device.
        assert_eq!(fleet.select(PLANE, None, None, 1), Some(1));
        fleet.observe(1, None, 0.01, true, false);
        fleet.observe(1, None, 0.01, true, false);
        // 3 outcomes since the fault: the down device gets one probe...
        assert_eq!(fleet.select(PLANE, None, None, 2), Some(0));
        // ...and only one, until the interval elapses again.
        assert_eq!(fleet.select(PLANE, None, None, 3), Some(1));
        // The probe succeeds: the device rejoins as healthy.
        fleet.observe(0, None, 0.01, true, false);
        assert_eq!(fleet.health(0), Some(HealthState::Healthy));
    }

    #[test]
    fn down_transition_evacuates_the_parked_queue_to_live_siblings() {
        let mut fleet = fleet(3);
        let parked = ParkedDispatch {
            dispatch: JobDispatch::new(JobId(9)),
            requirements: Some(req(4)),
        };
        fleet.park(0, parked.clone());
        fleet.park(
            0,
            ParkedDispatch {
                dispatch: JobDispatch::new(JobId(10)),
                requirements: Some(req(4)),
            },
        );
        fleet.observe(0, None, 0.01, false, true);
        fleet.observe(0, None, 0.01, false, true);
        assert_eq!(fleet.health(0), Some(HealthState::Down));
        let snap = fleet.snapshot();
        assert_eq!(snap["dev-0"].queue_depth, 0, "queue evacuated");
        let elsewhere: u64 = snap["dev-1"].queue_depth + snap["dev-2"].queue_depth;
        assert_eq!(elsewhere, 2, "both dispatches moved to live siblings");
    }

    #[test]
    fn idle_devices_steal_compatible_parked_work() {
        let specs = (0..2)
            .map(|i| {
                spec(&format!("dev-{i}"), CapabilityDescriptor::unlimited()).with_concurrency(1)
            })
            .collect();
        let mut fleet = FleetRouter::new(specs, 0.4, 2, 0);
        // Saturate device 0 and park two dispatches behind its busy slot.
        fleet.take_slots(0, 1);
        fleet.park(
            0,
            ParkedDispatch {
                dispatch: JobDispatch::new(JobId(1)),
                requirements: None,
            },
        );
        fleet.park(
            0,
            ParkedDispatch {
                dispatch: JobDispatch::new(JobId(2)),
                requirements: None,
            },
        );
        // Device 1 is idle: it steals the newest parked dispatch.
        let (thief, entry) = fleet.pop_parked().unwrap();
        assert_eq!(thief, 1);
        assert_eq!(entry.dispatch.id, JobId(2), "steals from the back");
        assert_eq!(fleet.snapshot()["dev-0"].stolen_from, 1);
        // Free device 0's slot: it serves its own queue head first.
        fleet.release_slot(0);
        let (owner, entry) = fleet.pop_parked().unwrap();
        assert_eq!(owner, 0);
        assert_eq!(entry.dispatch.id, JobId(1));
        assert!(fleet.pop_parked().is_none());
    }

    #[test]
    fn cordon_evacuates_parked_work_to_uncordoned_siblings() {
        let mut fleet = fleet(3);
        // Busy slots force the dispatches to park rather than run.
        fleet.take_slots(0, 2);
        for id in [1, 2] {
            fleet.park(
                0,
                ParkedDispatch {
                    dispatch: JobDispatch::new(JobId(id)),
                    requirements: Some(req(4)),
                },
            );
        }
        assert!(fleet.cordon("dev-0"));
        let snap = fleet.snapshot();
        assert!(snap["dev-0"].cordoned);
        assert_eq!(snap["dev-0"].queue_depth, 0, "parked work evacuated");
        assert_eq!(snap["dev-1"].queue_depth + snap["dev-2"].queue_depth, 2);
        // Both dispatches now run on uncordoned devices.
        for _ in 0..2 {
            let (device, _) = fleet.pop_parked().expect("parked work drains");
            assert_ne!(device, 0, "cordoned device serves nothing");
        }
        assert!(fleet.pop_parked().is_none());
    }

    #[test]
    fn cordoned_devices_never_thieve_parked_work() {
        let specs = (0..2)
            .map(|i| {
                spec(&format!("dev-{i}"), CapabilityDescriptor::unlimited()).with_concurrency(1)
            })
            .collect();
        let mut fleet = FleetRouter::new(specs, 0.4, 2, 0);
        // Device 0 is saturated with a dispatch parked behind its busy
        // slot; device 1 — the only possible thief — is cordoned.
        fleet.take_slots(0, 1);
        fleet.park(
            0,
            ParkedDispatch {
                dispatch: JobDispatch::new(JobId(7)),
                requirements: None,
            },
        );
        assert!(fleet.cordon("dev-1"));
        assert!(
            fleet.pop_parked().is_none(),
            "a cordoned device cannot steal"
        );
        // Lifting the cordon restores the steal path.
        assert!(fleet.uncordon("dev-1"));
        let (thief, entry) = fleet.pop_parked().expect("idle sibling steals");
        assert_eq!(thief, 1);
        assert_eq!(entry.dispatch.id, JobId(7));
    }

    #[test]
    fn exclusion_subset_gates_coalescing() {
        let mut fleet = fleet(3);
        assert!(fleet.exclusions_subset(1, 2), "no exclusions: compatible");
        fleet.exclude(1, 0);
        assert!(!fleet.exclusions_subset(1, 2), "member excluded, head not");
        fleet.exclude(2, 0);
        assert!(fleet.exclusions_subset(1, 2), "subset holds");
        assert!(fleet.exclusions_subset(2, 2));
        fleet.exclude(1, 1);
        assert!(!fleet.exclusions_subset(1, 2));
    }

    #[test]
    fn snapshot_gauges_track_dispatch_and_settlement() {
        let mut fleet = fleet(1);
        fleet.take_slots(0, 2);
        fleet.observe(0, Some(3), 0.5, true, false);
        fleet.release_slot(0);
        fleet.observe(0, Some(3), 0.25, false, true);
        fleet.release_slot(0);
        fleet.note_requeued(0);
        let snap = fleet.snapshot();
        let dev = &snap["dev-0"];
        assert_eq!(dev.dispatched, 2);
        assert_eq!(dev.completed, 1);
        assert_eq!(dev.failed, 1);
        assert_eq!(dev.requeued, 1);
        assert_eq!(dev.in_flight, 0);
        assert!(
            (dev.busy_seconds - 0.75).abs() < 1e-12,
            "faulted attempts accrue"
        );
        assert_eq!(dev.health, "degraded");
    }
}
