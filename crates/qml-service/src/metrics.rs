//! Service observability: throughput, queue depth, cache efficiency, and
//! per-backend / per-tenant utilization.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

pub use qml_backends::CacheStats;

/// Execution totals attributed to one backend.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BackendUtilization {
    /// Jobs this backend completed (including failed executions it owned).
    pub jobs: u64,
    /// Total busy wall-clock seconds across all pool workers.
    pub busy_seconds: f64,
}

/// Submission/completion totals attributed to one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TenantStats {
    /// Jobs the tenant has submitted (directly or via sweeps).
    pub submitted: u64,
    /// Jobs that completed successfully.
    pub completed: u64,
    /// Jobs that finished with an error.
    pub failed: u64,
}

/// Summary of one `run_pending` drain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Jobs executed in this drain.
    pub jobs: usize,
    /// Jobs that completed successfully.
    pub completed: usize,
    /// Jobs that finished with an error.
    pub failed: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Jobs an idle worker stole from a busy worker's deque.
    pub stolen: usize,
    /// Wall-clock duration of the drain, in seconds.
    pub wall_seconds: f64,
    /// Throughput of the drain: jobs per wall-clock second.
    pub jobs_per_second: f64,
}

/// A point-in-time snapshot of service health.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ServiceMetrics {
    /// Jobs accepted since the service started.
    pub jobs_submitted: u64,
    /// Jobs completed successfully since the service started.
    pub jobs_completed: u64,
    /// Jobs that finished with an error since the service started.
    pub jobs_failed: u64,
    /// Jobs currently waiting to execute.
    pub queue_depth: usize,
    /// Combined transpilation/lowering cache counters.
    pub cache: CacheStats,
    /// Gate-path (transpilation) cache counters.
    pub gate_cache: CacheStats,
    /// Annealing-path (lowering) cache counters.
    pub anneal_cache: CacheStats,
    /// Execution totals per backend name.
    pub per_backend: BTreeMap<String, BackendUtilization>,
    /// Submission totals per tenant.
    pub per_tenant: BTreeMap<String, TenantStats>,
    /// Summary of the most recent `run_pending` drain.
    pub last_run: Option<RunSummary>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_serialize() {
        let mut metrics = ServiceMetrics::default();
        metrics.per_backend.insert(
            "qml-gate-simulator".into(),
            BackendUtilization {
                jobs: 4,
                busy_seconds: 0.25,
            },
        );
        let json = serde_json::to_string(&metrics).unwrap();
        let back: ServiceMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, metrics);
    }
}
