//! Service observability: throughput, queue depth, cache efficiency, and
//! per-backend / per-tenant utilization.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

pub use crate::fleet::DeviceUtilization;
pub use crate::scheduler::SchedulerMetrics;
pub use qml_backends::CacheStats;

/// Execution totals attributed to one backend.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BackendUtilization {
    /// Jobs this backend completed (including failed executions it owned).
    pub jobs: u64,
    /// Total busy wall-clock seconds across all pool workers.
    pub busy_seconds: f64,
}

/// Submission/completion totals and live scheduler gauges attributed to one
/// tenant.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TenantStats {
    /// Jobs the tenant has submitted (directly or via sweeps).
    pub submitted: u64,
    /// Jobs that completed successfully.
    pub completed: u64,
    /// Jobs that finished with an error.
    pub failed: u64,
    /// Jobs the fair scheduler has handed to workers.
    pub dispatched: u64,
    /// Jobs currently executing (gauge; nonzero only while a pool runs).
    pub in_flight: u64,
    /// Scheduler visits skipped because the tenant's token bucket was empty.
    pub throttled: u64,
    /// Total submit→dispatch wait across all dispatched jobs, in seconds.
    pub total_wait_seconds: f64,
    /// Total **measured** busy wall-clock across the tenant's finished jobs,
    /// in seconds — the quantity measured-cost fairness equalizes per unit
    /// weight (absent from pre-measured snapshots, hence the default).
    #[serde(default)]
    pub busy_seconds: f64,
}

impl TenantStats {
    /// Mean submit→dispatch wait per dispatched job, in seconds.
    pub fn mean_wait_seconds(&self) -> f64 {
        if self.dispatched == 0 {
            0.0
        } else {
            self.total_wait_seconds / self.dispatched as f64
        }
    }
}

/// Queue/dispatch/outcome totals attributed to one service class
/// (`"latency"` or `"throughput"`), across all tenants.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ClassStats {
    /// Jobs of this class currently queued (gauge).
    pub queued: u64,
    /// Jobs of this class handed to workers.
    pub dispatched: u64,
    /// Jobs that completed successfully.
    pub completed: u64,
    /// Jobs that finished with an error.
    pub failed: u64,
    /// Terminal outcomes that settled after the job's absolute deadline.
    /// Deadline-free jobs (all throughput jobs, and latency jobs submitted
    /// without one) can never miss.
    pub deadline_miss: u64,
}

/// Summary of one service run — a `run_pending` drain or a full
/// streaming-pool lifetime (start → drain/abort).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Jobs executed in this run.
    pub jobs: usize,
    /// Jobs that completed successfully.
    pub completed: usize,
    /// Jobs that finished with an error.
    pub failed: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Jobs an idle worker stole from a busy worker's deque. Always 0 for
    /// streaming runs: the streaming pool pulls from one shared fair
    /// scheduler, so there are no per-worker deques to steal from (kept for
    /// compatibility with the one-shot [`Runtime::run_all_detailed`] path).
    ///
    /// [`Runtime::run_all_detailed`]: qml_runtime::Runtime::run_all_detailed
    pub stolen: usize,
    /// Wall-clock duration of the run, in seconds.
    pub wall_seconds: f64,
    /// Throughput of the run: jobs per wall-clock second.
    pub jobs_per_second: f64,
}

/// A point-in-time snapshot of service health.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ServiceMetrics {
    /// Jobs accepted since the service started.
    pub jobs_submitted: u64,
    /// Jobs completed successfully since the service started.
    pub jobs_completed: u64,
    /// Jobs that finished with an error since the service started.
    pub jobs_failed: u64,
    /// Jobs currently waiting to execute.
    pub queue_depth: usize,
    /// Combined transpilation/lowering cache counters.
    pub cache: CacheStats,
    /// Gate-path (transpilation) cache counters.
    pub gate_cache: CacheStats,
    /// Annealing-path (lowering) cache counters.
    pub anneal_cache: CacheStats,
    /// Fair-scheduler counters (rounds, dispatches, throttles, cap skips).
    pub scheduler: SchedulerMetrics,
    /// Execution totals per backend name.
    pub per_backend: BTreeMap<String, BackendUtilization>,
    /// Fleet gauges per device id (health, dispatch/failover counters,
    /// busy-seconds, queue depth). Summing one plane's device busy-seconds
    /// reproduces that plane's [`BackendUtilization::busy_seconds`]. Absent
    /// from pre-fleet snapshots, hence the default.
    #[serde(default)]
    pub per_device: BTreeMap<String, DeviceUtilization>,
    /// Queue/dispatch/outcome totals per service class (`"latency"`,
    /// `"throughput"`), including deadline misses. Absent from pre-class
    /// snapshots, hence the default.
    #[serde(default)]
    pub per_class: BTreeMap<String, ClassStats>,
    /// Submission totals per tenant.
    pub per_tenant: BTreeMap<String, TenantStats>,
    /// Summary of the most recent `run_pending` drain.
    pub last_run: Option<RunSummary>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_serialize() {
        let mut metrics = ServiceMetrics::default();
        metrics.per_backend.insert(
            "qml-gate-simulator".into(),
            BackendUtilization {
                jobs: 4,
                busy_seconds: 0.25,
            },
        );
        let json = serde_json::to_string(&metrics).unwrap();
        let back: ServiceMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, metrics);
    }
}
