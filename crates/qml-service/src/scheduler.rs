//! Per-tenant fair scheduling: deficit round robin over cost-ranked queues.
//!
//! The service's streaming loop must not let one tenant's 1000-point sweep
//! starve another tenant's single job. The classic answer is **deficit round
//! robin** (DRR): each tenant owns a queue; the scheduler visits tenants in
//! rotation, crediting each visited tenant `weight × quantum` of "deficit"
//! (budget, in descriptor-cost units) and dispatching that tenant's head job
//! only once the accumulated deficit covers the job's estimated cost. Heavy
//! jobs therefore consume proportionally more turns, and a tenant with
//! double the weight gets double the cost-throughput under contention —
//! while an uncontended tenant still uses the whole pool.
//!
//! Layered on the DRR core, per [`TenantPolicy`]:
//!
//! * **weight** — the tenant's share of dispatch budget under contention;
//! * **max in-flight** — a cap on the tenant's concurrently executing jobs,
//!   so a wide pool cannot be monopolized even between scheduler rounds;
//! * **token-bucket rate limit** — sustained jobs/second plus a burst
//!   allowance, enforced while the service is live (a graceful
//!   [`drain`](crate::ServiceHandle::drain) ignores rate limits so shutdown
//!   terminates even for throttled tenants; weights and in-flight caps keep
//!   applying).
//!
//! Within one tenant, jobs are kept cost-ranked (longest first): the same
//! LPT heuristic the one-shot pool used, now applied per tenant so it can
//! no longer leak across tenant boundaries.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use qml_runtime::{JobDispatch, JobId, Placement};

/// Smallest effective DRR weight; keeps the pass bound finite for
/// pathological configurations (weight ≤ 0).
const MIN_WEIGHT: f64 = 1e-3;

/// Floor applied to every admitted job's cost estimate. A job whose
/// placement failed (or whose descriptors carry no cost hints) estimates
/// 0.0 — and a zero-cost job spends **zero deficit**, so one tenant's
/// hint-less queue would drain entirely in a single parked visit, the exact
/// monopoly DRR exists to prevent. Flooring at the quantum's own base unit
/// (1.0, see [`FairScheduler::quantum`]) makes a hint-less job cost exactly
/// one visit's budget.
pub(crate) const MIN_JOB_COST: f64 = 1.0;

/// How many queued jobs (beyond the head) one dispatch may inspect while
/// coalescing a micro-batch. Same-plan jobs share a cost estimate and the
/// queue is cost-ranked, so compatible jobs sit contiguously near the head;
/// the window only bounds the pathological interleaved case, which runs
/// under the scheduler lock every worker contends on.
const MAX_BATCH_SCAN: usize = 64;

/// Upper bound on DRR passes per dispatch attempt. With the quantum equal
/// to the largest currently queued head cost, any head job becomes
/// dispatchable within `1 / weight ≤ 1 / MIN_WEIGHT` visits, so this is
/// never hit by a finite configuration; it is a defensive backstop, not a
/// tuning knob.
const MAX_PASSES: usize = 1024;

/// A token-bucket rate limit on one tenant's dispatches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateLimit {
    /// Sustained dispatch rate, in jobs per second. `0.0` means "burst
    /// only": the tenant may dispatch up to `burst` jobs and is then
    /// throttled until the next drain.
    pub jobs_per_second: f64,
    /// Bucket capacity: how many dispatches may happen back-to-back before
    /// the sustained rate applies. Dispatching costs one whole token, so
    /// values below 1.0 are treated as 1.0 (a bucket that can never reach a
    /// full token would starve the tenant outright).
    pub burst: f64,
}

impl RateLimit {
    /// A limit of `jobs_per_second` with a burst allowance of the same size
    /// (at least one job).
    pub fn per_second(jobs_per_second: f64) -> Self {
        RateLimit {
            jobs_per_second,
            burst: jobs_per_second.max(1.0),
        }
    }

    /// Replace the burst allowance, builder-style.
    pub fn with_burst(mut self, burst: f64) -> Self {
        self.burst = burst;
        self
    }

    /// The bucket capacity actually enforced (see [`RateLimit::burst`]).
    fn effective_burst(&self) -> f64 {
        self.burst.max(1.0)
    }
}

/// Scheduling policy applied to one tenant (or, via
/// [`ServiceConfig::default_policy`](crate::ServiceConfig), to every tenant
/// without an explicit one).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantPolicy {
    /// Relative share of dispatch budget under contention. A weight-2 tenant
    /// receives twice the cost-throughput of a weight-1 tenant while both
    /// have work queued. Values ≤ 0 are clamped to a small epsilon.
    pub weight: f64,
    /// Maximum number of this tenant's jobs executing concurrently
    /// (`None` = unlimited). A configured cap of 0 is treated as 1.
    pub max_in_flight: Option<usize>,
    /// Token-bucket rate limit (`None` = unlimited).
    pub rate_limit: Option<RateLimit>,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            weight: 1.0,
            max_in_flight: None,
            rate_limit: None,
        }
    }
}

impl TenantPolicy {
    /// Set the DRR weight, builder-style.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Cap the tenant's concurrently executing jobs, builder-style.
    pub fn with_max_in_flight(mut self, max: usize) -> Self {
        self.max_in_flight = Some(max);
        self
    }

    /// Attach a token-bucket rate limit, builder-style.
    pub fn with_rate_limit(mut self, limit: RateLimit) -> Self {
        self.rate_limit = Some(limit);
        self
    }
}

/// Fairness counters for the scheduler as a whole, surfaced through
/// [`ServiceMetrics`](crate::ServiceMetrics).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SchedulerMetrics {
    /// Dispatch attempts (each worker call that scanned the tenant rotation).
    pub rounds: u64,
    /// Jobs handed to workers.
    pub dispatched: u64,
    /// Tenant visits skipped because the tenant's token bucket was empty.
    pub throttled: u64,
    /// Tenant visits skipped because the tenant was at its in-flight cap.
    pub capped: u64,
    /// Scans that found nothing dispatchable (the caller backed off).
    pub idle_polls: u64,
    /// Micro-batches formed: dispatches that coalesced ≥ 2 plan-compatible
    /// jobs into one device-level `execute_batch` call.
    #[serde(default)]
    pub batches: u64,
    /// Jobs dispatched as members of a micro-batch (heads included).
    /// `dispatched - batched_jobs` is the solo-dispatch count.
    #[serde(default)]
    pub batched_jobs: u64,
}

impl SchedulerMetrics {
    /// Mean number of jobs per formed micro-batch (0.0 before any batch).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_jobs as f64 / self.batches as f64
        }
    }

    /// Jobs dispatched solo (not part of any micro-batch).
    pub fn solo_jobs(&self) -> u64 {
        self.dispatched.saturating_sub(self.batched_jobs)
    }
}

/// Live per-tenant gauges owned by the scheduler, merged into
/// [`TenantStats`](crate::TenantStats) snapshots.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct TenantGauges {
    pub dispatched: u64,
    pub in_flight: u64,
    pub throttled: u64,
    pub total_wait_seconds: f64,
}

/// One admitted, not-yet-dispatched job.
#[derive(Debug, Clone)]
struct QueuedJob {
    id: JobId,
    /// The estimated cost of `placement` at admission, floored at
    /// [`MIN_JOB_COST`] (placement failures estimate 0.0 before the floor;
    /// such jobs still dispatch and fail at execution).
    cost: f64,
    /// The placement computed at admission, handed to the worker so the
    /// bundle is not placed a second time at execution.
    placement: Option<Placement>,
    /// Device-level batching key ([`qml_backends::Backend::batch_key`] folded
    /// with the backend identity): queued jobs of one tenant sharing a key
    /// may be coalesced into a single dispatch. `None` never coalesces.
    batch_key: Option<u64>,
    submitted: Instant,
}

/// One tenant's queue plus its DRR/rate-limit state.
#[derive(Debug)]
struct TenantQueue {
    policy: TenantPolicy,
    /// Cost-ranked (descending) pending jobs; FIFO among equal costs.
    queue: VecDeque<QueuedJob>,
    /// DRR deficit counter, in cost units.
    deficit: f64,
    /// Token bucket fill (only meaningful with a rate limit).
    tokens: f64,
    last_refill: Instant,
    in_flight: usize,
    dispatched: u64,
    throttled: u64,
    total_wait_seconds: f64,
}

impl TenantQueue {
    fn new(policy: TenantPolicy, now: Instant) -> Self {
        let tokens = policy
            .rate_limit
            .map(|l| l.effective_burst())
            .unwrap_or(0.0);
        TenantQueue {
            policy,
            queue: VecDeque::new(),
            deficit: 0.0,
            tokens,
            last_refill: now,
            in_flight: 0,
            dispatched: 0,
            throttled: 0,
            total_wait_seconds: 0.0,
        }
    }

    fn refill(&mut self, now: Instant) {
        if let Some(limit) = self.policy.rate_limit {
            let elapsed = now.duration_since(self.last_refill).as_secs_f64();
            self.tokens =
                (self.tokens + elapsed * limit.jobs_per_second).min(limit.effective_burst());
            self.last_refill = now;
        }
    }
}

/// Lifecycle phase of the streaming loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// No pool is attached; nothing dispatches.
    Stopped,
    /// Live: dispatch under full policy enforcement.
    Running,
    /// Graceful shutdown: keep dispatching (rate limits waived) until every
    /// queue is empty and nothing is in flight, then stop the pool.
    Draining,
    /// Hard stop: dispatch nothing further; workers exit at the next job
    /// boundary and undispatched jobs stay queued for a later restart.
    Aborting,
}

/// The scheduler's answer to a worker asking for work (the service adapts
/// this to [`qml_runtime::Feed`]).
#[derive(Debug, Clone)]
pub(crate) enum SchedPoll {
    Dispatch(JobDispatch),
    Idle,
    Shutdown,
}

/// Deficit-round-robin scheduler state shared by all pool workers.
#[derive(Debug)]
pub(crate) struct FairScheduler {
    pub(crate) mode: Mode,
    /// Largest number of plan-compatible jobs one dispatch may coalesce
    /// (1 disables micro-batching).
    max_batch: usize,
    tenants: BTreeMap<Arc<str>, TenantQueue>,
    /// Visit order; tenants are appended on first admission and never
    /// removed (an empty queue is skipped in O(1)).
    rotation: Vec<Arc<str>>,
    cursor: usize,
    /// True once the tenant at `cursor` has received its arrival credit for
    /// the current pointer visit; cleared whenever the pointer advances.
    /// This is what lets one visit span several `next_job` calls (a heavy
    /// tenant serves its whole quantum) without re-crediting per call.
    credited: bool,
    /// Dispatched-but-unfinished jobs, for in-flight accounting.
    in_flight: BTreeMap<JobId, Arc<str>>,
    pub(crate) metrics: SchedulerMetrics,
}

impl FairScheduler {
    pub(crate) fn new(max_batch: usize) -> Self {
        FairScheduler {
            mode: Mode::Stopped,
            max_batch: max_batch.max(1),
            tenants: BTreeMap::new(),
            rotation: Vec::new(),
            cursor: 0,
            credited: false,
            in_flight: BTreeMap::new(),
            metrics: SchedulerMetrics::default(),
        }
    }

    /// Intern a tenant name, creating its queue (under `policy`) on first
    /// sight. Returns the shared id so the caller can deduplicate its own
    /// tenant-name storage.
    pub(crate) fn intern(&mut self, tenant: &str, policy: &TenantPolicy) -> Arc<str> {
        if let Some((name, _)) = self.tenants.get_key_value(tenant) {
            return Arc::clone(name);
        }
        let name: Arc<str> = Arc::from(tenant);
        self.tenants.insert(
            Arc::clone(&name),
            TenantQueue::new(policy.clone(), Instant::now()),
        );
        self.rotation.push(Arc::clone(&name));
        name
    }

    /// Admit one job into its tenant's queue, keeping the queue cost-ranked
    /// (descending; FIFO among equal costs — the per-tenant LPT order). The
    /// cost is floored at [`MIN_JOB_COST`] so zero-cost estimates (failed
    /// placements, hint-less descriptors) still spend DRR deficit — a
    /// zero-cost queue must not drain in a single parked visit.
    pub(crate) fn admit(
        &mut self,
        tenant: &Arc<str>,
        id: JobId,
        cost: f64,
        placement: Option<Placement>,
        batch_key: Option<u64>,
    ) {
        let queue = self
            .tenants
            .get_mut(tenant)
            .expect("tenant interned before admission");
        let cost = cost.max(MIN_JOB_COST);
        let job = QueuedJob {
            id,
            cost,
            placement,
            batch_key,
            submitted: Instant::now(),
        };
        // Binary search: the queue is kept sorted by cost descending, and
        // partition_point places equal costs after their peers (stable FIFO),
        // so admitting an N-point sweep costs O(N log N) comparisons instead
        // of O(N^2) — this runs under the scheduler lock workers contend on.
        let at = queue.queue.partition_point(|q| q.cost >= cost);
        queue.queue.insert(at, job);
    }

    /// Release the in-flight slot of a finished (or skipped) job.
    pub(crate) fn release(&mut self, id: JobId) {
        if let Some(name) = self.in_flight.remove(&id) {
            if let Some(tenant) = self.tenants.get_mut(&name) {
                tenant.in_flight = tenant.in_flight.saturating_sub(1);
            }
        }
    }

    /// Jobs admitted but not yet dispatched.
    pub(crate) fn queued(&self) -> usize {
        self.tenants.values().map(|t| t.queue.len()).sum()
    }

    /// Jobs dispatched but not yet finished.
    pub(crate) fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Snapshot the per-tenant gauges for a metrics merge.
    pub(crate) fn gauges(&self) -> Vec<(Arc<str>, TenantGauges)> {
        self.tenants
            .iter()
            .map(|(name, t)| {
                (
                    Arc::clone(name),
                    TenantGauges {
                        dispatched: t.dispatched,
                        in_flight: t.in_flight as u64,
                        throttled: t.throttled,
                        total_wait_seconds: t.total_wait_seconds,
                    },
                )
            })
            .collect()
    }

    /// Advance the rotation pointer, clearing the arrival credit.
    fn advance(&mut self) {
        let n = self.rotation.len().max(1);
        self.cursor = (self.cursor + 1) % n;
        self.credited = false;
    }

    /// The DRR quantum: the largest *currently queued* head cost (each
    /// tenant's head is its most expensive pending job, so this is the max
    /// over all queued jobs). Recomputed per dispatch attempt rather than
    /// kept as a high-water mark: a historically expensive job must not
    /// permanently inflate every tenant's per-visit budget, or a whale with
    /// many cheap jobs could serve `old_max_cost` jobs per visit and starve
    /// small tenants — the exact failure mode this module exists to prevent.
    fn quantum(&self) -> f64 {
        self.tenants
            .values()
            .filter_map(|t| t.queue.front())
            .map(|job| job.cost)
            .fold(1.0, f64::max)
    }

    /// One DRR dispatch attempt, shared by every pool worker.
    ///
    /// The pointer parks on one tenant at a time. On *arrival* the tenant is
    /// credited `weight × quantum` of deficit, once; the pointer then stays
    /// parked while successive calls dispatch that tenant's jobs, each
    /// spending its estimated cost from the deficit — so a weight-3 tenant
    /// serves three times the cost of a weight-1 tenant per rotation. The
    /// pointer advances when the tenant's remaining deficit no longer covers
    /// its head job (the deficit is *kept*, classic DRR, so heavy jobs
    /// eventually accumulate enough turns) or when the tenant is vetoed —
    /// empty queue, in-flight cap, or an empty token bucket (the deficit is
    /// *reset*: a non-competing tenant must not bank budget for later
    /// bursts).
    ///
    /// A full cycle of vetoes means nothing is dispatchable:
    /// [`SchedPoll::Idle`] — or [`SchedPoll::Shutdown`] once a drain has
    /// emptied every queue with nothing left in flight. Cycles containing a
    /// deficit-blocked tenant repeat (each arrival strictly grows that
    /// deficit, so the loop terminates within `1/weight` cycles).
    pub(crate) fn next_job(&mut self, now: Instant) -> SchedPoll {
        self.metrics.rounds += 1;
        match self.mode {
            Mode::Stopped | Mode::Aborting => return SchedPoll::Shutdown,
            Mode::Running | Mode::Draining => {}
        }
        let drain = self.mode == Mode::Draining;
        let n = self.rotation.len();
        let quantum = self.quantum();
        let mut consecutive_vetoes = 0usize;
        for _visit in 0..n.saturating_mul(MAX_PASSES) {
            let name = Arc::clone(&self.rotation[self.cursor]);
            let tenant = self.tenants.get_mut(&name).expect("rotation entry exists");
            // Veto checks: a vetoed tenant is not competing this round.
            let vetoed = if tenant.queue.is_empty() {
                true
            } else if tenant
                .policy
                .max_in_flight
                .is_some_and(|cap| tenant.in_flight >= cap.max(1))
            {
                self.metrics.capped += 1;
                true
            } else if !drain && tenant.policy.rate_limit.is_some() {
                tenant.refill(now);
                if tenant.tokens < 1.0 {
                    tenant.throttled += 1;
                    self.metrics.throttled += 1;
                    true
                } else {
                    false
                }
            } else {
                false
            };
            if vetoed {
                tenant.deficit = 0.0;
                consecutive_vetoes += 1;
                if consecutive_vetoes >= n {
                    break;
                }
                self.advance();
                continue;
            }
            consecutive_vetoes = 0;
            if !self.credited {
                tenant.deficit += tenant.policy.weight.max(MIN_WEIGHT) * quantum;
                self.credited = true;
            }
            let head_cost = tenant.queue.front().expect("non-empty queue").cost;
            if tenant.deficit < head_cost {
                // Blocked by deficit: keep it and move on; the next arrival
                // credits more.
                self.advance();
                continue;
            }
            let job = tenant.queue.pop_front().expect("non-empty queue");
            tenant.deficit -= job.cost;
            if !drain && tenant.policy.rate_limit.is_some() {
                tenant.tokens -= 1.0;
            }
            tenant.in_flight += 1;
            tenant.dispatched += 1;
            tenant.total_wait_seconds += now.duration_since(job.submitted).as_secs_f64();
            self.metrics.dispatched += 1;
            self.in_flight.insert(job.id, Arc::clone(&name));
            let rest = self.coalesce(&name, &job, now, drain);
            let tenant = self.tenants.get_mut(&name).expect("rotation entry exists");
            if tenant.queue.is_empty() {
                tenant.deficit = 0.0;
            }
            return SchedPoll::Dispatch(JobDispatch {
                id: job.id,
                rest,
                placement: job.placement,
            });
        }
        if drain && self.queued() == 0 && self.in_flight.is_empty() {
            return SchedPoll::Shutdown;
        }
        self.metrics.idle_polls += 1;
        SchedPoll::Idle
    }

    /// Opportunistically extend a just-dispatched head job into a
    /// **micro-batch**: pop further queued jobs of the same tenant that share
    /// the head's batch key (same backend, same realization plan), spending
    /// deficit and rate-limit tokens and taking in-flight slots **per
    /// member**, exactly as solo dispatches would — fairness accounting is
    /// unchanged; the batch merely rides one worker round-trip and one
    /// device-level `execute_batch` call.
    ///
    /// Under contention (any other tenant has queued work) a member is only
    /// taken while the tenant's remaining deficit covers its cost, so DRR
    /// weights keep their exact meaning: a weight-3 tenant coalesces up to
    /// three cost units per visit where a weight-1 tenant dispatches solo.
    /// An **uncontended** tenant batches up to `max_batch` regardless of
    /// deficit — there is nobody to be fair to — with the deficit clamped at
    /// zero so no debt leaks into the next contended period.
    fn coalesce(
        &mut self,
        name: &Arc<str>,
        head: &QueuedJob,
        now: Instant,
        drain: bool,
    ) -> Vec<JobId> {
        let mut rest = Vec::new();
        let Some(key) = head.batch_key else {
            return rest;
        };
        if self.max_batch <= 1 {
            return rest;
        }
        let contended = self
            .tenants
            .iter()
            .any(|(other, t)| !Arc::ptr_eq(other, name) && !t.queue.is_empty());
        let tenant = self.tenants.get_mut(name).expect("tenant exists");
        let mut idx = 0usize;
        let mut scanned = 0usize;
        while rest.len() + 1 < self.max_batch
            && idx < tenant.queue.len()
            && scanned < MAX_BATCH_SCAN
        {
            scanned += 1;
            if tenant.queue[idx].batch_key != Some(key) {
                idx += 1;
                continue;
            }
            if contended && tenant.deficit < tenant.queue[idx].cost {
                break;
            }
            if tenant
                .policy
                .max_in_flight
                .is_some_and(|cap| tenant.in_flight >= cap.max(1))
            {
                break;
            }
            if !drain && tenant.policy.rate_limit.is_some() {
                tenant.refill(now);
                if tenant.tokens < 1.0 {
                    break;
                }
                tenant.tokens -= 1.0;
            }
            let member = tenant.queue.remove(idx).expect("index in bounds");
            tenant.deficit -= member.cost;
            if !contended {
                tenant.deficit = tenant.deficit.max(0.0);
            }
            tenant.in_flight += 1;
            tenant.dispatched += 1;
            tenant.total_wait_seconds += now.duration_since(member.submitted).as_secs_f64();
            self.metrics.dispatched += 1;
            self.in_flight.insert(member.id, Arc::clone(name));
            rest.push(member.id);
        }
        if !rest.is_empty() {
            self.metrics.batches += 1;
            self.metrics.batched_jobs += rest.len() as u64 + 1;
        }
        rest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched_with(policies: &[(&str, TenantPolicy)]) -> (FairScheduler, Vec<Arc<str>>) {
        let mut sched = FairScheduler::new(8);
        sched.mode = Mode::Running;
        let names = policies
            .iter()
            .map(|(name, policy)| sched.intern(name, policy))
            .collect();
        (sched, names)
    }

    #[test]
    fn interning_deduplicates_names() {
        let (mut sched, names) = sched_with(&[("alice", TenantPolicy::default())]);
        let again = sched.intern("alice", &TenantPolicy::default());
        assert!(Arc::ptr_eq(&names[0], &again));
    }

    #[test]
    fn round_robin_alternates_between_equal_tenants() {
        let (mut sched, names) = sched_with(&[
            ("a", TenantPolicy::default()),
            ("b", TenantPolicy::default()),
        ]);
        // a gets jobs 0..4, b gets 10..14, all equal cost.
        for i in 0..4 {
            sched.admit(&names[0], JobId(i), 1.0, None, None);
            sched.admit(&names[1], JobId(10 + i), 1.0, None, None);
        }
        let now = Instant::now();
        let mut order = Vec::new();
        while let SchedPoll::Dispatch(dispatch) = sched.next_job(now) {
            sched.release(dispatch.id);
            order.push(dispatch.id.0 / 10); // 0 = tenant a, 1 = tenant b
        }
        // Strict alternation: no tenant dispatches twice in a row while the
        // other has work.
        for pair in order.windows(2) {
            assert_ne!(pair[0], pair[1], "alternation broken: {order:?}");
        }
        assert_eq!(order.len(), 8);
    }

    #[test]
    fn single_job_tenant_preempts_a_long_sweep() {
        let (mut sched, names) = sched_with(&[
            ("whale", TenantPolicy::default()),
            ("minnow", TenantPolicy::default()),
        ]);
        for i in 0..100 {
            sched.admit(&names[0], JobId(i), 5.0, None, None);
        }
        sched.admit(&names[1], JobId(1000), 5.0, None, None);
        let now = Instant::now();
        let mut dispatched_before_minnow = 0;
        loop {
            match sched.next_job(now) {
                SchedPoll::Dispatch(JobDispatch {
                    id: JobId(1000), ..
                }) => break,
                SchedPoll::Dispatch(dispatch) => {
                    sched.release(dispatch.id);
                    dispatched_before_minnow += 1;
                }
                other => panic!("unexpected poll {other:?}"),
            }
        }
        assert!(
            dispatched_before_minnow <= 2,
            "minnow waited behind {dispatched_before_minnow} whale jobs"
        );
    }

    #[test]
    fn weights_bias_the_dispatch_ratio() {
        let (mut sched, names) = sched_with(&[
            ("heavy", TenantPolicy::default().with_weight(3.0)),
            ("light", TenantPolicy::default()),
        ]);
        for i in 0..60 {
            sched.admit(&names[0], JobId(i), 1.0, None, None);
            sched.admit(&names[1], JobId(100 + i), 1.0, None, None);
        }
        let now = Instant::now();
        let mut heavy_in_first_40 = 0;
        for _ in 0..40 {
            match sched.next_job(now) {
                SchedPoll::Dispatch(dispatch) => {
                    sched.release(dispatch.id);
                    if dispatch.id.0 < 100 {
                        heavy_in_first_40 += 1;
                    }
                }
                other => panic!("unexpected poll {other:?}"),
            }
        }
        // 3:1 weights → roughly 30 of the first 40 dispatches are heavy's.
        assert!(
            (25..=35).contains(&heavy_in_first_40),
            "expected ~30 heavy dispatches, got {heavy_in_first_40}"
        );
    }

    #[test]
    fn in_flight_cap_blocks_further_dispatches() {
        let (mut sched, names) =
            sched_with(&[("capped", TenantPolicy::default().with_max_in_flight(1))]);
        sched.admit(&names[0], JobId(0), 1.0, None, None);
        sched.admit(&names[0], JobId(1), 1.0, None, None);
        let now = Instant::now();
        let SchedPoll::Dispatch(first) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        assert!(
            matches!(sched.next_job(now), SchedPoll::Idle),
            "cap of 1 respected"
        );
        assert!(sched.metrics.capped > 0);
        sched.release(first.id);
        assert!(matches!(sched.next_job(now), SchedPoll::Dispatch(_)));
    }

    #[test]
    fn burst_only_rate_limit_throttles_after_burst() {
        let (mut sched, names) = sched_with(&[(
            "limited",
            TenantPolicy::default().with_rate_limit(RateLimit {
                jobs_per_second: 0.0,
                burst: 2.0,
            }),
        )]);
        for i in 0..5 {
            sched.admit(&names[0], JobId(i), 1.0, None, None);
        }
        let now = Instant::now();
        for _ in 0..2 {
            let SchedPoll::Dispatch(dispatch) = sched.next_job(now) else {
                panic!("burst tokens should dispatch");
            };
            sched.release(dispatch.id);
        }
        assert!(matches!(sched.next_job(now), SchedPoll::Idle));
        assert!(sched.metrics.throttled > 0);
        // A drain waives the rate limit so shutdown terminates.
        sched.mode = Mode::Draining;
        assert!(matches!(sched.next_job(now), SchedPoll::Dispatch(_)));
    }

    #[test]
    fn drain_shuts_down_only_when_empty_and_nothing_in_flight() {
        let (mut sched, names) = sched_with(&[("t", TenantPolicy::default())]);
        sched.admit(&names[0], JobId(0), 1.0, None, None);
        sched.mode = Mode::Draining;
        let now = Instant::now();
        let SchedPoll::Dispatch(dispatch) = sched.next_job(now) else {
            panic!("drain dispatches pending work");
        };
        // Still in flight: other workers idle rather than exit.
        assert!(matches!(sched.next_job(now), SchedPoll::Idle));
        sched.release(dispatch.id);
        assert!(matches!(sched.next_job(now), SchedPoll::Shutdown));
    }

    #[test]
    fn abort_stops_dispatching_immediately() {
        let (mut sched, names) = sched_with(&[("t", TenantPolicy::default())]);
        sched.admit(&names[0], JobId(0), 1.0, None, None);
        sched.mode = Mode::Aborting;
        assert!(matches!(
            sched.next_job(Instant::now()),
            SchedPoll::Shutdown
        ));
        assert_eq!(sched.queued(), 1, "aborted work stays queued");
    }

    #[test]
    fn historical_expensive_job_does_not_inflate_the_quantum() {
        // A cost-500 job once existed and was dispatched long ago. Later a
        // whale queues many cost-1 jobs and a minnow queues one: the quantum
        // must reflect the *current* queues (1.0), so the whale serves ~one
        // job per visit and the minnow still preempts within a couple of
        // dispatches — a stale high-water quantum would let the whale serve
        // hundreds per visit.
        let (mut sched, names) = sched_with(&[
            ("whale", TenantPolicy::default()),
            ("minnow", TenantPolicy::default()),
        ]);
        let now = Instant::now();
        sched.admit(&names[0], JobId(9999), 500.0, None, None);
        let SchedPoll::Dispatch(big) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        sched.release(big.id);

        for i in 0..300 {
            sched.admit(&names[0], JobId(i), 1.0, None, None);
        }
        sched.admit(&names[1], JobId(1000), 1.0, None, None);
        let mut whale_before_minnow = 0;
        loop {
            match sched.next_job(now) {
                SchedPoll::Dispatch(JobDispatch {
                    id: JobId(1000), ..
                }) => break,
                SchedPoll::Dispatch(dispatch) => {
                    sched.release(dispatch.id);
                    whale_before_minnow += 1;
                }
                other => panic!("unexpected poll {other:?}"),
            }
        }
        assert!(
            whale_before_minnow <= 2,
            "stale quantum: {whale_before_minnow} whale jobs before the minnow"
        );
    }

    #[test]
    fn zero_cost_jobs_still_spend_deficit_no_monopoly() {
        // Regression: hint-less bundles (and failed placements) admit with a
        // 0.0 cost estimate. Before the MIN_JOB_COST floor such jobs spent
        // zero deficit, so the first-visited tenant's queue drained entirely
        // in one parked visit — the exact monopoly DRR exists to prevent.
        // With the floor, dispatch order interleaves strictly.
        let (mut sched, names) = sched_with(&[
            ("hintless", TenantPolicy::default()),
            ("normal", TenantPolicy::default()),
        ]);
        for i in 0..6 {
            sched.admit(&names[0], JobId(i), 0.0, None, None);
            sched.admit(&names[1], JobId(100 + i), 1.0, None, None);
        }
        let now = Instant::now();
        let mut order = Vec::new();
        while let SchedPoll::Dispatch(dispatch) = sched.next_job(now) {
            sched.release(dispatch.id);
            order.push(dispatch.id.0 / 100); // 0 = hintless, 1 = normal
        }
        assert_eq!(order.len(), 12);
        for pair in order.windows(2) {
            assert_ne!(
                pair[0], pair[1],
                "hint-less tenant monopolized the rotation: {order:?}"
            );
        }
    }

    #[test]
    fn uncontended_tenant_coalesces_up_to_max_batch() {
        // A solo tenant has nobody to be fair to: plan-compatible jobs
        // coalesce into micro-batches of max_batch regardless of deficit.
        let (mut sched, names) = sched_with(&[("solo", TenantPolicy::default())]);
        for i in 0..10 {
            sched.admit(&names[0], JobId(i), 1.0, None, Some(42));
        }
        let now = Instant::now();
        let SchedPoll::Dispatch(first) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        assert_eq!(first.len(), 8, "uncontended batches to the cap");
        assert_eq!(
            first.ids().collect::<Vec<_>>(),
            (0..8).map(JobId).collect::<Vec<_>>(),
            "members coalesce in queue order"
        );
        for id in first.ids() {
            sched.release(id);
        }
        let SchedPoll::Dispatch(second) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        assert_eq!(second.len(), 2, "the remainder forms the next batch");
        assert_eq!(sched.metrics.batches, 2);
        assert_eq!(sched.metrics.batched_jobs, 10);
        assert_eq!(sched.metrics.dispatched, 10, "accounting is per member");
        assert!((sched.metrics.mean_batch_size() - 5.0).abs() < 1e-12);
        assert_eq!(sched.metrics.solo_jobs(), 0);
    }

    #[test]
    fn contended_batches_stay_within_the_drr_budget() {
        // Under contention a batch may only spend the deficit its tenant was
        // credited: weight 3 affords three equal-cost members per visit,
        // weight 1 dispatches solo — the ratio weights promise is untouched.
        let (mut sched, names) = sched_with(&[
            ("heavy", TenantPolicy::default().with_weight(3.0)),
            ("light", TenantPolicy::default()),
        ]);
        for i in 0..9 {
            sched.admit(&names[0], JobId(i), 1.0, None, Some(1));
        }
        for i in 0..3 {
            sched.admit(&names[1], JobId(100 + i), 1.0, None, Some(2));
        }
        let now = Instant::now();
        let SchedPoll::Dispatch(heavy) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        assert_eq!(heavy.len(), 3, "weight-3 budget covers three members");
        heavy.ids().for_each(|id| sched.release(id));
        let SchedPoll::Dispatch(light) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        assert_eq!(light.len(), 1, "weight-1 tenant dispatches solo");
        sched.release(light.id);
    }

    #[test]
    fn different_batch_keys_never_coalesce() {
        let (mut sched, names) = sched_with(&[("t", TenantPolicy::default())]);
        sched.admit(&names[0], JobId(0), 1.0, None, Some(7));
        sched.admit(&names[0], JobId(1), 1.0, None, Some(8));
        sched.admit(&names[0], JobId(2), 1.0, None, Some(7));
        let now = Instant::now();
        let SchedPoll::Dispatch(first) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        // Key 7 members coalesce across the interleaved key-8 job...
        assert_eq!(first.ids().collect::<Vec<_>>(), vec![JobId(0), JobId(2)]);
        first.ids().for_each(|id| sched.release(id));
        // ...which then dispatches alone.
        let SchedPoll::Dispatch(second) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        assert_eq!(second.ids().collect::<Vec<_>>(), vec![JobId(1)]);
    }

    #[test]
    fn rate_limited_batches_spend_one_token_per_member() {
        let (mut sched, names) = sched_with(&[(
            "limited",
            TenantPolicy::default().with_rate_limit(RateLimit {
                jobs_per_second: 0.0,
                burst: 3.0,
            }),
        )]);
        for i in 0..6 {
            sched.admit(&names[0], JobId(i), 1.0, None, Some(5));
        }
        let now = Instant::now();
        let SchedPoll::Dispatch(burst) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        assert_eq!(burst.len(), 3, "the batch stops at the token budget");
        assert!(matches!(sched.next_job(now), SchedPoll::Idle));
    }

    #[test]
    fn capped_tenant_batches_stop_at_the_in_flight_cap() {
        let (mut sched, names) =
            sched_with(&[("capped", TenantPolicy::default().with_max_in_flight(2))]);
        for i in 0..6 {
            sched.admit(&names[0], JobId(i), 1.0, None, Some(5));
        }
        let now = Instant::now();
        let SchedPoll::Dispatch(first) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        assert_eq!(first.len(), 2, "cap of 2 bounds the batch");
        assert!(matches!(sched.next_job(now), SchedPoll::Idle));
        first.ids().for_each(|id| sched.release(id));
        assert!(matches!(sched.next_job(now), SchedPoll::Dispatch(_)));
    }

    #[test]
    fn cost_ranked_within_a_tenant() {
        let (mut sched, names) = sched_with(&[("t", TenantPolicy::default())]);
        sched.admit(&names[0], JobId(0), 1.0, None, None);
        sched.admit(&names[0], JobId(1), 9.0, None, None);
        sched.admit(&names[0], JobId(2), 4.0, None, None);
        let now = Instant::now();
        let mut order = Vec::new();
        while let SchedPoll::Dispatch(dispatch) = sched.next_job(now) {
            sched.release(dispatch.id);
            order.push(dispatch.id.0);
        }
        assert_eq!(order, vec![1, 2, 0], "longest-first within the tenant");
    }
}
