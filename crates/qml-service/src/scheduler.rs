//! Per-tenant fair scheduling: deficit round robin over cost-ranked queues.
//!
//! The service's streaming loop must not let one tenant's 1000-point sweep
//! starve another tenant's single job. The classic answer is **deficit round
//! robin** (DRR): each tenant owns a queue; the scheduler visits tenants in
//! rotation, crediting each visited tenant `weight × quantum` of "deficit"
//! (budget, in descriptor-cost units) and dispatching that tenant's head job
//! only once the accumulated deficit covers the job's estimated cost. Heavy
//! jobs therefore consume proportionally more turns, and a tenant with
//! double the weight gets double the cost-throughput under contention —
//! while an uncontended tenant still uses the whole pool.
//!
//! Layered on the DRR core, per [`TenantPolicy`]:
//!
//! * **weight** — the tenant's share of dispatch budget under contention;
//! * **max in-flight** — a cap on the tenant's concurrently executing jobs,
//!   so a wide pool cannot be monopolized even between scheduler rounds;
//! * **token-bucket rate limit** — sustained jobs/second plus a burst
//!   allowance, enforced while the service is live (a graceful
//!   [`drain`](crate::ServiceHandle::drain) ignores rate limits so shutdown
//!   terminates even for throttled tenants; weights and in-flight caps keep
//!   applying).
//!
//! Within one tenant, jobs are ordered **class first**: every
//! latency-class job ([`ServiceClass::Latency`]) precedes every
//! throughput-class job. Inside the latency class the order is earliest
//! deadline first (EDF; deadline-free latency jobs rank behind any
//! deadline, FIFO among themselves). Inside the throughput class jobs stay
//! cost-ranked (longest first) — the same LPT heuristic the one-shot pool
//! used, now applied per tenant so it can no longer leak across tenant
//! boundaries. Classes reorder work *within* a tenant only; the DRR
//! rotation, weights, deficits and rate limits across tenants are
//! class-blind, so the fairness bands weights promise are untouched.
//!
//! **Measured-cost fairness.** Deficit used to be spent purely in
//! placement-estimate units fixed at admission — so a tenant whose jobs were
//! systematically under-estimated silently received a multiple of its fair
//! share of device time. Two feedback loops close that gap:
//!
//! * an online [`CostModel`](crate::cost_model) (EWMA of measured
//!   busy-seconds per plan key) consulted at admission — and lazily
//!   repricing queued jobs at dispatch — so a plan with history is charged
//!   its *measured* cost; and
//! * **deficit charge-back** on every recorded outcome: the tenant's deficit
//!   is corrected by `(measured − charged)` cost units (clamped per job),
//!   so misestimates cannot compound across rotations — weighted fairness
//!   holds in busy-seconds, not in guess units.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use qml_observe::Stage;
use qml_runtime::{JobDispatch, JobId, Placement};
use qml_types::{JobRequirements, MeasuredCost, ServiceClass};

use crate::cost_model::{CostModel, COST_UNITS_PER_SECOND};
use crate::fleet::{DeviceUtilization, FleetRouter, ParkedDispatch};
use crate::metrics::ClassStats;
use crate::observe::MetricsRegistry;

/// Smallest effective DRR weight; keeps the pass bound finite for
/// pathological configurations (weight ≤ 0).
const MIN_WEIGHT: f64 = 1e-3;

/// Floor applied to every admitted job's cost estimate. A job whose
/// placement failed (or whose descriptors carry no cost hints) estimates
/// 0.0 — and a zero-cost job spends **zero deficit**, so one tenant's
/// hint-less queue would drain entirely in a single parked visit, the exact
/// monopoly DRR exists to prevent. Flooring at the quantum's own base unit
/// (1.0, see [`FairScheduler::quantum`]) makes a hint-less job cost exactly
/// one visit's budget.
pub(crate) const MIN_JOB_COST: f64 = 1.0;

/// How many queued jobs (beyond the head) one dispatch may inspect while
/// coalescing a micro-batch. Same-plan jobs share a cost estimate and the
/// queue is cost-ranked, so compatible jobs sit contiguously near the head;
/// the window only bounds the pathological interleaved case, which runs
/// under the scheduler lock every worker contends on.
const MAX_BATCH_SCAN: usize = 64;

/// Upper bound on DRR passes per dispatch attempt. With the quantum equal
/// to the largest currently queued head cost, any head job becomes
/// dispatchable within `1 / weight ≤ 1 / MIN_WEIGHT` visits, so this is
/// never hit by a finite configuration; it is a defensive backstop, not a
/// tuning knob.
const MAX_PASSES: usize = 1024;

/// A token-bucket rate limit on one tenant's dispatches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateLimit {
    /// Sustained dispatch rate, in jobs per second. `0.0` means "burst
    /// only": the tenant may dispatch up to `burst` jobs and is then
    /// throttled until the next drain.
    pub jobs_per_second: f64,
    /// Bucket capacity: how many dispatches may happen back-to-back before
    /// the sustained rate applies. Dispatching costs one whole token, so
    /// values below 1.0 are treated as 1.0 (a bucket that can never reach a
    /// full token would starve the tenant outright).
    pub burst: f64,
}

impl RateLimit {
    /// A limit of `jobs_per_second` with a burst allowance of the same size
    /// (at least one job).
    pub fn per_second(jobs_per_second: f64) -> Self {
        RateLimit {
            jobs_per_second,
            burst: jobs_per_second.max(1.0),
        }
    }

    /// Replace the burst allowance, builder-style.
    pub fn with_burst(mut self, burst: f64) -> Self {
        self.burst = burst;
        self
    }

    /// The bucket capacity actually enforced (see [`RateLimit::burst`]).
    fn effective_burst(&self) -> f64 {
        self.burst.max(1.0)
    }
}

/// Scheduling policy applied to one tenant (or, via
/// [`ServiceConfig::default_policy`](crate::ServiceConfig), to every tenant
/// without an explicit one).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantPolicy {
    /// Relative share of dispatch budget under contention. A weight-2 tenant
    /// receives twice the cost-throughput of a weight-1 tenant while both
    /// have work queued. Values ≤ 0 are clamped to a small epsilon.
    pub weight: f64,
    /// Maximum number of this tenant's jobs executing concurrently
    /// (`None` = unlimited). A configured cap of 0 is treated as 1.
    pub max_in_flight: Option<usize>,
    /// Token-bucket rate limit (`None` = unlimited).
    pub rate_limit: Option<RateLimit>,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            weight: 1.0,
            max_in_flight: None,
            rate_limit: None,
        }
    }
}

impl TenantPolicy {
    /// Set the DRR weight, builder-style.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Cap the tenant's concurrently executing jobs, builder-style.
    pub fn with_max_in_flight(mut self, max: usize) -> Self {
        self.max_in_flight = Some(max);
        self
    }

    /// Attach a token-bucket rate limit, builder-style.
    pub fn with_rate_limit(mut self, limit: RateLimit) -> Self {
        self.rate_limit = Some(limit);
        self
    }
}

/// Fairness counters for the scheduler as a whole, surfaced through
/// [`ServiceMetrics`](crate::ServiceMetrics).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SchedulerMetrics {
    /// Dispatch attempts (each worker call that scanned the tenant rotation).
    pub rounds: u64,
    /// Jobs handed to workers.
    pub dispatched: u64,
    /// Tenant visits skipped because the tenant's token bucket was empty.
    pub throttled: u64,
    /// Tenant visits skipped because the tenant was at its in-flight cap.
    pub capped: u64,
    /// Scans that found nothing dispatchable (the caller backed off).
    pub idle_polls: u64,
    /// Micro-batches formed: dispatches that coalesced ≥ 2 plan-compatible
    /// jobs into one device-level `execute_batch` call.
    #[serde(default)]
    pub batches: u64,
    /// Jobs dispatched as members of a micro-batch (heads included).
    /// `dispatched - batched_jobs` is the solo-dispatch count.
    #[serde(default)]
    pub batched_jobs: u64,
    /// Outcomes with a measured duration folded into the cost model and the
    /// estimate-error gauges.
    #[serde(default)]
    pub cost_samples: u64,
    /// Total absolute estimate error across all measured outcomes, in cost
    /// units (`|measured − estimated|`, measured at
    /// [`COST_UNITS_PER_SECOND`] units per busy-second).
    #[serde(default)]
    pub estimate_error_units: f64,
    /// Total magnitude of applied deficit charge-backs, in cost units
    /// (post-clamp; 0 while estimates are accurate).
    #[serde(default)]
    pub charge_back_units: f64,
    /// Device-faulted member jobs re-admitted onto another fleet device
    /// (failover): each increments a job's attempt count without producing
    /// a terminal outcome.
    #[serde(default)]
    pub requeued: u64,
}

impl SchedulerMetrics {
    /// Mean number of jobs per formed micro-batch (0.0 before any batch).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_jobs as f64 / self.batches as f64
        }
    }

    /// Jobs dispatched solo (not part of any micro-batch).
    pub fn solo_jobs(&self) -> u64 {
        self.dispatched.saturating_sub(self.batched_jobs)
    }

    /// Mean absolute estimate error per measured outcome, in cost units
    /// (0.0 before any measurement). The scheduler's accuracy gauge: large
    /// values mean DRR budgets were charged far from what jobs really cost.
    pub fn mean_abs_estimate_error(&self) -> f64 {
        if self.cost_samples == 0 {
            0.0
        } else {
            self.estimate_error_units / self.cost_samples as f64
        }
    }
}

/// Live per-tenant gauges owned by the scheduler, merged into
/// [`TenantStats`](crate::TenantStats) snapshots.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct TenantGauges {
    pub dispatched: u64,
    pub in_flight: u64,
    pub throttled: u64,
    pub total_wait_seconds: f64,
    pub busy_seconds: f64,
}

/// Dispatch/outcome counters for one service class, merged into
/// [`ClassStats`](crate::ClassStats) snapshots.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ClassLedger {
    pub dispatched: u64,
    pub completed: u64,
    pub failed: u64,
    /// Terminal outcomes that settled after the job's absolute deadline
    /// (deadline-free jobs can never miss).
    pub deadline_miss: u64,
}

/// One admitted, not-yet-dispatched job.
#[derive(Debug, Clone)]
struct QueuedJob {
    id: JobId,
    /// The estimated cost of `placement` at admission, floored at
    /// [`MIN_JOB_COST`] (placement failures estimate 0.0 before the floor;
    /// such jobs still dispatch and fail at execution).
    cost: f64,
    /// The placement computed at admission, handed to the worker so the
    /// bundle is not placed a second time at execution.
    placement: Option<Placement>,
    /// Device-level batching key ([`qml_backends::Backend::batch_key`] folded
    /// with the backend identity): queued jobs of one tenant sharing a key
    /// may be coalesced into a single dispatch. `None` never coalesces.
    batch_key: Option<u64>,
    /// What the job demands of a fleet device (register width, opt level),
    /// derived once at submission. `None` routes capability-blind.
    requirements: Option<JobRequirements>,
    /// The job's service class; orders the queue ahead of any cost rank.
    class: ServiceClass,
    /// Absolute completion deadline (submission + the class's relative
    /// deadline); EDF key within the latency class and the deadline-miss
    /// reference at settlement.
    deadline: Option<Instant>,
    /// True for a device-fault re-admission (PR 8 failover): the original
    /// dispatch already spent a rate-limit token, so the retry is exempt
    /// from the token bucket — retrying must not double-charge.
    retry: bool,
    submitted: Instant,
}

/// Queue-order predicate for class-aware admission: true while the queued
/// job `q` keeps its position ahead of an arrival with (`class`,
/// `deadline`, `cost`). Encodes the full ordering rule — latency before
/// throughput, EDF (deadline-free last, FIFO ties) inside latency, LPT
/// inside throughput — so one `partition_point` call places any arrival.
fn keeps_position(
    q: &QueuedJob,
    class: ServiceClass,
    deadline: Option<Instant>,
    cost: f64,
) -> bool {
    match (q.class, class) {
        (ServiceClass::Latency { .. }, ServiceClass::Throughput) => true,
        (ServiceClass::Throughput, ServiceClass::Latency { .. }) => false,
        (ServiceClass::Latency { .. }, ServiceClass::Latency { .. }) => {
            match (q.deadline, deadline) {
                (None, None) => true,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(queued), Some(arriving)) => queued <= arriving,
            }
        }
        (ServiceClass::Throughput, ServiceClass::Throughput) => q.cost >= cost,
    }
}

/// One tenant's queue plus its DRR/rate-limit state.
#[derive(Debug)]
struct TenantQueue {
    policy: TenantPolicy,
    /// Cost-ranked (descending) pending jobs; FIFO among equal costs.
    queue: VecDeque<QueuedJob>,
    /// DRR deficit counter, in cost units.
    deficit: f64,
    /// Token bucket fill (only meaningful with a rate limit).
    tokens: f64,
    last_refill: Instant,
    in_flight: usize,
    dispatched: u64,
    throttled: u64,
    total_wait_seconds: f64,
    /// Measured busy wall-clock attributed to this tenant's finished jobs.
    busy_seconds: f64,
}

impl TenantQueue {
    fn new(policy: TenantPolicy, now: Instant) -> Self {
        let tokens = policy
            .rate_limit
            .map(|l| l.effective_burst())
            .unwrap_or(0.0);
        TenantQueue {
            policy,
            queue: VecDeque::new(),
            deficit: 0.0,
            tokens,
            last_refill: now,
            in_flight: 0,
            dispatched: 0,
            throttled: 0,
            total_wait_seconds: 0.0,
            busy_seconds: 0.0,
        }
    }

    /// Advance the token bucket to `now`. Monotone by construction: a stale
    /// `now` (older than the last refill — e.g. an instant captured before
    /// another thread's refill was serialized ahead of it) adds nothing and
    /// **keeps** `last_refill`, so the already-credited interval can never
    /// be double-counted by a later, fresher call.
    fn refill(&mut self, now: Instant) {
        if let Some(limit) = self.policy.rate_limit {
            let elapsed = now
                .saturating_duration_since(self.last_refill)
                .as_secs_f64();
            if elapsed > 0.0 {
                self.tokens =
                    (self.tokens + elapsed * limit.jobs_per_second).min(limit.effective_burst());
                self.last_refill = now;
            }
        }
    }

    /// Forfeit banked DRR credit while **keeping debt**: a vetoed or
    /// drained tenant must not hoard budget for later bursts, but a deficit
    /// driven negative by measured-cost charge-back is real over-consumption
    /// and must survive until the tenant has paid it off.
    fn forfeit_credit(&mut self) {
        self.deficit = self.deficit.min(0.0);
    }
}

/// What the scheduler remembers about a dispatched-but-unfinished job: who
/// to release, what was charged, and which plan-cost entry to feed.
#[derive(Debug, Clone)]
struct InFlight {
    tenant: Arc<str>,
    /// The cost charged against the tenant's deficit at dispatch.
    cost: f64,
    batch_key: Option<u64>,
    /// Requirements carried for re-routing after a device fault.
    requirements: Option<JobRequirements>,
    /// The **plane-level** placement from admission (before any device
    /// backend swap), so a faulted job can be re-admitted as if fresh.
    placement: Option<Placement>,
    /// The fleet device the dispatch was routed to; cleared once that
    /// device's slot has been settled (so no path can free it twice).
    device: Option<usize>,
    /// The job's service class, carried for per-class outcome accounting
    /// and for class-preserving re-admission after a device fault.
    class: ServiceClass,
    /// Absolute deadline (if any): checked against the settlement clock to
    /// count `deadline_miss`, and preserved across fault requeues.
    deadline: Option<Instant>,
}

/// A coalesced batch member plus the attribution its `dispatched` stage
/// event needs — the final batch size is only known once the whole batch is
/// assembled, so the events are emitted by `next_job`, not `coalesce`.
struct BatchMember {
    id: JobId,
    /// Submit→dispatch wait, microseconds.
    wait_us: u64,
    /// Deficit spent dispatching this member.
    cost: f64,
}

/// The cost a queued job is charged **now**: the cost model's current
/// prediction for its plan key when one exists, else the cost fixed at
/// admission. Jobs queue for whole rotations while measurements stream in;
/// spending the *live* prediction (rather than the admission-time guess)
/// keeps the quantum and every deficit debit in measured units as soon as a
/// plan has history — without an O(queue) reprice pass per observation.
fn effective_cost(model: &CostModel, job: &QueuedJob) -> f64 {
    job.batch_key
        .and_then(|key| model.predict_seconds(key))
        .map(|seconds| (seconds * COST_UNITS_PER_SECOND).max(MIN_JOB_COST))
        .unwrap_or(job.cost)
}

/// Lifecycle phase of the streaming loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// No pool is attached; nothing dispatches.
    Stopped,
    /// Live: dispatch under full policy enforcement.
    Running,
    /// Graceful shutdown: keep dispatching (rate limits waived) until every
    /// queue is empty and nothing is in flight, then stop the pool.
    Draining,
    /// Hard stop: dispatch nothing further; workers exit at the next job
    /// boundary and undispatched jobs stay queued for a later restart.
    Aborting,
}

/// The scheduler's answer to a worker asking for work (the service adapts
/// this to [`qml_runtime::Feed`]).
#[derive(Debug, Clone)]
pub(crate) enum SchedPoll {
    Dispatch(JobDispatch),
    Idle,
    Shutdown,
}

/// Deficit-round-robin scheduler state shared by all pool workers.
#[derive(Debug)]
pub(crate) struct FairScheduler {
    pub(crate) mode: Mode,
    /// Largest number of plan-compatible **throughput-class** jobs one
    /// dispatch may coalesce (1 disables micro-batching).
    max_batch: usize,
    /// The latency class's own micro-batch cap (default 2): a latency head
    /// coalesces at most this many jobs, never the adaptive throughput cap —
    /// a latency job must not wait out a long device-level batch call.
    latency_max_batch: usize,
    /// Scale the per-dispatch batch cap from live queue depth: a deep
    /// backlog batches to `max_batch` for throughput, a shallow queue keeps
    /// batches small so a straggler job is not held behind a long device
    /// call. `false` pins the cap at `max_batch` (the pre-adaptive behavior).
    /// Throughput class only — the latency cap is always fixed.
    adaptive_batch: bool,
    tenants: BTreeMap<Arc<str>, TenantQueue>,
    /// Visit order; tenants are appended on first admission and never
    /// removed (an empty queue is skipped in O(1)).
    rotation: Vec<Arc<str>>,
    cursor: usize,
    /// True once the tenant at `cursor` has received its arrival credit for
    /// the current pointer visit; cleared whenever the pointer advances.
    /// This is what lets one visit span several `next_job` calls (a heavy
    /// tenant serves its whole quantum) without re-crediting per call.
    credited: bool,
    /// Dispatched-but-unfinished jobs: in-flight accounting plus the charged
    /// cost and plan key needed to reconcile the outcome's measured cost.
    in_flight: BTreeMap<JobId, InFlight>,
    /// Online EWMA of measured busy-seconds per plan key, consulted at
    /// admission (see [`FairScheduler::admit`]).
    cost_model: CostModel,
    /// Per-job bound on the deficit charge-back, as a multiple of the job's
    /// charged cost; `≤ 0` disables charge-back entirely.
    charge_back_clamp: f64,
    /// Number of tenants whose queues are currently non-empty, so the hot
    /// poll path's contention checks are O(1) instead of O(tenants).
    nonempty: usize,
    /// Queued latency-class jobs across **all** tenants: the O(1) signal
    /// that stops a forming throughput batch from growing (preempt
    /// coalescing, never execution).
    queued_latency: usize,
    /// Memoized [`FairScheduler::quantum`], invalidated (set to `None`) by
    /// every queue removal and by any admission that lands at a queue head
    /// (class ordering means a new head can *lower* that tenant's head
    /// cost, so raising in place is no longer sound) — an idle poll storm
    /// still recomputes nothing.
    cached_quantum: Option<f64>,
    /// Shared observability sink: `admitted`/`dispatched` stage events plus
    /// the per-tenant / per-backend queue-wait histograms.
    obs: Arc<MetricsRegistry>,
    /// Device-level router: which fleet device within a placement's plane
    /// runs each dispatch, plus per-device health / queues / gauges. An
    /// [`empty`](FleetRouter::empty) fleet leaves every plane un-fleeted
    /// (dispatches are device-blind, exactly the pre-fleet behavior).
    fleet: FleetRouter,
    /// Per-class dispatch/outcome counters (latency, throughput).
    latency_ledger: ClassLedger,
    throughput_ledger: ClassLedger,
    pub(crate) metrics: SchedulerMetrics,
}

/// Everything one admission needs, bundled so the call sites (submission,
/// fault requeue, tests) stay readable as fields grow with the scheduler.
#[derive(Debug)]
pub(crate) struct Admission {
    pub id: JobId,
    /// Static placement estimate (the lowest-trust cost source).
    pub cost: f64,
    /// Explicit `duration_us` hint in seconds, if the bundle carried one.
    pub hint_seconds: Option<f64>,
    pub placement: Option<Placement>,
    pub batch_key: Option<u64>,
    pub requirements: Option<JobRequirements>,
    pub class: ServiceClass,
    /// Absolute deadline (submission instant + the class's relative
    /// deadline), resolved by the caller so requeues preserve the original.
    pub deadline: Option<Instant>,
    /// True when re-admitting after a device fault: the original dispatch
    /// already paid the rate-limit token, so the retry must not be charged
    /// (or throttled) again.
    pub retry: bool,
}

impl Admission {
    /// A plain throughput-class admission with only an id and a static
    /// cost — what most scheduler tests need.
    #[cfg(test)]
    pub(crate) fn job(id: JobId, cost: f64) -> Self {
        Admission {
            id,
            cost,
            hint_seconds: None,
            placement: None,
            batch_key: None,
            requirements: None,
            class: ServiceClass::Throughput,
            deadline: None,
            retry: false,
        }
    }
}

/// How [`FairScheduler::settle_outcome`] disposed of one member outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OutcomeDisposition {
    /// The outcome stands; the caller finishes the terminal bookkeeping
    /// (service counters, traces, [`FairScheduler::record_outcome`]).
    Final,
    /// A device fault was absorbed: the job was re-admitted with the
    /// faulted device excluded. Nothing about it is terminal yet.
    Requeued,
}

impl FairScheduler {
    pub(crate) fn new(
        max_batch: usize,
        latency_max_batch: usize,
        adaptive_batch: bool,
        ewma_alpha: f64,
        charge_back_clamp: f64,
        obs: Arc<MetricsRegistry>,
    ) -> Self {
        FairScheduler {
            mode: Mode::Stopped,
            max_batch: max_batch.max(1),
            latency_max_batch: latency_max_batch.max(1),
            adaptive_batch,
            tenants: BTreeMap::new(),
            rotation: Vec::new(),
            cursor: 0,
            credited: false,
            in_flight: BTreeMap::new(),
            cost_model: CostModel::new(ewma_alpha),
            charge_back_clamp,
            nonempty: 0,
            queued_latency: 0,
            cached_quantum: Some(1.0),
            obs,
            fleet: FleetRouter::empty(),
            latency_ledger: ClassLedger::default(),
            throughput_ledger: ClassLedger::default(),
            metrics: SchedulerMetrics::default(),
        }
    }

    /// Install the device fleet (built by the service from its config).
    pub(crate) fn set_fleet(&mut self, fleet: FleetRouter) {
        self.fleet = fleet;
    }

    /// Per-device gauges for metrics merges.
    pub(crate) fn device_snapshot(&self) -> BTreeMap<String, DeviceUtilization> {
        self.fleet.snapshot()
    }

    /// Admission feasibility: true when some fleet device on `plane`
    /// (healthy or not) could ever serve a job with these requirements.
    /// Un-fleeted planes accept everything.
    pub(crate) fn feasible(&self, plane: &str, req: &JobRequirements) -> bool {
        self.fleet.capable_exists(plane, Some(req))
    }

    /// The model's predicted cost (in deficit units) for a plan key, if it
    /// has one — what the next admission of this plan will be charged.
    #[cfg(test)]
    pub(crate) fn predicted_cost(&self, batch_key: u64) -> Option<f64> {
        self.cost_model
            .predict_seconds(batch_key)
            .map(|s| (s * COST_UNITS_PER_SECOND).max(MIN_JOB_COST))
    }

    /// A tenant's current DRR deficit (test observability).
    #[cfg(test)]
    pub(crate) fn deficit_of(&self, tenant: &Arc<str>) -> f64 {
        self.tenants[tenant].deficit
    }

    /// The cost the tenant's head job was admitted at (test observability).
    #[cfg(test)]
    pub(crate) fn head_cost_of(&self, tenant: &Arc<str>) -> Option<f64> {
        self.tenants[tenant].queue.front().map(|j| j.cost)
    }

    /// Intern a tenant name, creating its queue (under `policy`) on first
    /// sight. Returns the shared id so the caller can deduplicate its own
    /// tenant-name storage.
    pub(crate) fn intern(&mut self, tenant: &str, policy: &TenantPolicy) -> Arc<str> {
        if let Some((name, _)) = self.tenants.get_key_value(tenant) {
            return Arc::clone(name);
        }
        let name: Arc<str> = Arc::from(tenant);
        self.tenants.insert(
            Arc::clone(&name),
            TenantQueue::new(policy.clone(), Instant::now()),
        );
        self.rotation.push(Arc::clone(&name));
        name
    }

    /// Admit one job into its tenant's queue, keeping the queue ordered by
    /// class (latency before throughput), then EDF inside the latency class
    /// and cost rank (descending; FIFO among equal costs — the per-tenant
    /// LPT order) inside throughput.
    ///
    /// The cost charged against the tenant's deficit is resolved in order of
    /// trust:
    ///
    /// 1. the **cost model's measured prediction** for the job's plan key —
    ///    a plan with execution history admits at what it actually costs;
    /// 2. an explicit **`duration_us` cost hint** (`hint_seconds`), which
    ///    also seeds the model so the first measured outcome refines rather
    ///    than replaces it;
    /// 3. the static **placement estimate** (descriptor scheduling weight).
    ///
    /// Whatever wins is floored at [`MIN_JOB_COST`] so zero-cost estimates
    /// (failed placements, hint-less descriptors) still spend DRR deficit —
    /// a zero-cost queue must not drain in a single parked visit.
    pub(crate) fn admit_job(&mut self, tenant: &Arc<str>, adm: Admission) {
        let Admission {
            id,
            cost,
            hint_seconds,
            placement,
            batch_key,
            requirements,
            class,
            deadline,
            retry,
        } = adm;
        // A disabled model (alpha ≤ 0) bypasses the whole measured-cost
        // path, hints included: admissions are pure estimate-unit, exactly
        // the pre-measured scheduler.
        let cost = match batch_key.filter(|_| !self.cost_model.is_disabled()) {
            Some(key) => match self.cost_model.predict_seconds(key) {
                Some(seconds) => seconds * COST_UNITS_PER_SECOND,
                None => match hint_seconds {
                    Some(hint) => {
                        self.cost_model.seed(key, hint);
                        hint * COST_UNITS_PER_SECOND
                    }
                    None => cost,
                },
            },
            None => cost,
        }
        .max(MIN_JOB_COST);
        if self.obs.tracing_enabled() {
            self.obs
                .trace(id, Some(tenant), batch_key, Stage::Admitted { cost });
        }
        let queue = self
            .tenants
            .get_mut(tenant)
            .expect("tenant interned before admission");
        let job = QueuedJob {
            id,
            cost,
            placement,
            batch_key,
            requirements,
            class,
            deadline,
            retry,
            submitted: Instant::now(),
        };
        if queue.queue.is_empty() {
            self.nonempty += 1;
        }
        if class.is_latency() {
            self.queued_latency += 1;
        }
        // Binary search: the queue is kept sorted by the class-then-EDF/LPT
        // rule, and partition_point places ties after their peers (stable
        // FIFO), so admitting an N-point sweep costs O(N log N) comparisons
        // instead of O(N^2) — this runs under the scheduler lock workers
        // contend on.
        let at = queue
            .queue
            .partition_point(|q| keeps_position(q, class, deadline, cost));
        queue.queue.insert(at, job);
        // A non-head insertion cannot change any tenant's head, so the memo
        // stays valid; a new head can raise *or lower* the max head cost
        // (a cheap latency job now outranks an expensive throughput head),
        // so it invalidates rather than adjusts in place.
        if at == 0 {
            self.cached_quantum = None;
        }
    }

    /// Test shorthand: a throughput-class [`Admission`] from the positional
    /// fields most scheduler tests exercise.
    #[cfg(test)]
    pub(crate) fn admit(
        &mut self,
        tenant: &Arc<str>,
        id: JobId,
        cost: f64,
        hint_seconds: Option<f64>,
        placement: Option<Placement>,
        batch_key: Option<u64>,
    ) {
        self.admit_job(
            tenant,
            Admission {
                hint_seconds,
                placement,
                batch_key,
                ..Admission::job(id, cost)
            },
        );
    }

    /// Release the in-flight slot of a **skipped** job (lost claim): no
    /// measurement exists, so neither the cost model nor the deficit is
    /// touched. Finished jobs go through [`FairScheduler::record_outcome`].
    pub(crate) fn release(&mut self, id: JobId) {
        if let Some(flight) = self.in_flight.remove(&id) {
            if let Some(tenant) = self.tenants.get_mut(&flight.tenant) {
                tenant.in_flight = tenant.in_flight.saturating_sub(1);
            }
            if let Some(device) = flight.device {
                self.fleet.release_slot(device);
            }
            self.fleet.clear_exclusions(id.0);
        }
    }

    /// Reconcile a finished job's **measured** busy-seconds against what its
    /// dispatch was charged, then release its in-flight slot.
    ///
    /// Three things happen, in order:
    ///
    /// * the measurement feeds the per-plan-key cost model, so future
    ///   admissions of this plan are charged what it actually costs;
    /// * the estimate-error gauges update
    ///   ([`SchedulerMetrics::cost_samples`] /
    ///   [`SchedulerMetrics::estimate_error_units`], and the tenant's
    ///   busy-seconds);
    /// * **charge-back**: the tenant's deficit is corrected by
    ///   `measured − estimated` cost units, clamped to
    ///   `charge_back_clamp × estimated` per job (one wild outlier — a page
    ///   fault storm, a cold JIT — must not bankrupt a tenant for many
    ///   rotations; the cost model still absorbs the full observation). Net
    ///   effect: the tenant ends up having spent its *measured* cost, so a
    ///   systematic under-estimate can no longer compound into a fairness
    ///   hole across rotations.
    ///
    /// Charge-back only applies while the tenant is **contended** (some
    /// other tenant has queued work). An uncontended tenant's corrections
    /// are meaningless — there is nobody to be fair to — and letting them
    /// accumulate would bank unbounded credit (over-estimated jobs) or debt
    /// (under-estimated jobs) that distorts fairness the moment a competitor
    /// arrives, the mirror image of the banked-budget problem deficit resets
    /// exist to prevent.
    ///
    /// `ok` marks whether the job *succeeded*. A failed job's duration is
    /// failure latency, not execution cost — a member that dies in
    /// microseconds at bind time must not deflate its plan's EWMA (and
    /// under-charge every later admission of that key), must not count as
    /// an accuracy sample, and earns no charge-back refund (fail-fast spam
    /// at refunded cost would be a monopoly of its own). Failed jobs still
    /// release their slot and accrue their measured busy-seconds.
    pub(crate) fn record_outcome(&mut self, id: JobId, seconds: f64, ok: bool) {
        if !seconds.is_finite() || seconds < 0.0 {
            return self.release(id);
        }
        let Some(flight) = self.in_flight.remove(&id) else {
            return;
        };
        if let Some(device) = flight.device {
            // Device-routed outcomes normally settle their slot in
            // `settle_outcome` first (which clears this field); freeing here
            // covers direct callers such as the drain sweep.
            self.fleet.release_slot(device);
        }
        self.fleet.clear_exclusions(id.0);
        // Per-class terminal accounting: completion/failure tallies, the
        // class's execute histogram, and — for deadline-carrying latency
        // jobs only — whether this outcome settled past its deadline.
        let missed = flight
            .deadline
            .is_some_and(|deadline| Instant::now() > deadline);
        let ledger = self.ledger_mut(flight.class);
        if ok {
            ledger.completed += 1;
        } else {
            ledger.failed += 1;
        }
        if missed {
            ledger.deadline_miss += 1;
        }
        self.obs
            .observe_class_exec(flight.class.name(), (seconds * 1e6) as u64);
        if ok {
            if let Some(key) = flight.batch_key {
                self.cost_model.observe(key, seconds);
                // The observation can reprice any queued head of this plan,
                // so the memoized quantum is stale. Outcomes arrive at the
                // same rate as dispatches, so this keeps the rescan
                // amortized O(1) per job — idle polls still never rescan.
                self.cached_quantum = None;
            }
        }
        // Floor the measured side at MIN_JOB_COST (expressed in seconds),
        // exactly as admission floors every charge: without it, sub-floor
        // jobs would be partially refunded and a fast queue could again
        // drain in one parked visit — the monopoly the floor exists to
        // prevent.
        let measured = MeasuredCost::new(
            flight.batch_key,
            flight.cost,
            seconds.max(MIN_JOB_COST / COST_UNITS_PER_SECOND),
        );
        let error = measured.error_units(COST_UNITS_PER_SECOND);
        if ok {
            self.metrics.cost_samples += 1;
            self.metrics.estimate_error_units += error.abs();
        }
        let Some(tenant) = self.tenants.get_mut(&flight.tenant) else {
            return;
        };
        tenant.in_flight = tenant.in_flight.saturating_sub(1);
        tenant.busy_seconds += seconds;
        let contended = self.nonempty > usize::from(!tenant.queue.is_empty());
        let clamp = self.charge_back_clamp * flight.cost;
        if ok && contended && clamp > 0.0 {
            let delta = error.clamp(-clamp, clamp);
            if delta != 0.0 {
                tenant.deficit -= delta;
                self.metrics.charge_back_units += delta.abs();
            }
        }
    }

    /// Settle one member outcome against its fleet device **before** any
    /// terminal bookkeeping, deciding whether the outcome stands or the job
    /// fails over to another device.
    ///
    /// Always: the device's slot frees, its gauges and health ladder absorb
    /// the observation (busy-seconds accrue even for faulted attempts — the
    /// device was genuinely occupied), and a down transition evacuates the
    /// device's parked queue.
    ///
    /// If the outcome was a **device fault** and a capable, not-yet-excluded
    /// device remains on the job's plane, the job is requeued:
    /// `runtime_requeue` flips its runtime record back to queued (returning
    /// `false` aborts the failover — e.g. the record already settled), the
    /// faulted device joins the job's exclusion set, and the job re-enters
    /// its tenant queue through the normal admission path with its original
    /// plane-level placement. Each failover adds one exclusion over a finite
    /// device set, so a job completes elsewhere or fails terminally — it
    /// can never bounce forever, and `runtime_requeue`'s queued-only state
    /// transition guarantees exactly-once outcomes.
    pub(crate) fn settle_outcome(
        &mut self,
        id: JobId,
        device: Option<&str>,
        seconds: f64,
        ok: bool,
        fault: bool,
        runtime_requeue: impl FnOnce() -> bool,
    ) -> OutcomeDisposition {
        let Some(device) = device.and_then(|d| self.fleet.device_index(d)) else {
            self.fleet.clear_exclusions(id.0);
            return OutcomeDisposition::Final;
        };
        let plan_key = self.in_flight.get(&id).and_then(|f| f.batch_key);
        self.fleet.release_slot(device);
        if let Some(flight) = self.in_flight.get_mut(&id) {
            flight.device = None;
        }
        self.fleet.observe(device, plan_key, seconds, ok, fault);
        if fault {
            let can_retry = self.in_flight.get(&id).is_some_and(|flight| {
                flight.placement.as_ref().is_some_and(|placement| {
                    self.fleet.retry_candidate_exists(
                        placement.backend.name(),
                        flight.requirements.as_ref(),
                        id.0,
                        device,
                    )
                })
            });
            if can_retry && runtime_requeue() {
                let flight = self.in_flight.remove(&id).expect("present per can_retry");
                if let Some(tenant) = self.tenants.get_mut(&flight.tenant) {
                    tenant.in_flight = tenant.in_flight.saturating_sub(1);
                }
                self.fleet.exclude(id.0, device);
                self.fleet.note_requeued(device);
                self.metrics.requeued += 1;
                if self.obs.tracing_enabled() {
                    let attempt = self.fleet.exclusion_count(id.0) as u32;
                    self.obs.trace(
                        id,
                        Some(&flight.tenant),
                        flight.batch_key,
                        Stage::Requeued { attempt },
                    );
                }
                let tenant = Arc::clone(&flight.tenant);
                // Class, deadline, and (via `retry`) the already-paid
                // rate-limit token are preserved: a failover is the same
                // job, not a fresh submission.
                self.admit_job(
                    &tenant,
                    Admission {
                        id,
                        cost: flight.cost,
                        hint_seconds: None,
                        placement: flight.placement,
                        batch_key: flight.batch_key,
                        requirements: flight.requirements,
                        class: flight.class,
                        deadline: flight.deadline,
                        retry: true,
                    },
                );
                return OutcomeDisposition::Requeued;
            }
        }
        self.fleet.clear_exclusions(id.0);
        OutcomeDisposition::Final
    }

    /// Stamp a dispatch with its routed device: take one slot per member,
    /// remember the device on every member's in-flight record, and swap the
    /// placement's backend for the device's own instance (in-flight records
    /// keep the plane-level placement for any post-fault re-admit).
    fn route_to_device(&mut self, device: usize, mut dispatch: JobDispatch) -> JobDispatch {
        self.fleet.take_slots(device, dispatch.len());
        let ids: Vec<JobId> = dispatch.ids().collect();
        for id in ids {
            if let Some(flight) = self.in_flight.get_mut(&id) {
                flight.device = Some(device);
            }
        }
        if let Some(backend) = self.fleet.backend(device) {
            if let Some(placement) = dispatch.placement.as_mut() {
                placement.backend = backend;
            }
        }
        dispatch.device = self.fleet.device_id(device);
        dispatch
    }

    /// Jobs admitted but not yet dispatched.
    pub(crate) fn queued(&self) -> usize {
        self.tenants.values().map(|t| t.queue.len()).sum()
    }

    /// Jobs dispatched but not yet finished.
    pub(crate) fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Snapshot the per-tenant gauges for a metrics merge.
    pub(crate) fn gauges(&self) -> Vec<(Arc<str>, TenantGauges)> {
        self.tenants
            .iter()
            .map(|(name, t)| {
                (
                    Arc::clone(name),
                    TenantGauges {
                        dispatched: t.dispatched,
                        in_flight: t.in_flight as u64,
                        throttled: t.throttled,
                        total_wait_seconds: t.total_wait_seconds,
                        busy_seconds: t.busy_seconds,
                    },
                )
            })
            .collect()
    }

    /// The mutable per-class ledger for `class`.
    fn ledger_mut(&mut self, class: ServiceClass) -> &mut ClassLedger {
        if class.is_latency() {
            &mut self.latency_ledger
        } else {
            &mut self.throughput_ledger
        }
    }

    /// Snapshot the per-class queue split and outcome counters for a
    /// metrics merge (keys are the class names, `"latency"` /
    /// `"throughput"`).
    pub(crate) fn class_snapshot(&self) -> BTreeMap<String, ClassStats> {
        let throughput_queued = self.queued().saturating_sub(self.queued_latency);
        [
            ("latency", &self.latency_ledger, self.queued_latency),
            ("throughput", &self.throughput_ledger, throughput_queued),
        ]
        .into_iter()
        .map(|(name, ledger, queued)| {
            (
                name.to_string(),
                ClassStats {
                    queued: queued as u64,
                    dispatched: ledger.dispatched,
                    completed: ledger.completed,
                    failed: ledger.failed,
                    deadline_miss: ledger.deadline_miss,
                },
            )
        })
        .collect()
    }

    /// Cordon a fleet device for maintenance (no new routes; parked work is
    /// stolen by siblings). See [`FleetRouter::cordon`].
    pub(crate) fn cordon(&mut self, device: &str) -> bool {
        self.fleet.cordon(device)
    }

    /// Lift a cordon. See [`FleetRouter::uncordon`].
    pub(crate) fn uncordon(&mut self, device: &str) -> bool {
        self.fleet.uncordon(device)
    }

    /// Advance the rotation pointer, clearing the arrival credit.
    fn advance(&mut self) {
        let n = self.rotation.len().max(1);
        self.cursor = (self.cursor + 1) % n;
        self.credited = false;
    }

    /// The DRR quantum: the largest *currently queued* head cost (each
    /// tenant's head is its most expensive pending job, so this is the max
    /// over all queued jobs). Reflects the current queues rather than a
    /// high-water mark: a historically expensive job must not permanently
    /// inflate every tenant's per-visit budget, or a whale with many cheap
    /// jobs could serve `old_max_cost` jobs per visit and starve small
    /// tenants — the exact failure mode this module exists to prevent.
    ///
    /// Memoized: admissions raise the cached value in place; removals and
    /// cost-model observations (which can reprice any queued head)
    /// invalidate it. Only the first dispatch attempt after either pays the
    /// O(tenants) rescan — every idle poll (the hot path all workers execute
    /// whenever nothing is dispatchable) is O(1).
    fn quantum(&mut self) -> f64 {
        if let Some(quantum) = self.cached_quantum {
            return quantum;
        }
        let model = &self.cost_model;
        let quantum = self
            .tenants
            .values()
            .filter_map(|t| t.queue.front())
            .map(|job| effective_cost(model, job))
            .fold(1.0, f64::max);
        self.cached_quantum = Some(quantum);
        quantum
    }

    /// Remove and return the job at `index` of `name`'s queue, maintaining
    /// the non-empty-tenant counter and invalidating the memoized quantum —
    /// the single mutation path for queue removals.
    fn take_job(&mut self, name: &Arc<str>, index: usize) -> QueuedJob {
        let tenant = self.tenants.get_mut(name).expect("tenant exists");
        let job = tenant.queue.remove(index).expect("index in bounds");
        if tenant.queue.is_empty() {
            self.nonempty -= 1;
        }
        if job.class.is_latency() {
            self.queued_latency -= 1;
        }
        self.cached_quantum = None;
        job
    }

    /// One DRR dispatch attempt, shared by every pool worker.
    ///
    /// The pointer parks on one tenant at a time. On *arrival* the tenant is
    /// credited `weight × quantum` of deficit, once; the pointer then stays
    /// parked while successive calls dispatch that tenant's jobs, each
    /// spending its estimated cost from the deficit — so a weight-3 tenant
    /// serves three times the cost of a weight-1 tenant per rotation. The
    /// pointer advances when the tenant's remaining deficit no longer covers
    /// its head job (the deficit is *kept*, classic DRR, so heavy jobs
    /// eventually accumulate enough turns) or when the tenant is vetoed —
    /// empty queue, in-flight cap, or an empty token bucket (the deficit is
    /// *reset*: a non-competing tenant must not bank budget for later
    /// bursts).
    ///
    /// A full cycle of vetoes means nothing is dispatchable:
    /// [`SchedPoll::Idle`] — or [`SchedPoll::Shutdown`] once a drain has
    /// emptied every queue with nothing left in flight. Cycles containing a
    /// deficit-blocked tenant repeat (each arrival strictly grows that
    /// deficit, so the loop terminates within `1/weight` cycles).
    pub(crate) fn next_job(&mut self, now: Instant) -> SchedPoll {
        self.metrics.rounds += 1;
        match self.mode {
            Mode::Stopped | Mode::Aborting => return SchedPoll::Shutdown,
            Mode::Running | Mode::Draining => {}
        }
        // Parked fleet work is served ahead of the rotation: its fairness
        // accounting (deficit, tokens, in-flight slots) was already charged
        // when the DRR loop dispatched it — only a device slot was missing,
        // and one just freed (or an idle sibling is stealing the work).
        if let Some((device, parked)) = self.fleet.pop_parked() {
            return SchedPoll::Dispatch(self.route_to_device(device, parked.dispatch));
        }
        let drain = self.mode == Mode::Draining;
        let n = self.rotation.len();
        let quantum = self.quantum();
        let mut consecutive_vetoes = 0usize;
        for _visit in 0..n.saturating_mul(MAX_PASSES) {
            let name = Arc::clone(&self.rotation[self.cursor]);
            let tenant = self.tenants.get_mut(&name).expect("rotation entry exists");
            // A device-fault requeue already paid its token at the original
            // dispatch: the throttle veto (and the token spend below) must
            // not charge it twice.
            let head_retry = tenant.queue.front().is_some_and(|job| job.retry);
            // Veto checks: a vetoed tenant is not competing this round.
            let vetoed = if tenant.queue.is_empty() {
                true
            } else if tenant
                .policy
                .max_in_flight
                .is_some_and(|cap| tenant.in_flight >= cap.max(1))
            {
                self.metrics.capped += 1;
                true
            } else if !drain && !head_retry && tenant.policy.rate_limit.is_some() {
                tenant.refill(now);
                if tenant.tokens < 1.0 {
                    tenant.throttled += 1;
                    self.metrics.throttled += 1;
                    true
                } else {
                    false
                }
            } else {
                false
            };
            if vetoed {
                // A vetoed tenant is not competing: forfeit banked credit
                // (debt from measured-cost charge-back survives).
                tenant.forfeit_credit();
                consecutive_vetoes += 1;
                if consecutive_vetoes >= n {
                    break;
                }
                self.advance();
                continue;
            }
            consecutive_vetoes = 0;
            if !self.credited {
                tenant.deficit += tenant.policy.weight.max(MIN_WEIGHT) * quantum;
                self.credited = true;
            }
            let head_cost = effective_cost(
                &self.cost_model,
                tenant.queue.front().expect("non-empty queue"),
            );
            if tenant.deficit < head_cost {
                // Blocked by deficit: keep it and move on; the next arrival
                // credits more.
                self.advance();
                continue;
            }
            // Fleet backpressure: if no capable device on the head's plane
            // can take the job right now (every slot busy, every queue
            // full), defer it — the deficit is kept, exactly like a
            // deficit block, so the tenant loses no budget to a saturated
            // or failing fleet.
            let accept = {
                let head = tenant.queue.front().expect("non-empty queue");
                match head.placement.as_ref().map(|p| p.backend.name()) {
                    Some(plane) => {
                        self.fleet
                            .can_accept(plane, head.requirements.as_ref(), head.id.0)
                    }
                    None => true,
                }
            };
            if !accept {
                self.advance();
                continue;
            }
            let job = self.take_job(&name, 0);
            let tenant = self.tenants.get_mut(&name).expect("rotation entry exists");
            let spend_token = !drain && !job.retry && tenant.policy.rate_limit.is_some();
            tenant.deficit -= head_cost;
            if spend_token {
                tenant.tokens -= 1.0;
            }
            tenant.in_flight += 1;
            tenant.dispatched += 1;
            // Saturating: `submitted` stamps are taken under the same lock,
            // but a caller-supplied stale `now` must clamp a "negative" wait
            // to zero rather than corrupt the gauge.
            let head_wait = now.saturating_duration_since(job.submitted);
            tenant.total_wait_seconds += head_wait.as_secs_f64();
            self.metrics.dispatched += 1;
            self.ledger_mut(job.class).dispatched += 1;
            self.in_flight.insert(
                job.id,
                InFlight {
                    tenant: Arc::clone(&name),
                    cost: head_cost,
                    batch_key: job.batch_key,
                    requirements: job.requirements,
                    placement: job.placement.clone(),
                    device: None,
                    class: job.class,
                    deadline: job.deadline,
                },
            );
            let members = self.coalesce(&name, &job, drain);
            let head_wait_us = head_wait.as_micros() as u64;
            self.obs.observe_wait(
                &name,
                job.placement.as_ref().map(|p| p.backend.name()),
                head_wait_us,
            );
            self.obs.observe_class_wait(job.class.name(), head_wait_us);
            if self.obs.tracing_enabled() {
                let batch_size = (members.len() + 1) as u32;
                self.obs.trace(
                    job.id,
                    Some(&name),
                    job.batch_key,
                    Stage::Dispatched {
                        queue_wait_us: head_wait_us,
                        batch_size,
                        deficit_spent: head_cost,
                    },
                );
                for member in &members {
                    self.obs.trace(
                        member.id,
                        Some(&name),
                        job.batch_key,
                        Stage::Dispatched {
                            queue_wait_us: member.wait_us,
                            batch_size,
                            deficit_spent: member.cost,
                        },
                    );
                }
            }
            let tenant = self.tenants.get_mut(&name).expect("rotation entry exists");
            if tenant.queue.is_empty() {
                tenant.forfeit_credit();
            }
            let dispatch = JobDispatch {
                id: job.id,
                rest: members.into_iter().map(|m| m.id).collect(),
                placement: job.placement.clone(),
                device: None,
                class: job.class,
            };
            let plane = job.placement.as_ref().map(|p| p.backend.name().to_string());
            let route = plane.and_then(|plane| {
                self.fleet
                    .select(&plane, job.requirements.as_ref(), job.batch_key, job.id.0)
            });
            return match route {
                Some(device) if self.fleet.has_free_slot(device) => {
                    SchedPoll::Dispatch(self.route_to_device(device, dispatch))
                }
                Some(device) => {
                    // Routed, but every slot on the chosen device is busy:
                    // park the whole dispatch on its queue. A freed slot —
                    // or an idle sibling stealing it — serves it ahead of
                    // the rotation on a later poll.
                    self.fleet.park(
                        device,
                        ParkedDispatch {
                            dispatch,
                            requirements: job.requirements,
                        },
                    );
                    continue;
                }
                // Un-fleeted plane (or placement-less job): dispatch
                // device-blind, the pre-fleet behavior.
                None => SchedPoll::Dispatch(dispatch),
            };
        }
        if drain && self.queued() == 0 && self.in_flight.is_empty() {
            return SchedPoll::Shutdown;
        }
        self.metrics.idle_polls += 1;
        SchedPoll::Idle
    }

    /// The batch-size cap of one dispatch, given the head's service class
    /// and how many jobs are queued behind the already-taken head. A
    /// latency-class head always uses the fixed `latency_max_batch` cap —
    /// its whole point is a short device call. A throughput head is capped
    /// at `max_batch`, scaled to `queued/2 + 1` (clamped to
    /// `[1, max_batch]`) when adaptive batching is on — deep queue → full
    /// cap, shallow queue → small batch.
    fn effective_max_batch(&self, class: ServiceClass, queued_behind_head: usize) -> usize {
        if class.is_latency() {
            return self.latency_max_batch;
        }
        if !self.adaptive_batch {
            return self.max_batch;
        }
        (queued_behind_head / 2 + 1).clamp(1, self.max_batch)
    }

    /// Opportunistically extend a just-dispatched head job into a
    /// **micro-batch**: pop further queued jobs of the same tenant that share
    /// the head's batch key (same backend, same realization plan) *and its
    /// service class*, spending deficit and rate-limit tokens and taking
    /// in-flight slots **per member**, exactly as solo dispatches would —
    /// fairness accounting is unchanged; the batch merely rides one worker
    /// round-trip and one device-level `execute_batch` call.
    ///
    /// Under contention (any other tenant has queued work) a member is only
    /// taken while the tenant's remaining deficit covers its cost, so DRR
    /// weights keep their exact meaning: a weight-3 tenant coalesces up to
    /// three cost units per visit where a weight-1 tenant dispatches solo.
    /// An **uncontended** tenant batches up to the class cap regardless of
    /// deficit — there is nobody to be fair to — with the deficit clamped at
    /// zero so no batching debt leaks into the next contended period.
    ///
    /// The cap is per class (see
    /// [`effective_max_batch`](FairScheduler::effective_max_batch)), and a
    /// queued latency job — any tenant's — stops a throughput batch from
    /// growing past its head (preempt coalescing, never execution).
    ///
    /// Clock discipline: the caller's `now` is *not* reused here. Member
    /// token refills and wait-time accounting read a **fresh instant** taken
    /// after the head's bookkeeping, so a member admitted between the
    /// caller's clock read and this scan can never observe a `now` older
    /// than its own `submitted` stamp (its wait would clamp to zero and, in
    /// older std, panicked), and refill arithmetic never runs backwards.
    fn coalesce(&mut self, name: &Arc<str>, head: &QueuedJob, drain: bool) -> Vec<BatchMember> {
        let mut rest = Vec::new();
        let Some(key) = head.batch_key else {
            return rest;
        };
        let now = Instant::now();
        // O(1) contention check: some *other* tenant has queued work iff the
        // non-empty count exceeds this tenant's own contribution.
        let tenant = self.tenants.get_mut(name).expect("tenant exists");
        let contended = self.nonempty > usize::from(!tenant.queue.is_empty());
        // Per-class cap, read from the live backlog (queue length and the
        // non-empty count are both O(1) signals — no scan).
        let queued_behind_head = tenant.queue.len();
        let cap = self.effective_max_batch(head.class, queued_behind_head);
        if cap <= 1 {
            return rest;
        }
        // Preempt **coalescing**, never execution: a queued latency-class
        // job — any tenant's — stops a throughput batch from growing past
        // its head, so the latency job's dispatch is at most one short
        // device call away. Batches already executing are untouched.
        if !head.class.is_latency() && self.queued_latency > 0 {
            return rest;
        }
        let mut idx = 0usize;
        let mut scanned = 0usize;
        loop {
            let tenant = self.tenants.get_mut(name).expect("tenant exists");
            if rest.len() + 1 >= cap || idx >= tenant.queue.len() || scanned >= MAX_BATCH_SCAN {
                break;
            }
            scanned += 1;
            if tenant.queue[idx].batch_key != Some(key) {
                idx += 1;
                continue;
            }
            // Members must share the head's class: one batch rides one cap
            // and one latency promise. (A latency head never reaches a
            // throughput member anyway — class ordering puts every latency
            // job ahead — so this guards the converse.)
            if tenant.queue[idx].class.is_latency() != head.class.is_latency() {
                idx += 1;
                continue;
            }
            // A batch routes by its head's device exclusions: a member
            // excluded from some device the head is not could ride back
            // onto the device that faulted it. Only coalesce members whose
            // exclusion set is a subset of the head's.
            if !self
                .fleet
                .exclusions_subset(tenant.queue[idx].id.0, head.id.0)
            {
                idx += 1;
                continue;
            }
            let member_cost = effective_cost(&self.cost_model, &tenant.queue[idx]);
            if contended && tenant.deficit < member_cost {
                break;
            }
            if tenant
                .policy
                .max_in_flight
                .is_some_and(|cap| tenant.in_flight >= cap.max(1))
            {
                break;
            }
            // Retries are token-exempt (already paid at original dispatch):
            // they neither stop the batch on an empty bucket nor spend.
            if !drain && !tenant.queue[idx].retry && tenant.policy.rate_limit.is_some() {
                tenant.refill(now);
                if tenant.tokens < 1.0 {
                    break;
                }
                tenant.tokens -= 1.0;
            }
            let member = self.take_job(name, idx);
            let tenant = self.tenants.get_mut(name).expect("tenant exists");
            tenant.deficit -= member_cost;
            if !contended {
                tenant.deficit = tenant.deficit.max(0.0);
            }
            tenant.in_flight += 1;
            tenant.dispatched += 1;
            let wait = now.saturating_duration_since(member.submitted);
            tenant.total_wait_seconds += wait.as_secs_f64();
            self.metrics.dispatched += 1;
            self.ledger_mut(member.class).dispatched += 1;
            self.in_flight.insert(
                member.id,
                InFlight {
                    tenant: Arc::clone(name),
                    cost: member_cost,
                    batch_key: member.batch_key,
                    requirements: member.requirements,
                    placement: member.placement.clone(),
                    device: None,
                    class: member.class,
                    deadline: member.deadline,
                },
            );
            let wait_us = wait.as_micros() as u64;
            self.obs.observe_wait(
                name,
                member.placement.as_ref().map(|p| p.backend.name()),
                wait_us,
            );
            self.obs.observe_class_wait(member.class.name(), wait_us);
            rest.push(BatchMember {
                id: member.id,
                wait_us,
                cost: member_cost,
            });
        }
        if !rest.is_empty() {
            self.metrics.batches += 1;
            self.metrics.batched_jobs += rest.len() as u64 + 1;
        }
        rest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::time::Duration;

    fn noop_registry() -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry::new(Arc::new(qml_observe::NoopTracer)))
    }

    fn sched_with(policies: &[(&str, TenantPolicy)]) -> (FairScheduler, Vec<Arc<str>>) {
        let mut sched = FairScheduler::new(8, 2, false, 0.4, 16.0, noop_registry());
        sched.mode = Mode::Running;
        let names = policies
            .iter()
            .map(|(name, policy)| sched.intern(name, policy))
            .collect();
        (sched, names)
    }

    #[test]
    fn interning_deduplicates_names() {
        let (mut sched, names) = sched_with(&[("alice", TenantPolicy::default())]);
        let again = sched.intern("alice", &TenantPolicy::default());
        assert!(Arc::ptr_eq(&names[0], &again));
    }

    #[test]
    fn round_robin_alternates_between_equal_tenants() {
        let (mut sched, names) = sched_with(&[
            ("a", TenantPolicy::default()),
            ("b", TenantPolicy::default()),
        ]);
        // a gets jobs 0..4, b gets 10..14, all equal cost.
        for i in 0..4 {
            sched.admit(&names[0], JobId(i), 1.0, None, None, None);
            sched.admit(&names[1], JobId(10 + i), 1.0, None, None, None);
        }
        let now = Instant::now();
        let mut order = Vec::new();
        while let SchedPoll::Dispatch(dispatch) = sched.next_job(now) {
            sched.release(dispatch.id);
            order.push(dispatch.id.0 / 10); // 0 = tenant a, 1 = tenant b
        }
        // Strict alternation: no tenant dispatches twice in a row while the
        // other has work.
        for pair in order.windows(2) {
            assert_ne!(pair[0], pair[1], "alternation broken: {order:?}");
        }
        assert_eq!(order.len(), 8);
    }

    #[test]
    fn single_job_tenant_preempts_a_long_sweep() {
        let (mut sched, names) = sched_with(&[
            ("whale", TenantPolicy::default()),
            ("minnow", TenantPolicy::default()),
        ]);
        for i in 0..100 {
            sched.admit(&names[0], JobId(i), 5.0, None, None, None);
        }
        sched.admit(&names[1], JobId(1000), 5.0, None, None, None);
        let now = Instant::now();
        let mut dispatched_before_minnow = 0;
        loop {
            match sched.next_job(now) {
                SchedPoll::Dispatch(JobDispatch {
                    id: JobId(1000), ..
                }) => break,
                SchedPoll::Dispatch(dispatch) => {
                    sched.release(dispatch.id);
                    dispatched_before_minnow += 1;
                }
                other => panic!("unexpected poll {other:?}"),
            }
        }
        assert!(
            dispatched_before_minnow <= 2,
            "minnow waited behind {dispatched_before_minnow} whale jobs"
        );
    }

    #[test]
    fn weights_bias_the_dispatch_ratio() {
        let (mut sched, names) = sched_with(&[
            ("heavy", TenantPolicy::default().with_weight(3.0)),
            ("light", TenantPolicy::default()),
        ]);
        for i in 0..60 {
            sched.admit(&names[0], JobId(i), 1.0, None, None, None);
            sched.admit(&names[1], JobId(100 + i), 1.0, None, None, None);
        }
        let now = Instant::now();
        let mut heavy_in_first_40 = 0;
        for _ in 0..40 {
            match sched.next_job(now) {
                SchedPoll::Dispatch(dispatch) => {
                    sched.release(dispatch.id);
                    if dispatch.id.0 < 100 {
                        heavy_in_first_40 += 1;
                    }
                }
                other => panic!("unexpected poll {other:?}"),
            }
        }
        // 3:1 weights → roughly 30 of the first 40 dispatches are heavy's.
        assert!(
            (25..=35).contains(&heavy_in_first_40),
            "expected ~30 heavy dispatches, got {heavy_in_first_40}"
        );
    }

    #[test]
    fn in_flight_cap_blocks_further_dispatches() {
        let (mut sched, names) =
            sched_with(&[("capped", TenantPolicy::default().with_max_in_flight(1))]);
        sched.admit(&names[0], JobId(0), 1.0, None, None, None);
        sched.admit(&names[0], JobId(1), 1.0, None, None, None);
        let now = Instant::now();
        let SchedPoll::Dispatch(first) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        assert!(
            matches!(sched.next_job(now), SchedPoll::Idle),
            "cap of 1 respected"
        );
        assert!(sched.metrics.capped > 0);
        sched.release(first.id);
        assert!(matches!(sched.next_job(now), SchedPoll::Dispatch(_)));
    }

    #[test]
    fn burst_only_rate_limit_throttles_after_burst() {
        let (mut sched, names) = sched_with(&[(
            "limited",
            TenantPolicy::default().with_rate_limit(RateLimit {
                jobs_per_second: 0.0,
                burst: 2.0,
            }),
        )]);
        for i in 0..5 {
            sched.admit(&names[0], JobId(i), 1.0, None, None, None);
        }
        let now = Instant::now();
        for _ in 0..2 {
            let SchedPoll::Dispatch(dispatch) = sched.next_job(now) else {
                panic!("burst tokens should dispatch");
            };
            sched.release(dispatch.id);
        }
        assert!(matches!(sched.next_job(now), SchedPoll::Idle));
        assert!(sched.metrics.throttled > 0);
        // A drain waives the rate limit so shutdown terminates.
        sched.mode = Mode::Draining;
        assert!(matches!(sched.next_job(now), SchedPoll::Dispatch(_)));
    }

    #[test]
    fn drain_shuts_down_only_when_empty_and_nothing_in_flight() {
        let (mut sched, names) = sched_with(&[("t", TenantPolicy::default())]);
        sched.admit(&names[0], JobId(0), 1.0, None, None, None);
        sched.mode = Mode::Draining;
        let now = Instant::now();
        let SchedPoll::Dispatch(dispatch) = sched.next_job(now) else {
            panic!("drain dispatches pending work");
        };
        // Still in flight: other workers idle rather than exit.
        assert!(matches!(sched.next_job(now), SchedPoll::Idle));
        sched.release(dispatch.id);
        assert!(matches!(sched.next_job(now), SchedPoll::Shutdown));
    }

    #[test]
    fn abort_stops_dispatching_immediately() {
        let (mut sched, names) = sched_with(&[("t", TenantPolicy::default())]);
        sched.admit(&names[0], JobId(0), 1.0, None, None, None);
        sched.mode = Mode::Aborting;
        assert!(matches!(
            sched.next_job(Instant::now()),
            SchedPoll::Shutdown
        ));
        assert_eq!(sched.queued(), 1, "aborted work stays queued");
    }

    #[test]
    fn historical_expensive_job_does_not_inflate_the_quantum() {
        // A cost-500 job once existed and was dispatched long ago. Later a
        // whale queues many cost-1 jobs and a minnow queues one: the quantum
        // must reflect the *current* queues (1.0), so the whale serves ~one
        // job per visit and the minnow still preempts within a couple of
        // dispatches — a stale high-water quantum would let the whale serve
        // hundreds per visit.
        let (mut sched, names) = sched_with(&[
            ("whale", TenantPolicy::default()),
            ("minnow", TenantPolicy::default()),
        ]);
        let now = Instant::now();
        sched.admit(&names[0], JobId(9999), 500.0, None, None, None);
        let SchedPoll::Dispatch(big) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        sched.release(big.id);

        for i in 0..300 {
            sched.admit(&names[0], JobId(i), 1.0, None, None, None);
        }
        sched.admit(&names[1], JobId(1000), 1.0, None, None, None);
        let mut whale_before_minnow = 0;
        loop {
            match sched.next_job(now) {
                SchedPoll::Dispatch(JobDispatch {
                    id: JobId(1000), ..
                }) => break,
                SchedPoll::Dispatch(dispatch) => {
                    sched.release(dispatch.id);
                    whale_before_minnow += 1;
                }
                other => panic!("unexpected poll {other:?}"),
            }
        }
        assert!(
            whale_before_minnow <= 2,
            "stale quantum: {whale_before_minnow} whale jobs before the minnow"
        );
    }

    #[test]
    fn zero_cost_jobs_still_spend_deficit_no_monopoly() {
        // Regression: hint-less bundles (and failed placements) admit with a
        // 0.0 cost estimate. Before the MIN_JOB_COST floor such jobs spent
        // zero deficit, so the first-visited tenant's queue drained entirely
        // in one parked visit — the exact monopoly DRR exists to prevent.
        // With the floor, dispatch order interleaves strictly.
        let (mut sched, names) = sched_with(&[
            ("hintless", TenantPolicy::default()),
            ("normal", TenantPolicy::default()),
        ]);
        for i in 0..6 {
            sched.admit(&names[0], JobId(i), 0.0, None, None, None);
            sched.admit(&names[1], JobId(100 + i), 1.0, None, None, None);
        }
        let now = Instant::now();
        let mut order = Vec::new();
        while let SchedPoll::Dispatch(dispatch) = sched.next_job(now) {
            sched.release(dispatch.id);
            order.push(dispatch.id.0 / 100); // 0 = hintless, 1 = normal
        }
        assert_eq!(order.len(), 12);
        for pair in order.windows(2) {
            assert_ne!(
                pair[0], pair[1],
                "hint-less tenant monopolized the rotation: {order:?}"
            );
        }
    }

    #[test]
    fn uncontended_tenant_coalesces_up_to_max_batch() {
        // A solo tenant has nobody to be fair to: plan-compatible jobs
        // coalesce into micro-batches of max_batch regardless of deficit.
        let (mut sched, names) = sched_with(&[("solo", TenantPolicy::default())]);
        for i in 0..10 {
            sched.admit(&names[0], JobId(i), 1.0, None, None, Some(42));
        }
        let now = Instant::now();
        let SchedPoll::Dispatch(first) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        assert_eq!(first.len(), 8, "uncontended batches to the cap");
        assert_eq!(
            first.ids().collect::<Vec<_>>(),
            (0..8).map(JobId).collect::<Vec<_>>(),
            "members coalesce in queue order"
        );
        for id in first.ids() {
            sched.release(id);
        }
        let SchedPoll::Dispatch(second) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        assert_eq!(second.len(), 2, "the remainder forms the next batch");
        assert_eq!(sched.metrics.batches, 2);
        assert_eq!(sched.metrics.batched_jobs, 10);
        assert_eq!(sched.metrics.dispatched, 10, "accounting is per member");
        assert!((sched.metrics.mean_batch_size() - 5.0).abs() < 1e-12);
        assert_eq!(sched.metrics.solo_jobs(), 0);
    }

    #[test]
    fn adaptive_batching_scales_the_cap_with_queue_depth() {
        let mut sched = FairScheduler::new(8, 2, true, 0.4, 16.0, noop_registry());
        sched.mode = Mode::Running;
        let name = sched.intern("solo", &TenantPolicy::default());

        // Deep backlog: 16 compatible jobs → the first dispatch still
        // batches all the way to the fixed cap.
        for i in 0..16 {
            sched.admit(&name, JobId(i), 1.0, None, None, Some(42));
        }
        let now = Instant::now();
        let SchedPoll::Dispatch(first) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        assert_eq!(first.len(), 8, "deep queue batches to max_batch");
        first.ids().for_each(|id| sched.release(id));

        // 8 left; head taken → 7 behind → cap 7/2+1 = 4.
        let SchedPoll::Dispatch(second) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        assert_eq!(second.len(), 4, "mid-depth queue halves the batch");
        second.ids().for_each(|id| sched.release(id));

        // 4 left; head taken → 3 behind → cap 2.
        let SchedPoll::Dispatch(third) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        assert_eq!(third.len(), 2, "shallow queue ships small batches");
        third.ids().for_each(|id| sched.release(id));
    }

    #[test]
    fn adaptive_batching_off_keeps_the_fixed_cap() {
        let (mut sched, names) = sched_with(&[("solo", TenantPolicy::default())]);
        for i in 0..4 {
            sched.admit(&names[0], JobId(i), 1.0, None, None, Some(42));
        }
        let SchedPoll::Dispatch(batch) = sched.next_job(Instant::now()) else {
            panic!("expected dispatch");
        };
        assert_eq!(batch.len(), 4, "fixed cap takes the whole shallow queue");
    }

    #[test]
    fn contended_batches_stay_within_the_drr_budget() {
        // Under contention a batch may only spend the deficit its tenant was
        // credited: weight 3 affords three equal-cost members per visit,
        // weight 1 dispatches solo — the ratio weights promise is untouched.
        let (mut sched, names) = sched_with(&[
            ("heavy", TenantPolicy::default().with_weight(3.0)),
            ("light", TenantPolicy::default()),
        ]);
        for i in 0..9 {
            sched.admit(&names[0], JobId(i), 1.0, None, None, Some(1));
        }
        for i in 0..3 {
            sched.admit(&names[1], JobId(100 + i), 1.0, None, None, Some(2));
        }
        let now = Instant::now();
        let SchedPoll::Dispatch(heavy) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        assert_eq!(heavy.len(), 3, "weight-3 budget covers three members");
        heavy.ids().for_each(|id| sched.release(id));
        let SchedPoll::Dispatch(light) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        assert_eq!(light.len(), 1, "weight-1 tenant dispatches solo");
        sched.release(light.id);
    }

    #[test]
    fn different_batch_keys_never_coalesce() {
        let (mut sched, names) = sched_with(&[("t", TenantPolicy::default())]);
        sched.admit(&names[0], JobId(0), 1.0, None, None, Some(7));
        sched.admit(&names[0], JobId(1), 1.0, None, None, Some(8));
        sched.admit(&names[0], JobId(2), 1.0, None, None, Some(7));
        let now = Instant::now();
        let SchedPoll::Dispatch(first) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        // Key 7 members coalesce across the interleaved key-8 job...
        assert_eq!(first.ids().collect::<Vec<_>>(), vec![JobId(0), JobId(2)]);
        first.ids().for_each(|id| sched.release(id));
        // ...which then dispatches alone.
        let SchedPoll::Dispatch(second) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        assert_eq!(second.ids().collect::<Vec<_>>(), vec![JobId(1)]);
    }

    #[test]
    fn rate_limited_batches_spend_one_token_per_member() {
        let (mut sched, names) = sched_with(&[(
            "limited",
            TenantPolicy::default().with_rate_limit(RateLimit {
                jobs_per_second: 0.0,
                burst: 3.0,
            }),
        )]);
        for i in 0..6 {
            sched.admit(&names[0], JobId(i), 1.0, None, None, Some(5));
        }
        let now = Instant::now();
        let SchedPoll::Dispatch(burst) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        assert_eq!(burst.len(), 3, "the batch stops at the token budget");
        assert!(matches!(sched.next_job(now), SchedPoll::Idle));
    }

    #[test]
    fn capped_tenant_batches_stop_at_the_in_flight_cap() {
        let (mut sched, names) =
            sched_with(&[("capped", TenantPolicy::default().with_max_in_flight(2))]);
        for i in 0..6 {
            sched.admit(&names[0], JobId(i), 1.0, None, None, Some(5));
        }
        let now = Instant::now();
        let SchedPoll::Dispatch(first) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        assert_eq!(first.len(), 2, "cap of 2 bounds the batch");
        assert!(matches!(sched.next_job(now), SchedPoll::Idle));
        first.ids().for_each(|id| sched.release(id));
        assert!(matches!(sched.next_job(now), SchedPoll::Dispatch(_)));
    }

    /// Drive a two-tenant scheduler where tenant `under`'s jobs are admitted
    /// at 10×-too-low estimates while tenant `exact`'s are accurate; both
    /// actually run for `real_seconds`. Feedback (measured outcomes) is
    /// delivered `feedback_lag` dispatches late, simulating pipelined
    /// workers. Returns the per-tenant busy-seconds after `dispatches` jobs.
    fn drive_mis_estimated(
        sched: &mut FairScheduler,
        real_seconds: f64,
        feedback_lag: usize,
        dispatches: usize,
    ) -> (f64, f64) {
        let now = Instant::now();
        let mut pending: VecDeque<JobId> = VecDeque::new();
        let mut busy = [0.0f64; 2];
        for _ in 0..dispatches {
            let SchedPoll::Dispatch(dispatch) = sched.next_job(now) else {
                panic!("queues are deep enough to keep dispatching");
            };
            assert_eq!(dispatch.len(), 1, "keyless jobs dispatch solo");
            busy[(dispatch.id.0 / 1000) as usize] += real_seconds;
            pending.push_back(dispatch.id);
            while pending.len() > feedback_lag {
                let id = pending.pop_front().expect("non-empty");
                sched.record_outcome(id, real_seconds, true);
            }
        }
        (busy[0], busy[1])
    }

    fn mis_estimated_sched(charge_back_clamp: f64) -> (FairScheduler, Vec<Arc<str>>) {
        let mut sched = FairScheduler::new(1, 2, false, 0.4, charge_back_clamp, noop_registry());
        sched.mode = Mode::Running;
        let names: Vec<Arc<str>> = [("under", ()), ("exact", ())]
            .iter()
            .map(|(name, _)| sched.intern(name, &TenantPolicy::default()))
            .collect();
        // Every job really costs 10 ms (= 10 cost units). `under`'s jobs are
        // hint-less (floored at MIN_JOB_COST = 1.0, a 10× under-estimate);
        // `exact`'s are admitted at their true cost.
        for i in 0..400 {
            sched.admit(&names[0], JobId(i), 0.0, None, None, None);
            sched.admit(&names[1], JobId(1000 + i), 10.0, None, None, None);
        }
        (sched, names)
    }

    #[test]
    fn under_estimated_tenant_monopolizes_without_charge_back() {
        // The regression this PR fixes: with charge-back disabled (clamp 0,
        // the old estimate-unit scheduler), a tenant whose jobs are 10×
        // under-estimated receives ~10× its fair share of busy-seconds at
        // equal weight.
        let (mut sched, _names) = mis_estimated_sched(0.0);
        let (under, exact) = drive_mis_estimated(&mut sched, 0.010, 0, 220);
        assert!(
            under / exact > 5.0,
            "without charge-back the mis-estimated tenant must dominate \
             (got {under:.3}s vs {exact:.3}s)"
        );
    }

    #[test]
    fn charge_back_converges_busy_seconds_to_the_weight_ratio() {
        // With measured-cost charge-back, equal weights mean equal
        // busy-seconds even though one tenant's estimates are 10× too low:
        // the ratio must land within 25% of the 1:1 weight ratio.
        let (mut sched, _names) = mis_estimated_sched(16.0);
        let (under, exact) = drive_mis_estimated(&mut sched, 0.010, 0, 220);
        let ratio = under / exact;
        assert!(
            (0.75..=1.25).contains(&ratio),
            "busy-seconds ratio {ratio:.3} outside the 25% band \
             ({under:.3}s vs {exact:.3}s)"
        );
    }

    #[test]
    fn charge_back_converges_with_pipelined_feedback() {
        // Outcomes land 4 dispatches late (workers execute while the
        // scheduler keeps dispatching); the correction still converges.
        let (mut sched, _names) = mis_estimated_sched(16.0);
        let (under, exact) = drive_mis_estimated(&mut sched, 0.010, 4, 220);
        let ratio = under / exact;
        assert!(
            (0.75..=1.25).contains(&ratio),
            "busy-seconds ratio {ratio:.3} outside the 25% band under \
             delayed feedback ({under:.3}s vs {exact:.3}s)"
        );
    }

    #[test]
    fn measured_outcomes_reprice_later_admissions() {
        let (mut sched, names) = sched_with(&[("t", TenantPolicy::default())]);
        sched.admit(&names[0], JobId(0), 1.0, None, None, Some(5));
        let now = Instant::now();
        let SchedPoll::Dispatch(first) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        sched.record_outcome(first.id, 0.020, true);
        // The model learned 20 ms for plan key 5: the next admission of the
        // same plan is charged 20 cost units no matter what it estimates.
        assert_eq!(sched.predicted_cost(5), Some(20.0));
        sched.admit(&names[0], JobId(1), 1.0, None, None, Some(5));
        assert_eq!(sched.head_cost_of(&names[0]), Some(20.0));
        // A different plan key is untouched.
        sched.admit(&names[0], JobId(2), 3.0, None, None, Some(6));
        assert_eq!(sched.predicted_cost(6), None);
        assert_eq!(sched.metrics.cost_samples, 1);
        assert!(sched.metrics.estimate_error_units > 18.9);
        assert!(sched.metrics.mean_abs_estimate_error() > 18.9);
    }

    #[test]
    fn measurements_reprice_already_queued_jobs_and_the_quantum() {
        // Jobs queued at a wild over-estimate are repriced the moment their
        // plan is measured: subsequent dispatches spend measured units and
        // the quantum deflates with them, so visit bursts shrink from
        // guess scale to measured scale without an O(queue) reprice pass.
        let (mut sched, names) = sched_with(&[
            ("a", TenantPolicy::default()),
            ("b", TenantPolicy::default()),
        ]);
        // Both tenants run the *same* plan (one key), guessed at 80 units.
        for i in 0..4 {
            sched.admit(&names[0], JobId(i), 80.0, None, None, Some(1));
            sched.admit(&names[1], JobId(100 + i), 80.0, None, None, Some(1));
        }
        assert_eq!(sched.quantum(), 80.0);
        let now = Instant::now();
        let SchedPoll::Dispatch(first) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        assert_eq!(first.len(), 1, "no deficit left for 80-unit members");
        // The measurement says 2 ms (= 2 units): every queued job of the
        // plan is repriced at once, quantum included.
        sched.record_outcome(first.id, 0.002, true);
        let quantum = sched.quantum();
        assert!(
            (quantum - 2.0).abs() < 1e-9,
            "queued heads must be repriced by the model, quantum {quantum}"
        );
        // The next dispatch spends measured units: the charge-back refund
        // (~78) now covers tenant a's three remaining jobs at 2 units each —
        // at the stale 80-unit guess it would not cover even one member.
        let SchedPoll::Dispatch(second) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        assert_eq!(
            second.len(),
            3,
            "repriced members coalesce within the refunded deficit"
        );
    }

    #[test]
    fn duration_hints_seed_the_model_and_price_admission() {
        let (mut sched, names) = sched_with(&[("t", TenantPolicy::default())]);
        // An explicit 5 ms duration hint prices the job at 5 cost units and
        // seeds the model (samples = 0: a prior, not a measurement).
        sched.admit(&names[0], JobId(0), 80.0, Some(0.005), None, Some(9));
        assert_eq!(sched.head_cost_of(&names[0]), Some(5.0));
        assert_eq!(sched.predicted_cost(9), Some(5.0));
        // Once a real measurement lands it blends with (not replaces) the
        // hinted prior, and later hints no longer matter.
        let now = Instant::now();
        let SchedPoll::Dispatch(first) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        sched.record_outcome(first.id, 0.015, true);
        let repriced = sched.predicted_cost(9).expect("model has the key");
        assert!(
            repriced > 5.0 && repriced < 15.0,
            "EWMA blends prior and measurement, got {repriced}"
        );
        sched.admit(&names[0], JobId(1), 80.0, Some(0.005), None, Some(9));
        assert_eq!(sched.head_cost_of(&names[0]), Some(repriced));
    }

    #[test]
    fn charge_back_is_clamped_per_job() {
        let (mut sched, names) = sched_with(&[
            ("outlier", TenantPolicy::default()),
            ("other", TenantPolicy::default()),
        ]);
        // Keep "other" queued so the outlier tenant is contended (charge-back
        // only applies under contention).
        sched.admit(&names[1], JobId(100), 1.0, None, None, None);
        sched.admit(&names[0], JobId(0), 1.0, None, None, None);
        let now = Instant::now();
        let SchedPoll::Dispatch(first) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        let before = sched.deficit_of(&names[0]);
        // A pathological 1-second (1000 cost units) outlier against a 1-unit
        // estimate: the correction is clamped at 16 × 1 = 16 units, not 999.
        sched.record_outcome(first.id, 1.0, true);
        let after = sched.deficit_of(&names[0]);
        assert!(
            (before - after - 16.0).abs() < 1e-9,
            "clamped charge-back expected 16 units, got {}",
            before - after
        );
        // The full observation still reaches the error gauges and the
        // charge-back total records the post-clamp magnitude.
        assert!(sched.metrics.estimate_error_units > 990.0);
        assert!((sched.metrics.charge_back_units - 16.0).abs() < 1e-9);
    }

    #[test]
    fn uncontended_outcomes_do_not_bank_credit_or_debt() {
        // A tenant running alone has nobody to be fair to: over-estimated
        // outcomes must not bank credit that would starve a late-arriving
        // competitor (and under-estimated ones must not bank debt).
        let (mut sched, names) = sched_with(&[("solo", TenantPolicy::default())]);
        for i in 0..4 {
            sched.admit(&names[0], JobId(i), 50.0, None, None, None);
        }
        let now = Instant::now();
        for _ in 0..4 {
            let SchedPoll::Dispatch(d) = sched.next_job(now) else {
                panic!("expected dispatch");
            };
            // Massively over-estimated: measured 1 ms against a 50-unit
            // charge would refund ~49 units per job if banked.
            sched.record_outcome(d.id, 0.001, true);
        }
        assert!(
            sched.deficit_of(&names[0]) <= 50.0 + 1e-9,
            "uncontended refunds must not bank deficit credit, got {}",
            sched.deficit_of(&names[0])
        );
        assert_eq!(sched.metrics.charge_back_units, 0.0);
    }

    #[test]
    fn debt_survives_vetoes_but_credit_does_not() {
        let (mut sched, names) = sched_with(&[
            ("debtor", TenantPolicy::default()),
            ("other", TenantPolicy::default()),
        ]);
        sched.admit(&names[0], JobId(0), 1.0, None, None, None);
        sched.admit(&names[1], JobId(100), 1.0, None, None, None);
        sched.admit(&names[1], JobId(101), 1.0, None, None, None);
        let now = Instant::now();
        // Dispatch the debtor's only job and measure it 10× its estimate:
        // the debtor now owes ~9 units.
        let SchedPoll::Dispatch(first) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        assert_eq!(first.id, JobId(0));
        sched.record_outcome(first.id, 0.010, true);
        let debt = sched.deficit_of(&names[0]);
        assert!(debt < -8.0, "expected ~-9 debt, got {debt}");
        // The debtor's queue is now empty: its next visit vetoes it. The
        // veto must forfeit credit only — the debt stays on the books.
        while let SchedPoll::Dispatch(d) = sched.next_job(now) {
            sched.release(d.id);
        }
        assert!(
            sched.deficit_of(&names[0]) < -8.0,
            "veto must not forgive measured-cost debt, got {}",
            sched.deficit_of(&names[0])
        );
    }

    #[test]
    fn failed_outcomes_do_not_feed_the_model_or_earn_refunds() {
        let (mut sched, names) = sched_with(&[
            ("flaky", TenantPolicy::default()),
            ("other", TenantPolicy::default()),
        ]);
        // Contention, so a refund would apply if failures earned one.
        sched.admit(&names[1], JobId(100), 1.0, None, None, None);
        sched.admit(&names[0], JobId(0), 50.0, None, None, Some(4));
        let now = Instant::now();
        let SchedPoll::Dispatch(first) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        assert_eq!(first.id, JobId(0));
        let before = sched.deficit_of(&names[0]);
        // The job dies at bind time after 1 µs: failure latency, not cost.
        sched.record_outcome(first.id, 1e-6, false);
        assert_eq!(
            sched.predicted_cost(4),
            None,
            "failure latency must not become the plan's cost estimate"
        );
        assert_eq!(sched.metrics.cost_samples, 0);
        assert_eq!(
            sched.deficit_of(&names[0]),
            before,
            "a fast failure earns no charge-back refund"
        );
        let (_, gauges) = &sched.gauges()[0];
        assert!(
            gauges.busy_seconds > 0.0,
            "the slot and wall-clock were real"
        );
        assert_eq!(sched.in_flight(), 0, "the slot is released");
    }

    #[test]
    fn disabled_model_ignores_duration_hints_too() {
        // alpha <= 0 must restore *pure* estimate-unit admission: hints are
        // part of the measured-cost path and must not reprice either.
        let mut sched = FairScheduler::new(8, 2, false, 0.0, 16.0, noop_registry());
        sched.mode = Mode::Running;
        let name = sched.intern("t", &TenantPolicy::default());
        sched.admit(&name, JobId(0), 40.0, Some(0.005), None, Some(9));
        assert_eq!(sched.head_cost_of(&name), Some(40.0));
        assert_eq!(sched.predicted_cost(9), None, "no hint seeding either");
    }

    #[test]
    fn stale_now_cannot_rewind_the_refill_clock() {
        use std::time::Duration;
        let (mut sched, names) = sched_with(&[(
            "limited",
            TenantPolicy::default().with_rate_limit(RateLimit {
                jobs_per_second: 500.0,
                burst: 2.0,
            }),
        )]);
        for i in 0..8 {
            sched.admit(&names[0], JobId(i), 1.0, None, None, None);
        }
        let t0 = Instant::now();
        // Burst of 2, then one refilled token 2 ms later: 3 dispatches.
        for _ in 0..2 {
            let SchedPoll::Dispatch(d) = sched.next_job(t0) else {
                panic!("burst tokens should dispatch");
            };
            sched.release(d.id);
        }
        let t1 = t0 + Duration::from_millis(2);
        let SchedPoll::Dispatch(d) = sched.next_job(t1) else {
            panic!("one refilled token at t0+2ms");
        };
        sched.release(d.id);
        // A stale clock read (a worker that captured `now` before the t1
        // refill was serialized ahead of it) must be a no-op: it must not
        // rewind `last_refill` to t0 and double-credit the 0..2 ms interval.
        assert!(matches!(sched.next_job(t0), SchedPoll::Idle));
        let t2 = t0 + Duration::from_millis(4);
        let SchedPoll::Dispatch(d) = sched.next_job(t2) else {
            panic!("exactly one more token by t0+4ms");
        };
        sched.release(d.id);
        assert!(
            matches!(sched.next_job(t2), SchedPoll::Idle),
            "double-refill: the 0..2ms interval was credited twice"
        );
    }

    #[test]
    fn stale_now_clamps_wait_accounting_to_zero() {
        use std::time::Duration;
        let (mut sched, names) = sched_with(&[("t", TenantPolicy::default())]);
        let past = Instant::now() - Duration::from_secs(5);
        sched.admit(&names[0], JobId(0), 1.0, None, None, None);
        let SchedPoll::Dispatch(d) = sched.next_job(past) else {
            panic!("expected dispatch");
        };
        sched.release(d.id);
        let (_, gauges) = &sched.gauges()[0];
        assert!(
            gauges.total_wait_seconds >= 0.0 && gauges.total_wait_seconds < 1.0,
            "a stale now must clamp the wait to zero, got {}",
            gauges.total_wait_seconds
        );
    }

    #[test]
    fn memoized_quantum_matches_a_brute_force_rescan() {
        fn brute_force(sched: &FairScheduler) -> f64 {
            sched
                .tenants
                .values()
                .filter_map(|t| t.queue.front())
                .map(|job| job.cost)
                .fold(1.0, f64::max)
        }
        let (mut sched, names) = sched_with(&[
            ("a", TenantPolicy::default()),
            ("b", TenantPolicy::default()),
        ]);
        let now = Instant::now();
        let costs = [5.0, 120.0, 1.0, 60.0, 3.0, 250.0, 9.0];
        for (i, cost) in costs.iter().enumerate() {
            sched.admit(&names[i % 2], JobId(i as u64), *cost, None, None, None);
            assert_eq!(sched.quantum(), brute_force(&sched), "after admit {i}");
        }
        // Drain, checking the memo against the rescan after every pop (the
        // 250-cost head leaving must deflate the quantum, not linger as a
        // high-water mark).
        while let SchedPoll::Dispatch(d) = sched.next_job(now) {
            sched.release(d.id);
            assert_eq!(sched.quantum(), brute_force(&sched), "after a pop");
        }
        assert_eq!(sched.quantum(), 1.0, "empty queues fall back to 1.0");
    }

    #[test]
    fn interned_but_empty_tenants_do_not_count_as_contention() {
        // The O(1) non-empty counter must mirror "has queued work", not
        // "exists": a second tenant with an empty queue leaves the first
        // uncontended, which batches to the cap regardless of deficit.
        let (mut sched, names) = sched_with(&[
            ("busy", TenantPolicy::default()),
            ("idle", TenantPolicy::default()),
        ]);
        let _ = &names[1];
        for i in 0..8 {
            sched.admit(&names[0], JobId(i), 1.0, None, None, Some(3));
        }
        let SchedPoll::Dispatch(first) = sched.next_job(Instant::now()) else {
            panic!("expected dispatch");
        };
        assert_eq!(first.len(), 8, "an interned-but-empty tenant is nobody");
    }

    #[test]
    fn cost_ranked_within_a_tenant() {
        let (mut sched, names) = sched_with(&[("t", TenantPolicy::default())]);
        sched.admit(&names[0], JobId(0), 1.0, None, None, None);
        sched.admit(&names[0], JobId(1), 9.0, None, None, None);
        sched.admit(&names[0], JobId(2), 4.0, None, None, None);
        let now = Instant::now();
        let mut order = Vec::new();
        while let SchedPoll::Dispatch(dispatch) = sched.next_job(now) {
            sched.release(dispatch.id);
            order.push(dispatch.id.0);
        }
        assert_eq!(order, vec![1, 2, 0], "longest-first within the tenant");
    }

    /// Shorthand: admit a latency-class job with an explicit absolute
    /// deadline (what the service resolves from `ServiceClass::deadline()`
    /// at submission).
    fn admit_latency(
        sched: &mut FairScheduler,
        tenant: &Arc<str>,
        id: JobId,
        cost: f64,
        deadline: Option<Instant>,
    ) {
        sched.admit_job(
            tenant,
            Admission {
                class: ServiceClass::latency(),
                deadline,
                ..Admission::job(id, cost)
            },
        );
    }

    #[test]
    fn latency_class_precedes_throughput_with_edf_inside() {
        // Interleaved admissions across both classes; cost is deliberately
        // adversarial (the cheapest job is latency-class) so the test pins
        // class-then-EDF, not a cost accident.
        let (mut sched, names) = sched_with(&[("t", TenantPolicy::default())]);
        let base = Instant::now();
        sched.admit(&names[0], JobId(0), 1.0, None, None, None);
        admit_latency(
            &mut sched,
            &names[0],
            JobId(1),
            0.1,
            Some(base + Duration::from_secs(5)),
        );
        sched.admit(&names[0], JobId(2), 9.0, None, None, None);
        admit_latency(&mut sched, &names[0], JobId(3), 0.1, None);
        admit_latency(
            &mut sched,
            &names[0],
            JobId(4),
            0.1,
            Some(base + Duration::from_secs(1)),
        );
        admit_latency(
            &mut sched,
            &names[0],
            JobId(5),
            0.1,
            Some(base + Duration::from_secs(5)),
        );
        let now = Instant::now();
        let mut order = Vec::new();
        while let SchedPoll::Dispatch(dispatch) = sched.next_job(now) {
            sched.release(dispatch.id);
            order.push(dispatch.id.0);
        }
        // Latency first: EDF (1s, then the 5s pair FIFO), deadline-free
        // last; then throughput longest-first.
        assert_eq!(order, vec![4, 1, 5, 3, 2, 0], "class → EDF → LPT");
    }

    #[test]
    fn latency_batches_stop_at_the_latency_cap() {
        // One tenant, both classes sharing plan-compatible work: latency
        // dispatches ride the small fixed cap (2 in `sched_with`) while
        // throughput still coalesces to the full max_batch (8).
        let (mut sched, names) = sched_with(&[("solo", TenantPolicy::default())]);
        for i in 0..4 {
            sched.admit_job(
                &names[0],
                Admission {
                    class: ServiceClass::latency(),
                    batch_key: Some(7),
                    ..Admission::job(JobId(i), 1.0)
                },
            );
        }
        for i in 10..18 {
            sched.admit(&names[0], JobId(i), 1.0, None, None, Some(7));
        }
        let now = Instant::now();
        let mut sizes = Vec::new();
        while let SchedPoll::Dispatch(dispatch) = sched.next_job(now) {
            let latency = dispatch.class.is_latency();
            sizes.push((latency, dispatch.len()));
            dispatch.ids().for_each(|id| sched.release(id));
        }
        assert_eq!(
            sizes,
            vec![(true, 2), (true, 2), (false, 8)],
            "latency caps at latency_max_batch, throughput at max_batch"
        );
    }

    #[test]
    fn mixed_class_jobs_never_share_a_batch() {
        // Same tenant, same batch key: the throughput job is plan-compatible
        // with the latency head but must not ride its micro-batch — a
        // latency dispatch stays short by construction.
        let (mut sched, names) = sched_with(&[("t", TenantPolicy::default())]);
        sched.admit_job(
            &names[0],
            Admission {
                class: ServiceClass::latency(),
                batch_key: Some(3),
                ..Admission::job(JobId(0), 1.0)
            },
        );
        sched.admit(&names[0], JobId(1), 1.0, None, None, Some(3));
        let SchedPoll::Dispatch(first) = sched.next_job(Instant::now()) else {
            panic!("expected dispatch");
        };
        assert_eq!(first.ids().collect::<Vec<_>>(), vec![JobId(0)]);
        assert!(first.class.is_latency());
    }

    #[test]
    fn a_queued_latency_job_preempts_coalescing_never_execution() {
        let (mut sched, names) = sched_with(&[
            ("bulk", TenantPolicy::default().with_weight(4.0)),
            ("interactive", TenantPolicy::default()),
        ]);
        for i in 0..8 {
            sched.admit(&names[0], JobId(i), 1.0, None, None, Some(42));
        }
        admit_latency(&mut sched, &names[1], JobId(100), 1.0, None);
        let now = Instant::now();
        let mut first = true;
        let mut saw_latency = false;
        let mut batched_after = false;
        while let SchedPoll::Dispatch(dispatch) = sched.next_job(now) {
            if first {
                // Execution is never preempted: the rotation still serves
                // bulk's head ahead of the waiting latency job.
                assert!(!dispatch.class.is_latency(), "DRR stays class-blind");
                first = false;
            }
            if dispatch.id == JobId(100) {
                saw_latency = true;
            } else if !saw_latency {
                assert_eq!(
                    dispatch.len(),
                    1,
                    "a queued latency job stops throughput coalescing"
                );
            } else {
                batched_after |= dispatch.len() > 1;
            }
            dispatch.ids().for_each(|id| sched.release(id));
        }
        assert!(saw_latency);
        assert!(
            batched_after,
            "coalescing resumes once the latency job left"
        );
    }

    #[test]
    fn requeued_jobs_are_not_charged_rate_limit_tokens_again() {
        // Regression: a device-fault requeue re-enters the queue with
        // `retry: true` because its original dispatch already paid the
        // token. Charging (or throttling) it again would double-bill every
        // failover.
        let (mut sched, names) = sched_with(&[(
            "limited",
            TenantPolicy::default().with_rate_limit(RateLimit {
                jobs_per_second: 0.0,
                burst: 1.0,
            }),
        )]);
        let now = Instant::now();
        // Spend the only token on a normal dispatch.
        sched.admit(&names[0], JobId(0), 1.0, None, None, None);
        let SchedPoll::Dispatch(paid) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        sched.release(paid.id);
        // Bucket empty: a fresh submission throttles...
        sched.admit(&names[0], JobId(1), 1.0, None, None, None);
        assert!(matches!(sched.next_job(now), SchedPoll::Idle));
        assert_eq!(sched.metrics.throttled, 1);
        // ...but a requeued job (higher cost, so it outranks the queued
        // fresh one) dispatches straight through and spends nothing.
        sched.admit_job(
            &names[0],
            Admission {
                retry: true,
                ..Admission::job(JobId(2), 2.0)
            },
        );
        let tokens_before = sched.tenants[&names[0]].tokens;
        let SchedPoll::Dispatch(retried) = sched.next_job(now) else {
            panic!("retry must bypass the empty bucket");
        };
        assert_eq!(retried.id, JobId(2));
        sched.release(retried.id);
        assert_eq!(
            sched.tenants[&names[0]].tokens, tokens_before,
            "the retry spends no token"
        );
        // The fresh job is still throttled — the retry bought it nothing.
        assert!(matches!(sched.next_job(now), SchedPoll::Idle));
    }

    #[test]
    fn deadline_misses_count_only_past_deadline_outcomes() {
        let (mut sched, names) = sched_with(&[("t", TenantPolicy::default())]);
        let now = Instant::now();
        admit_latency(&mut sched, &names[0], JobId(0), 1.0, Some(now));
        admit_latency(
            &mut sched,
            &names[0],
            JobId(1),
            1.0,
            Some(now + Duration::from_secs(3600)),
        );
        sched.admit(&names[0], JobId(2), 1.0, None, None, None);
        // EDF: the already-expired deadline dispatches first.
        let SchedPoll::Dispatch(first) = sched.next_job(now) else {
            panic!("expected dispatch");
        };
        assert_eq!(first.id, JobId(0));
        sched.record_outcome(first.id, 1e-3, true);
        while let SchedPoll::Dispatch(dispatch) = sched.next_job(now) {
            sched.record_outcome(dispatch.id, 1e-3, true);
        }
        let stats = sched.class_snapshot();
        assert_eq!(stats["latency"].deadline_miss, 1, "only the expired one");
        assert_eq!(stats["latency"].dispatched, 2);
        assert_eq!(stats["latency"].completed, 2);
        assert_eq!(stats["throughput"].completed, 1);
        assert_eq!(stats["throughput"].deadline_miss, 0);
    }

    #[test]
    fn class_snapshot_splits_the_queue_by_class() {
        let (mut sched, names) = sched_with(&[("t", TenantPolicy::default())]);
        admit_latency(&mut sched, &names[0], JobId(0), 1.0, None);
        admit_latency(&mut sched, &names[0], JobId(1), 1.0, None);
        for i in 2..5 {
            sched.admit(&names[0], JobId(i), 1.0, None, None, None);
        }
        let stats = sched.class_snapshot();
        assert_eq!(stats["latency"].queued, 2);
        assert_eq!(stats["throughput"].queued, 3);
        let SchedPoll::Dispatch(first) = sched.next_job(Instant::now()) else {
            panic!("expected dispatch");
        };
        assert!(first.class.is_latency());
        let stats = sched.class_snapshot();
        assert_eq!(stats["latency"].queued, 1, "the dispatched head left");
        assert_eq!(stats["latency"].dispatched, 1);
        assert_eq!(stats["throughput"].queued, 3);
        assert_eq!(stats["throughput"].dispatched, 0);
        sched.record_outcome(first.id, 1e-3, false);
        assert_eq!(sched.class_snapshot()["latency"].failed, 1);
    }

    mod class_proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// An all-latency tenant cannot starve an all-throughput tenant:
            /// classes reorder *within* a tenant only, so at equal weight
            /// and cost the cross-tenant DRR rotation keeps the two dispatch
            /// counts within one of each other while both have work.
            #[test]
            fn latency_tenants_cannot_starve_throughput_tenants(
                latency_jobs in 2usize..40,
                throughput_jobs in 2usize..40,
            ) {
                let (mut sched, names) = sched_with(&[
                    ("interactive", TenantPolicy::default()),
                    ("bulk", TenantPolicy::default()),
                ]);
                for i in 0..latency_jobs {
                    admit_latency(&mut sched, &names[0], JobId(i as u64), 1.0, None);
                }
                for i in 0..throughput_jobs {
                    sched.admit(&names[1], JobId(1000 + i as u64), 1.0, None, None, None);
                }
                let now = Instant::now();
                let (mut lat, mut thr) = (0usize, 0usize);
                while let SchedPoll::Dispatch(dispatch) = sched.next_job(now) {
                    sched.release(dispatch.id);
                    if dispatch.class.is_latency() {
                        lat += 1;
                    } else {
                        thr += 1;
                    }
                    if lat < latency_jobs && thr < throughput_jobs {
                        prop_assert!(
                            lat.abs_diff(thr) <= 1,
                            "class drift while contended: lat={} thr={}", lat, thr
                        );
                    }
                }
                prop_assert_eq!(lat, latency_jobs);
                prop_assert_eq!(thr, throughput_jobs);
            }
        }
    }
}
