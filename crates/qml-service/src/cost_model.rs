//! An online, feedback-driven execution-cost model.
//!
//! The fair scheduler promises weighted fairness in *cost-throughput*, but a
//! promise kept in placement-estimate units is only as good as the
//! estimates: a tenant whose jobs are systematically under-estimated
//! (hint-less descriptors, cold-cache transpiles, high shot counts) silently
//! receives a multiple of its fair share of device time. The fix used by
//! feedback-driven serving systems (iteration-level batch schedulers in the
//! Orca lineage, HPC backfill with observed run times) is to *measure*: keep
//! an online per-plan cost model and reconcile estimates against it.
//!
//! [`CostModel`] is that model: an exponentially weighted moving average
//! (EWMA) of observed busy-seconds, keyed by the same device-level plan key
//! ([`qml_backends::Backend::batch_key`] folded with the backend identity)
//! that micro-batching uses — two jobs that would share a realized plan
//! share a cost entry. The scheduler consults it at admission (a key with
//! history admits at its *measured* cost, not its placement guess) and feeds
//! it from every [`JobOutcome`](qml_runtime::JobOutcome); explicit
//! `duration_us` cost hints seed an entry before any measurement exists.

use std::collections::HashMap;

use qml_types::MeasuredCost;

/// Conversion between scheduler cost units and busy-seconds: one cost unit
/// per millisecond of measured execution. Chosen so that a realistic
/// simulator job (tenths of a millisecond to tens of milliseconds) lands in
/// the same numeric range as descriptor-hint estimates and above the
/// scheduler's minimum-cost floor, letting measured and estimated costs
/// coexist in one deficit ledger while measurements take over.
pub const COST_UNITS_PER_SECOND: f64 = 1_000.0;

/// Default EWMA smoothing factor (weight of the newest observation).
pub const DEFAULT_COST_EWMA_ALPHA: f64 = 0.4;

/// One plan key's running estimate.
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// EWMA of observed busy-seconds (or the seeded prior before the first
    /// observation).
    seconds: f64,
    /// Number of *measured* observations folded in (0 = seed only).
    samples: u64,
}

/// An EWMA-of-busy-seconds cost model keyed by realization-plan identity.
///
/// ```
/// use qml_service::cost_model::CostModel;
///
/// let mut model = CostModel::new(0.5);
/// assert_eq!(model.predict_seconds(7), None);
/// model.observe(7, 0.010);
/// model.observe(7, 0.020);
/// // 0.5 × 0.020 + 0.5 × 0.010
/// assert!((model.predict_seconds(7).unwrap() - 0.015).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct CostModel {
    alpha: f64,
    entries: HashMap<u64, Entry>,
}

impl CostModel {
    /// A model with the given EWMA smoothing factor, clamped into
    /// `(0.0, 1.0]`: `alpha` is the weight of the newest observation, so
    /// `1.0` tracks only the last measurement and small values smooth
    /// aggressively. `alpha ≤ 0.0` **disables** the model — it learns and
    /// predicts nothing, restoring pure estimate-unit scheduling — and a
    /// non-finite alpha falls back to [`DEFAULT_COST_EWMA_ALPHA`].
    pub fn new(alpha: f64) -> Self {
        let alpha = if alpha.is_nan() {
            DEFAULT_COST_EWMA_ALPHA
        } else {
            alpha.clamp(0.0, 1.0)
        };
        CostModel {
            alpha,
            entries: HashMap::new(),
        }
    }

    /// The smoothing factor in effect (0.0 = disabled).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// True when the model is disabled (`alpha ≤ 0`).
    pub fn is_disabled(&self) -> bool {
        self.alpha <= 0.0
    }

    /// Predicted busy-seconds for a plan key, if the model knows anything
    /// about it (a measured EWMA, or a hint-seeded prior).
    pub fn predict_seconds(&self, plan_key: u64) -> Option<f64> {
        self.entries.get(&plan_key).map(|e| e.seconds)
    }

    /// Number of measured observations folded into a key's entry
    /// (`None` if the key is unknown, `Some(0)` if only seeded).
    pub fn samples(&self, plan_key: u64) -> Option<u64> {
        self.entries.get(&plan_key).map(|e| e.samples)
    }

    /// Seed a prior for a plan key — e.g. from an explicit `duration_us`
    /// cost hint — without counting it as a measurement. A key that already
    /// has an entry (seeded or measured) is left untouched: real history
    /// always outranks a hint.
    pub fn seed(&mut self, plan_key: u64, seconds: f64) {
        if self.is_disabled() {
            return;
        }
        if seconds.is_finite() && seconds >= 0.0 {
            self.entries.entry(plan_key).or_insert(Entry {
                seconds,
                samples: 0,
            });
        }
    }

    /// Fold one measured busy-seconds observation into a key's EWMA. The
    /// first measurement blends with a seeded prior if one exists and
    /// otherwise sets the value outright (there is nothing to smooth
    /// against). Non-finite or negative observations are ignored.
    pub fn observe(&mut self, plan_key: u64, seconds: f64) {
        if self.is_disabled() || !seconds.is_finite() || seconds < 0.0 {
            return;
        }
        match self.entries.entry(plan_key) {
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                let entry = slot.get_mut();
                entry.seconds = self.alpha * seconds + (1.0 - self.alpha) * entry.seconds;
                entry.samples += 1;
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(Entry {
                    seconds,
                    samples: 1,
                });
            }
        }
    }

    /// Fold a full [`MeasuredCost`] record (ignored without a plan key).
    pub fn record(&mut self, measured: &MeasuredCost) {
        if let Some(key) = measured.plan_key {
            self.observe(key, measured.seconds);
        }
    }

    /// Number of plan keys the model tracks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the model has no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::new(DEFAULT_COST_EWMA_ALPHA)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_key_predicts_nothing() {
        let model = CostModel::default();
        assert_eq!(model.predict_seconds(1), None);
        assert_eq!(model.samples(1), None);
        assert!(model.is_empty());
    }

    #[test]
    fn first_observation_sets_the_value_outright() {
        let mut model = CostModel::new(0.1);
        model.observe(1, 0.050);
        // With no prior there is nothing to smooth against: a tiny alpha
        // must not anchor the estimate at an arbitrary starting point.
        assert!((model.predict_seconds(1).unwrap() - 0.050).abs() < 1e-12);
        assert_eq!(model.samples(1), Some(1));
    }

    #[test]
    fn ewma_converges_to_a_shifted_cost() {
        let mut model = CostModel::new(0.4);
        model.observe(1, 0.001);
        // The workload's true cost shifts 10×; the EWMA must converge.
        for _ in 0..20 {
            model.observe(1, 0.010);
        }
        let predicted = model.predict_seconds(1).unwrap();
        assert!(
            (predicted - 0.010).abs() < 1e-4,
            "EWMA should converge to 10 ms, got {predicted}"
        );
        assert_eq!(model.samples(1), Some(21));
    }

    #[test]
    fn ewma_smooths_an_outlier() {
        let mut model = CostModel::new(0.4);
        for _ in 0..10 {
            model.observe(1, 0.010);
        }
        model.observe(1, 1.0); // one 100× outlier (e.g. a GC pause)
        let predicted = model.predict_seconds(1).unwrap();
        assert!(
            predicted < 0.5,
            "one outlier must not dominate: {predicted}"
        );
        model.observe(1, 0.010);
        model.observe(1, 0.010);
        assert!(model.predict_seconds(1).unwrap() < predicted);
    }

    #[test]
    fn seed_is_a_prior_not_a_measurement() {
        let mut model = CostModel::new(0.5);
        model.seed(1, 0.008);
        assert_eq!(model.samples(1), Some(0));
        assert!((model.predict_seconds(1).unwrap() - 0.008).abs() < 1e-12);
        // A second seed never overwrites; a measurement blends with the
        // prior rather than discarding it.
        model.seed(1, 0.999);
        assert!((model.predict_seconds(1).unwrap() - 0.008).abs() < 1e-12);
        model.observe(1, 0.016);
        let blended = model.predict_seconds(1).unwrap();
        assert!((blended - 0.012).abs() < 1e-12, "0.5·16ms + 0.5·8ms");
        assert_eq!(model.samples(1), Some(1));
    }

    #[test]
    fn keys_are_independent() {
        let mut model = CostModel::default();
        model.observe(1, 0.001);
        model.observe(2, 0.100);
        assert!(model.predict_seconds(1).unwrap() < 0.01);
        assert!(model.predict_seconds(2).unwrap() > 0.01);
        assert_eq!(model.len(), 2);
    }

    #[test]
    fn degenerate_inputs_are_ignored() {
        let mut model = CostModel::new(f64::NAN);
        assert_eq!(model.alpha(), DEFAULT_COST_EWMA_ALPHA);
        assert_eq!(CostModel::new(7.0).alpha(), 1.0);
        model.observe(1, f64::NAN);
        model.observe(1, -4.0);
        model.seed(2, f64::INFINITY);
        assert!(model.is_empty());
    }

    #[test]
    fn non_positive_alpha_disables_the_model() {
        let mut model = CostModel::new(0.0);
        assert!(model.is_disabled());
        assert!(CostModel::new(-1.0).is_disabled());
        model.observe(1, 0.010);
        model.seed(2, 0.010);
        assert!(model.is_empty(), "a disabled model learns nothing");
        assert_eq!(model.predict_seconds(1), None);
    }

    #[test]
    fn record_requires_a_plan_key() {
        use qml_types::MeasuredCost;
        let mut model = CostModel::default();
        model.record(&MeasuredCost::new(None, 1.0, 0.010));
        assert!(model.is_empty());
        model.record(&MeasuredCost::new(Some(9), 1.0, 0.010));
        assert!((model.predict_seconds(9).unwrap() - 0.010).abs() < 1e-12);
    }
}
