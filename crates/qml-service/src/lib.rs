//! # qml-service — multi-tenant batch-execution service for the middle layer
//!
//! The paper's middle layer hands validated job bundles to an HPC-style
//! scheduler (§2). This crate is the serving tier above [`qml_runtime`]: the
//! piece that amortizes descriptor validation, lowering, and transpilation
//! across the repeated submissions a production quantum cloud actually sees.
//!
//! * [`SweepRequest`] — **parameter sweeps**: one intent bundle plus N
//!   binding sets and/or N contexts, expanded into jobs server-side, so a
//!   variational optimizer ships its circuit once per iteration batch instead
//!   of once per point.
//! * [`QmlService`] — submission, batch tracking, and execution. The service
//!   runs as a **streaming loop**: [`QmlService::start`] spawns a long-lived
//!   worker pool that accepts `submit`/`submit_sweep` *while running* and is
//!   shut down through its [`ServiceHandle`] — [`drain`](ServiceHandle::drain)
//!   finishes admitted work, [`abort`](ServiceHandle::abort) stops at the next
//!   job boundary. [`QmlService::run_pending`] remains as the one-shot
//!   submit-then-drain wrapper.
//! * **Per-tenant fair scheduling** — deficit round robin over cost-ranked
//!   per-tenant queues, with [`TenantPolicy`] weights, in-flight caps, and
//!   token-bucket [`RateLimit`]s, so one tenant's thousand-point sweep cannot
//!   starve another tenant's single job.
//! * **Measured-cost fairness** — deficit is reconciled against *observed*
//!   busy-seconds, not placement guesses: an online per-plan-key
//!   [`CostModel`] (EWMA of measured durations) prices admissions and
//!   lazily reprices queued jobs, and every recorded outcome charges the
//!   clamped estimate error back to the tenant's deficit
//!   ([`ServiceConfig::cost_ewma_alpha`] / ·`charge_back_clamp`), so a
//!   systematically under-estimated workload cannot hog device time.
//! * **Micro-batched dispatch** — up to [`ServiceConfig::max_batch`]
//!   plan-compatible jobs of one tenant coalesce into a single device-level
//!   [`execute_batch`](qml_backends::Backend::execute_batch) call (one
//!   transpilation/lowering per group even on a cold cache), with deficit,
//!   tokens, and in-flight slots still spent per member so fairness
//!   accounting is unchanged.
//! * **Service classes** — every job carries a
//!   [`ServiceClass`](qml_types::ServiceClass) (`Latency`, optionally with a
//!   deadline, or the default `Throughput`). Within a tenant, latency jobs
//!   run first (earliest-deadline-first among them) and are dispatched under
//!   a small fixed micro-batch cap ([`ServiceConfig::latency_max_batch`]),
//!   while throughput jobs keep the adaptive cap; a latency arrival preempts
//!   *coalescing* of a throughput batch, never its execution. Cross-tenant
//!   DRR stays class-blind, so classes never bypass fairness. Per-class
//!   queue/dispatch/deadline-miss counters surface as [`ClassStats`].
//! * **Fleet routing & failure domains** — each backend plane can front a
//!   fleet of heterogeneous devices ([`DeviceSpec`]: capability descriptor,
//!   bounded concurrency, its own queue). Dispatch routes every job to the
//!   cheapest *capable healthy* device by per-device measured cost
//!   (capability-feasible round robin before history exists), idle devices
//!   steal compatible parked work, and a device fault walks the health
//!   ladder (healthy → degraded → down) while the faulted job is requeued —
//!   exactly once per attempt, never back onto a device that failed it —
//!   with outcomes preserved bit-for-bit (see [`fleet`]).
//! * The runtime's shared **transpilation/lowering cache** (see
//!   [`qml_backends::TranspileCache`]) makes repeated `(program, target)`
//!   submissions skip `qml-transpile` entirely; hit/miss counters surface in
//!   the service metrics.
//! * [`ServiceMetrics`] — a snapshot of throughput, queue depth, cache hit
//!   rates, scheduler-fairness counters, and per-backend/per-tenant
//!   utilization (including per-tenant wait-time and in-flight gauges).
//! * **Observability** — end-to-end per-job stage tracing
//!   (`submitted → admitted → dispatched → plan → bound → executed →
//!   outcome`, see [`ServiceConfig::with_tracing`]), per-tenant and
//!   per-backend queue-wait / execute-latency percentiles, and one
//!   versioned [`ObservabilitySnapshot`] folding every metric surface
//!   together — exported as JSON ([`QmlService::snapshot`] /
//!   [`ServiceHandle::dump_jsonl`]) or greppable `key=value` text.
//!
//! ## Example
//!
//! ```
//! use qml_service::{QmlService, SweepRequest};
//! use qml_algorithms::{qaoa_maxcut_program, QaoaSchedule, RING_P1_ANGLES};
//! use qml_graph::cycle;
//! use qml_types::{ContextDescriptor, ExecConfig, Target};
//!
//! // One intent, four seeded restarts: a 4-job sweep that transpiles once.
//! let program =
//!     qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))?;
//! let mut sweep = SweepRequest::new("qaoa-restarts", program);
//! for seed in 0..4 {
//!     sweep = sweep.with_context(ContextDescriptor::for_gate(
//!         ExecConfig::new("gate.aer_simulator")
//!             .with_samples(256)
//!             .with_seed(seed)
//!             .with_target(Target::ring(4)),
//!     ));
//! }
//!
//! let service = QmlService::new();
//! let batch = service.submit_sweep("tenant-a", sweep)?;
//! let report = service.run_pending();
//! assert_eq!(report.completed, 4);
//! assert_eq!(service.metrics().cache.hits, 3, "one transpilation, three reuses");
//! assert_eq!(service.batch_jobs(batch).len(), 4);
//! # Ok::<(), qml_types::QmlError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::print_stdout, clippy::print_stderr)]
#![forbid(unsafe_code)]

pub mod cost_model;
pub mod fleet;
pub mod metrics;
pub mod observe;
pub mod scheduler;
pub mod service;
pub mod sweep;

pub use cost_model::{CostModel, COST_UNITS_PER_SECOND, DEFAULT_COST_EWMA_ALPHA};
pub use fleet::{
    DeviceSpec, DeviceUtilization, FleetRouter, COST_TIE_BAND, DEFAULT_DOWN_THRESHOLD,
};
pub use metrics::{
    BackendUtilization, CacheStats, ClassStats, RunSummary, SchedulerMetrics, ServiceMetrics,
    TenantStats,
};
pub use observe::{
    CostModelGauges, LatencyBreakdown, MetricsRegistry, ObservabilitySnapshot, SNAPSHOT_VERSION,
};
pub use scheduler::{RateLimit, TenantPolicy};
pub use service::{
    BatchId, QmlService, ServiceConfig, ServiceHandle, DEFAULT_CHARGE_BACK_CLAMP,
    DEFAULT_LATENCY_MAX_BATCH, DEFAULT_MAX_BATCH,
};
pub use sweep::SweepRequest;
