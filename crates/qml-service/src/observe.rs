//! The service's unified observability surface: one registry feeding one
//! versioned snapshot.
//!
//! Before this module, the stack's health lived on three disconnected
//! surfaces — [`ServiceMetrics`], [`SchedulerMetrics`](crate::SchedulerMetrics)
//! and [`CacheStats`](crate::CacheStats) — with no latency percentiles and no
//! way to follow one job through its life. [`MetricsRegistry`] is the single
//! sink the service, scheduler, and runtime report through:
//!
//! * a shared [`Tracer`] (one epoch for every layer's stage events), and
//! * four [`HistogramSet`]s: queue-wait and execute latency, each keyed per
//!   tenant and per backend.
//!
//! [`MetricsRegistry::snapshot`] folds all of it — the three legacy metric
//! surfaces, the cost-model gauges, the latency percentiles, and the
//! tracer's buffer health — into one versioned, serde-serializable
//! [`ObservabilitySnapshot`], exportable as JSON
//! ([`ObservabilitySnapshot::to_json`] / [`to_jsonl`](ObservabilitySnapshot::to_jsonl))
//! or as greppable `key=value` text ([`ObservabilitySnapshot::dump_kv`]) —
//! the format CI asserts against, and the one a future fleet front-end will
//! diff across PRs.

use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use qml_runtime::JobId;

use crate::metrics::ServiceMetrics;

pub use qml_observe::{
    Histogram, HistogramSet, HistogramSnapshot, NoopTracer, RingTracer, Stage, TraceEvent,
    TraceStats, Tracer, DEFAULT_TRACE_CAPACITY,
};

/// Schema version stamped into every [`ObservabilitySnapshot`]; bump on any
/// breaking change to the snapshot layout so stored trajectories stay
/// diffable.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Cost-model accuracy gauges, lifted out of
/// [`SchedulerMetrics`](crate::SchedulerMetrics) so the snapshot exposes the
/// measured-cost fairness health in one place.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostModelGauges {
    /// Measured outcomes folded into the model and the error gauges.
    pub cost_samples: u64,
    /// Total absolute estimate error across measured outcomes, in cost
    /// units.
    pub estimate_error_units: f64,
    /// Total magnitude of applied deficit charge-backs, in cost units.
    pub charge_back_units: f64,
    /// Mean absolute estimate error per measured outcome, in cost units.
    pub mean_abs_estimate_error: f64,
}

/// Queue-wait and execute-latency percentiles, keyed per tenant and per
/// backend. All values in microseconds.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Submit→dispatch wait per tenant.
    pub tenant_queue_wait: BTreeMap<String, HistogramSnapshot>,
    /// Measured execution latency per tenant.
    pub tenant_execute: BTreeMap<String, HistogramSnapshot>,
    /// Submit→dispatch wait per placed backend.
    pub backend_queue_wait: BTreeMap<String, HistogramSnapshot>,
    /// Measured execution latency per backend.
    pub backend_execute: BTreeMap<String, HistogramSnapshot>,
    /// Submit→dispatch wait per service class (`"latency"`,
    /// `"throughput"`). Absent from pre-class snapshots, hence the default.
    #[serde(default)]
    pub class_queue_wait: BTreeMap<String, HistogramSnapshot>,
    /// Measured execution latency per service class.
    #[serde(default)]
    pub class_execute: BTreeMap<String, HistogramSnapshot>,
}

/// The one versioned snapshot folding every metric surface of the stack:
/// service totals (with scheduler and cache counters inside), cost-model
/// gauges, latency percentiles, and tracer buffer health.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservabilitySnapshot {
    /// Schema version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The classic service surface: job totals, queue depth, cache planes,
    /// scheduler counters, per-backend / per-tenant utilization.
    pub service: ServiceMetrics,
    /// Cost-model accuracy gauges.
    pub cost: CostModelGauges,
    /// Latency percentiles per tenant and per backend.
    pub latency: LatencyBreakdown,
    /// Tracer buffer health (all-zero when tracing is disabled).
    pub trace: TraceStats,
}

impl ObservabilitySnapshot {
    /// Pretty-printed JSON (multi-line, for humans).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// One JSON line (no interior newlines) — append to a `.jsonl` file to
    /// record a trajectory of snapshots across runs or PRs.
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self).unwrap_or_default()
    }

    /// Greppable `key=value` rendering, one subject per line — the format
    /// CI asserts against (`p99_wait_us=`, `dropped=`, ...).
    pub fn dump_kv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "observability version={} jobs_submitted={} jobs_completed={} jobs_failed={} queue_depth={}",
            self.version,
            self.service.jobs_submitted,
            self.service.jobs_completed,
            self.service.jobs_failed,
            self.service.queue_depth,
        );
        let _ = writeln!(
            out,
            "trace recorded={} dropped={} capacity={}",
            self.trace.recorded, self.trace.dropped, self.trace.capacity,
        );
        let _ = writeln!(
            out,
            "cost samples={} estimate_error_units={:.3} charge_back_units={:.3} mean_abs_estimate_error={:.3}",
            self.cost.cost_samples,
            self.cost.estimate_error_units,
            self.cost.charge_back_units,
            self.cost.mean_abs_estimate_error,
        );
        for (plane, stats) in [
            ("gate", &self.service.gate_cache),
            ("anneal", &self.service.anneal_cache),
        ] {
            let _ = writeln!(
                out,
                "cache plane={plane} hits={} misses={} entries={} evictions={}",
                stats.hits, stats.misses, stats.entries, stats.evictions,
            );
        }
        for (tenant, wait) in &self.latency.tenant_queue_wait {
            let exec = self
                .latency
                .tenant_execute
                .get(tenant)
                .copied()
                .unwrap_or_default();
            let _ = writeln!(out, "tenant={tenant} {}", latency_kv(wait, &exec));
        }
        for (backend, wait) in &self.latency.backend_queue_wait {
            let exec = self
                .latency
                .backend_execute
                .get(backend)
                .copied()
                .unwrap_or_default();
            let _ = writeln!(out, "backend={backend} {}", latency_kv(wait, &exec));
        }
        for (class, stats) in &self.service.per_class {
            let wait = self
                .latency
                .class_queue_wait
                .get(class)
                .copied()
                .unwrap_or_default();
            let exec = self
                .latency
                .class_execute
                .get(class)
                .copied()
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "class={class} queued={} dispatched={} completed={} failed={} deadline_miss={} {}",
                stats.queued,
                stats.dispatched,
                stats.completed,
                stats.failed,
                stats.deadline_miss,
                latency_kv(&wait, &exec),
            );
        }
        for (device, util) in &self.service.per_device {
            let _ = writeln!(
                out,
                "device={device} plane={} health={} cordoned={} dispatched={} completed={} \
                 failed={} requeued={} stolen_from={} busy_seconds={:.6} queue_depth={} \
                 in_flight={}",
                util.plane,
                util.health,
                util.cordoned,
                util.dispatched,
                util.completed,
                util.failed,
                util.requeued,
                util.stolen_from,
                util.busy_seconds,
                util.queue_depth,
                util.in_flight,
            );
        }
        out
    }
}

/// The shared `key=value` latency fields of one dump line.
fn latency_kv(wait: &HistogramSnapshot, exec: &HistogramSnapshot) -> String {
    format!(
        "waits={} p50_wait_us={} p95_wait_us={} p99_wait_us={} execs={} p50_exec_us={} p95_exec_us={} p99_exec_us={}",
        wait.count, wait.p50, wait.p95, wait.p99, exec.count, exec.p50, exec.p95, exec.p99,
    )
}

/// The single sink every layer reports through: the shared stage-event
/// tracer plus the keyed latency histograms. One registry is created per
/// service (see [`ServiceConfig::with_tracing`](crate::ServiceConfig)) and
/// shared — behind one `Arc` — by the service core, the fair scheduler, and
/// (tracer only) the runtime, so all timestamps share one epoch.
#[derive(Debug)]
pub struct MetricsRegistry {
    tracer: Arc<dyn Tracer>,
    tenant_wait: HistogramSet,
    tenant_exec: HistogramSet,
    backend_wait: HistogramSet,
    backend_exec: HistogramSet,
    class_wait: HistogramSet,
    class_exec: HistogramSet,
}

impl MetricsRegistry {
    /// A registry recording through `tracer` (pass [`NoopTracer`] for
    /// histogram-only observability).
    pub fn new(tracer: Arc<dyn Tracer>) -> Self {
        MetricsRegistry {
            tracer,
            tenant_wait: HistogramSet::new(),
            tenant_exec: HistogramSet::new(),
            backend_wait: HistogramSet::new(),
            backend_exec: HistogramSet::new(),
            class_wait: HistogramSet::new(),
            class_exec: HistogramSet::new(),
        }
    }

    /// The shared stage-event tracer.
    pub fn tracer(&self) -> &Arc<dyn Tracer> {
        &self.tracer
    }

    /// True if stage events are retained (callers skip event preparation
    /// when false — the [`NoopTracer`] fast path).
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// Record one stage event for a service job.
    pub fn trace(
        &self,
        job: JobId,
        tenant: Option<&Arc<str>>,
        plan_key: Option<u64>,
        stage: Stage,
    ) {
        self.tracer.record(job.0, tenant, plan_key, stage);
    }

    /// Feed one submit→dispatch wait observation (microseconds) into the
    /// tenant's and the placed backend's queue-wait histograms.
    pub(crate) fn observe_wait(&self, tenant: &str, backend: Option<&str>, wait_us: u64) {
        self.tenant_wait.observe(tenant, wait_us);
        if let Some(backend) = backend {
            self.backend_wait.observe(backend, wait_us);
        }
    }

    /// Feed one measured execution latency (microseconds) into the tenant's
    /// and backend's execute histograms (either attribution may be unknown).
    pub(crate) fn observe_exec(&self, tenant: Option<&str>, backend: Option<&str>, us: u64) {
        if let Some(tenant) = tenant {
            self.tenant_exec.observe(tenant, us);
        }
        if let Some(backend) = backend {
            self.backend_exec.observe(backend, us);
        }
    }

    /// Feed one submit→dispatch wait observation (microseconds) into the
    /// service class's queue-wait histogram.
    pub(crate) fn observe_class_wait(&self, class: &str, wait_us: u64) {
        self.class_wait.observe(class, wait_us);
    }

    /// Feed one measured execution latency (microseconds) into the service
    /// class's execute histogram.
    pub(crate) fn observe_class_exec(&self, class: &str, us: u64) {
        self.class_exec.observe(class, us);
    }

    /// Fold the given service surface, the latency histograms, the
    /// cost-model gauges, and the tracer health into one versioned snapshot.
    pub fn snapshot(&self, service: ServiceMetrics) -> ObservabilitySnapshot {
        let cost = CostModelGauges {
            cost_samples: service.scheduler.cost_samples,
            estimate_error_units: service.scheduler.estimate_error_units,
            charge_back_units: service.scheduler.charge_back_units,
            mean_abs_estimate_error: service.scheduler.mean_abs_estimate_error(),
        };
        ObservabilitySnapshot {
            version: SNAPSHOT_VERSION,
            cost,
            latency: LatencyBreakdown {
                tenant_queue_wait: self.tenant_wait.snapshots(),
                tenant_execute: self.tenant_exec.snapshots(),
                backend_queue_wait: self.backend_wait.snapshots(),
                backend_execute: self.backend_exec.snapshots(),
                class_queue_wait: self.class_wait.snapshots(),
                class_execute: self.class_exec.snapshots(),
            },
            trace: self.tracer.stats(),
            service,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_and_dumps() {
        let registry = MetricsRegistry::new(Arc::new(NoopTracer));
        registry.observe_wait("alice", Some("qml-gate-simulator"), 150);
        registry.observe_wait("alice", Some("qml-gate-simulator"), 900);
        registry.observe_exec(Some("alice"), Some("qml-gate-simulator"), 4_200);
        let snapshot = registry.snapshot(ServiceMetrics::default());
        assert_eq!(snapshot.version, SNAPSHOT_VERSION);
        assert_eq!(snapshot.latency.tenant_queue_wait["alice"].count, 2);
        assert_eq!(
            snapshot.latency.backend_execute["qml-gate-simulator"].count,
            1
        );

        let line = snapshot.to_jsonl();
        assert!(!line.contains('\n'));
        let back: ObservabilitySnapshot = serde_json::from_str(&line).unwrap();
        assert_eq!(back, snapshot);

        let kv = snapshot.dump_kv();
        assert!(kv.contains("tenant=alice"));
        assert!(kv.contains("p99_wait_us="));
        assert!(kv.contains("trace recorded=0 dropped=0 capacity=0"));
    }

    #[test]
    fn registry_routes_stage_events_through_its_tracer() {
        let tracer = Arc::new(RingTracer::with_capacity(8));
        let registry = MetricsRegistry::new(tracer);
        assert!(registry.tracing_enabled());
        let tenant: Arc<str> = Arc::from("bob");
        registry.trace(JobId(3), Some(&tenant), Some(9), Stage::Submitted);
        let events = registry.tracer().drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].job, 3);
        assert_eq!(events[0].tenant.as_deref(), Some("bob"));
    }
}
