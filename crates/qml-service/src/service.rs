//! The submission queue and batch executor.

use std::collections::BTreeMap;
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use qml_backends::ExecutionResult;
use qml_runtime::{JobId, JobStatus, Runtime};
use qml_types::{JobBundle, Result};

use crate::metrics::{BackendUtilization, RunSummary, ServiceMetrics, TenantStats};
use crate::sweep::SweepRequest;

/// Identifier of a submitted batch (single bundles get one too).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BatchId(pub u64);

/// Service construction parameters.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads used by `run_pending` drains.
    pub workers: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .min(8),
        }
    }
}

/// One tracked batch: its jobs and owner.
#[derive(Debug, Clone)]
struct BatchRecord {
    tenant: String,
    job_ids: Vec<JobId>,
}

#[derive(Default)]
struct ServiceState {
    next_batch: u64,
    batches: BTreeMap<BatchId, BatchRecord>,
    job_tenant: BTreeMap<JobId, String>,
    jobs_submitted: u64,
    jobs_completed: u64,
    jobs_failed: u64,
    per_backend: BTreeMap<String, BackendUtilization>,
    per_tenant: BTreeMap<String, TenantStats>,
    last_run: Option<RunSummary>,
}

/// The multi-tenant batch-execution service.
///
/// Submissions (single bundles or [`SweepRequest`]s) are validated and
/// expanded eagerly, queued on the underlying [`Runtime`], and executed by
/// [`QmlService::run_pending`] on the runtime's cost-ranked work-stealing
/// pool, sharing its transpilation/lowering cache across all tenants.
pub struct QmlService {
    runtime: Runtime,
    config: ServiceConfig,
    state: Mutex<ServiceState>,
}

impl Default for QmlService {
    fn default() -> Self {
        QmlService::new()
    }
}

impl QmlService {
    /// A service over the built-in backends with default worker count.
    pub fn new() -> Self {
        QmlService::with_config(ServiceConfig::default())
    }

    /// A service over the built-in backends with explicit configuration.
    pub fn with_config(config: ServiceConfig) -> Self {
        QmlService::with_runtime(Runtime::with_default_backends(), config)
    }

    /// A service over a caller-provided runtime (custom backends, shared
    /// cache, ...).
    pub fn with_runtime(runtime: Runtime, config: ServiceConfig) -> Self {
        QmlService {
            runtime,
            config,
            state: Mutex::new(ServiceState::default()),
        }
    }

    /// The underlying runtime.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Submit one bundle for a tenant. Returns the batch (of size one) and
    /// the job id.
    pub fn submit(&self, tenant: &str, bundle: JobBundle) -> Result<(BatchId, JobId)> {
        let batch = self.submit_jobs(tenant, vec![bundle])?;
        let job = self.state.lock().batches[&batch].job_ids[0];
        Ok((batch, job))
    }

    /// Expand and submit a parameter sweep for a tenant. The whole sweep is
    /// validated before any job is queued: a malformed sweep is rejected
    /// atomically.
    pub fn submit_sweep(&self, tenant: &str, sweep: SweepRequest) -> Result<BatchId> {
        let jobs = sweep.expand()?;
        self.submit_jobs(tenant, jobs)
    }

    fn submit_jobs(&self, tenant: &str, bundles: Vec<JobBundle>) -> Result<BatchId> {
        // Validate everything up front so a batch is admitted all-or-nothing.
        for bundle in &bundles {
            bundle.validate()?;
        }
        let mut job_ids = Vec::with_capacity(bundles.len());
        for bundle in bundles {
            job_ids.push(self.runtime.submit(bundle)?);
        }
        let mut state = self.state.lock();
        let id = BatchId(state.next_batch);
        state.next_batch += 1;
        state.jobs_submitted += job_ids.len() as u64;
        let tenant_stats = state.per_tenant.entry(tenant.to_string()).or_default();
        tenant_stats.submitted += job_ids.len() as u64;
        for job in &job_ids {
            state.job_tenant.insert(*job, tenant.to_string());
        }
        state.batches.insert(
            id,
            BatchRecord {
                tenant: tenant.to_string(),
                job_ids,
            },
        );
        Ok(id)
    }

    /// Jobs of a batch, in expansion order (empty for unknown batches).
    pub fn batch_jobs(&self, batch: BatchId) -> Vec<JobId> {
        self.state
            .lock()
            .batches
            .get(&batch)
            .map(|b| b.job_ids.clone())
            .unwrap_or_default()
    }

    /// Status of a job.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.runtime.status(id)
    }

    /// Result of a completed job.
    pub fn result(&self, id: JobId) -> Option<ExecutionResult> {
        self.runtime.result(id)
    }

    /// Execute every queued job on the work-stealing pool and fold the
    /// outcomes into the service metrics. Returns the drain summary.
    pub fn run_pending(&self) -> RunSummary {
        let started = Instant::now();
        let outcomes = self.runtime.run_all_detailed(self.config.workers);
        let wall_seconds = started.elapsed().as_secs_f64();

        let mut state = self.state.lock();
        let mut completed = 0usize;
        let mut failed = 0usize;
        let mut stolen = 0usize;
        for outcome in &outcomes {
            let tenant = state.job_tenant.get(&outcome.id).cloned();
            // Backend attribution covers failed executions too: the pool
            // reports the placed backend even when the run errored.
            if let Some(backend) = &outcome.backend {
                let util = state.per_backend.entry(backend.clone()).or_default();
                util.jobs += 1;
                util.busy_seconds += outcome.duration.as_secs_f64();
            }
            match &outcome.result {
                Ok(_) => {
                    completed += 1;
                    state.jobs_completed += 1;
                    if let Some(tenant) = tenant {
                        state.per_tenant.entry(tenant).or_default().completed += 1;
                    }
                }
                Err(_) => {
                    failed += 1;
                    state.jobs_failed += 1;
                    if let Some(tenant) = tenant {
                        state.per_tenant.entry(tenant).or_default().failed += 1;
                    }
                }
            }
            stolen += usize::from(outcome.stolen);
        }
        let summary = RunSummary {
            jobs: outcomes.len(),
            completed,
            failed,
            workers: self.config.workers,
            stolen,
            wall_seconds,
            jobs_per_second: if wall_seconds > 0.0 {
                outcomes.len() as f64 / wall_seconds
            } else {
                0.0
            },
        };
        state.last_run = Some(summary);
        summary
    }

    /// A point-in-time snapshot of service health.
    pub fn metrics(&self) -> ServiceMetrics {
        let cache = self.runtime.cache();
        let state = self.state.lock();
        ServiceMetrics {
            jobs_submitted: state.jobs_submitted,
            jobs_completed: state.jobs_completed,
            jobs_failed: state.jobs_failed,
            queue_depth: self.runtime.queue_depth(),
            cache: cache.stats(),
            gate_cache: cache.gate_stats(),
            anneal_cache: cache.anneal_stats(),
            per_backend: state.per_backend.clone(),
            per_tenant: state.per_tenant.clone(),
            last_run: state.last_run,
        }
    }

    /// Tenant that submitted a job (if known).
    pub fn tenant_of(&self, id: JobId) -> Option<String> {
        self.state.lock().job_tenant.get(&id).cloned()
    }

    /// Tenant that owns a batch (if known).
    pub fn batch_tenant(&self, batch: BatchId) -> Option<String> {
        self.state
            .lock()
            .batches
            .get(&batch)
            .map(|b| b.tenant.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qml_algorithms::{maxcut_ising_program, qaoa_maxcut_program, QaoaSchedule, RING_P1_ANGLES};
    use qml_graph::cycle;
    use qml_types::{AnnealConfig, ContextDescriptor, ExecConfig, Target};

    fn gate_program() -> JobBundle {
        qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap()
    }

    fn gate_context(seed: u64) -> ContextDescriptor {
        ContextDescriptor::for_gate(
            ExecConfig::new("gate.aer_simulator")
                .with_samples(64)
                .with_seed(seed)
                .with_target(Target::ring(4)),
        )
    }

    #[test]
    fn single_submission_round_trip() {
        let service = QmlService::with_config(ServiceConfig { workers: 2 });
        let (batch, job) = service
            .submit("alice", gate_program().with_context(gate_context(1)))
            .unwrap();
        assert_eq!(service.status(job), Some(JobStatus::Queued));
        assert_eq!(service.metrics().queue_depth, 1);
        let report = service.run_pending();
        assert_eq!(report.completed, 1);
        assert_eq!(service.result(job).unwrap().shots, 64);
        assert_eq!(service.batch_jobs(batch), vec![job]);
        assert_eq!(service.tenant_of(job).as_deref(), Some("alice"));
        assert_eq!(service.metrics().queue_depth, 0);
    }

    #[test]
    fn per_tenant_and_per_backend_accounting() {
        let service = QmlService::with_config(ServiceConfig { workers: 2 });
        service
            .submit("alice", gate_program().with_context(gate_context(1)))
            .unwrap();
        service
            .submit(
                "bob",
                maxcut_ising_program(&cycle(4)).unwrap().with_context(
                    ContextDescriptor::for_anneal(
                        "anneal.neal_simulator",
                        AnnealConfig::with_reads(50),
                    ),
                ),
            )
            .unwrap();
        service.run_pending();
        let metrics = service.metrics();
        assert_eq!(metrics.per_tenant["alice"].completed, 1);
        assert_eq!(metrics.per_tenant["bob"].completed, 1);
        assert_eq!(metrics.per_backend["qml-gate-simulator"].jobs, 1);
        assert_eq!(metrics.per_backend["qml-simulated-annealer"].jobs, 1);
        assert!(metrics.per_backend["qml-gate-simulator"].busy_seconds > 0.0);
    }

    #[test]
    fn invalid_sweep_is_rejected_atomically() {
        let service = QmlService::with_config(ServiceConfig { workers: 1 });
        let sweep = SweepRequest::new(
            "bad",
            qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Symbolic { layers: 1 }).unwrap(),
        );
        assert!(service.submit_sweep("alice", sweep).is_err());
        assert_eq!(service.metrics().jobs_submitted, 0);
        assert_eq!(service.metrics().queue_depth, 0);
    }

    #[test]
    fn metrics_snapshot_reports_last_run() {
        let service = QmlService::with_config(ServiceConfig { workers: 2 });
        let mut sweep = SweepRequest::new("seeds", gate_program());
        for seed in 0..6 {
            sweep = sweep.with_context(gate_context(seed));
        }
        service.submit_sweep("alice", sweep).unwrap();
        let report = service.run_pending();
        assert_eq!(report.jobs, 6);
        assert!(report.jobs_per_second > 0.0);
        let metrics = service.metrics();
        assert_eq!(metrics.last_run, Some(report));
        assert_eq!(metrics.gate_cache.misses, 1);
        assert_eq!(metrics.gate_cache.hits, 5);
    }
}
