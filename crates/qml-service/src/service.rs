//! The submission queue, the streaming service loop, and graceful shutdown.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use qml_backends::ExecutionResult;
use qml_observe::{
    NoopTracer, RingTracer, Stage, TraceEvent, TraceStats, Tracer, DEFAULT_TRACE_CAPACITY,
};
use qml_runtime::{Feed, JobId, JobOutcome, JobSource, JobStatus, Runtime, WorkerPool};
use qml_types::{CapabilityDescriptor, JobBundle, JobRequirements, QmlError, Result};

use crate::fleet::{DeviceSpec, DeviceUtilization, FleetRouter, DEFAULT_DOWN_THRESHOLD};
use crate::metrics::{BackendUtilization, RunSummary, ServiceMetrics, TenantStats};
use crate::observe::{MetricsRegistry, ObservabilitySnapshot};
use crate::scheduler::{
    Admission, FairScheduler, Mode, OutcomeDisposition, SchedPoll, TenantPolicy,
};
use crate::sweep::SweepRequest;

/// Identifier of a submitted batch (single bundles get one too).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BatchId(pub u64);

/// Service construction parameters: pool width plus the per-tenant
/// scheduling policies the fair scheduler enforces.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads in the streaming pool (and in `run_pending` drains).
    pub workers: usize,
    /// Largest number of plan-compatible jobs the fair scheduler may
    /// coalesce into one device-level dispatch (see the micro-batching notes
    /// on [`QmlService`]). `1` disables batching; the default is
    /// [`DEFAULT_MAX_BATCH`].
    pub max_batch: usize,
    /// Scale the per-dispatch batch cap from live queue depth instead of
    /// always batching to [`ServiceConfig::max_batch`]: a deep backlog still
    /// batches to the cap for throughput, but a shallow queue ships small
    /// batches so an isolated job is not held behind a long device call.
    /// Off by default (fixed cap, the pre-adaptive behavior). Applies to
    /// [`ServiceClass::Throughput`](qml_types::ServiceClass) jobs only;
    /// latency-class dispatches are always capped by
    /// [`ServiceConfig::latency_max_batch`].
    pub adaptive_batch: bool,
    /// Fixed micro-batch cap for latency-class dispatches
    /// ([`ServiceClass::Latency`](qml_types::ServiceClass)): a latency job
    /// never waits for more than this many queue-mates to coalesce,
    /// regardless of backlog depth or [`ServiceConfig::adaptive_batch`].
    /// `1` disables latency batching entirely; the default is
    /// [`DEFAULT_LATENCY_MAX_BATCH`].
    pub latency_max_batch: usize,
    /// Policy applied to tenants without an explicit entry in
    /// [`ServiceConfig::tenant_policies`].
    pub default_policy: TenantPolicy,
    /// Per-tenant policy overrides (weight, in-flight cap, rate limit).
    pub tenant_policies: BTreeMap<String, TenantPolicy>,
    /// EWMA smoothing factor of the online cost model (weight of the newest
    /// measured busy-seconds observation per plan key); `≤ 0.0` disables the
    /// model entirely, restoring pure estimate-unit admission. See
    /// [`CostModel::new`](crate::cost_model::CostModel::new). Default
    /// [`DEFAULT_COST_EWMA_ALPHA`](crate::cost_model::DEFAULT_COST_EWMA_ALPHA).
    pub cost_ewma_alpha: f64,
    /// Per-job bound on the measured-cost deficit charge-back, as a multiple
    /// of the job's charged cost: a single outcome may correct the tenant's
    /// deficit by at most `charge_back_clamp × estimated` cost units in
    /// either direction, so one wild outlier (page-fault storm, cold cache
    /// stampede) cannot bankrupt a tenant for many rotations. `≤ 0` disables
    /// charge-back (estimate-unit fairness, the pre-measured behavior).
    /// Default [`DEFAULT_CHARGE_BACK_CLAMP`].
    pub charge_back_clamp: f64,
    /// Retain per-job stage events in a bounded in-memory ring
    /// ([`RingTracer`]); when false (the default) the service observes
    /// through [`NoopTracer`] — latency histograms and the metrics snapshot
    /// still work, but [`QmlService::trace_events`] returns nothing and the
    /// per-event cost is a single inlined boolean load.
    pub tracing: bool,
    /// Ring capacity (events) when [`ServiceConfig::tracing`] is on; once
    /// exceeded the oldest undrained events are overwritten and counted in
    /// [`TraceStats::dropped`]. Default [`DEFAULT_TRACE_CAPACITY`].
    pub trace_capacity: usize,
    /// Explicit fleet devices. A backend plane with no entry here gets one
    /// implicit unlimited device (`"<backend-name>#0"`), so the fleet layer
    /// is always live but single-device planes behave exactly as before.
    pub devices: Vec<DeviceSpec>,
    /// Consecutive device faults that move a device from degraded to down
    /// (see [`qml_types::HealthState`]). Default
    /// [`DEFAULT_DOWN_THRESHOLD`]; values of 0 are treated as 1.
    pub down_threshold: u32,
    /// Route one recovery probe job to a down device every this many
    /// settled outcomes. `0` (the default) disables probing: a down device
    /// stays down.
    pub probe_interval: u64,
}

/// Default [`ServiceConfig::max_batch`]: large enough that sweep traffic
/// amortizes dispatch and realization overhead, small enough that a batch
/// does not serialize a whole sweep onto one worker of a small pool.
pub const DEFAULT_MAX_BATCH: usize = 8;

/// Default [`ServiceConfig::latency_max_batch`]: pairs of plan-compatible
/// latency jobs still amortize one realization, but a latency dispatch never
/// grows past two members — tail latency stays bounded by roughly one
/// queue-mate even under a saturating throughput backlog.
pub const DEFAULT_LATENCY_MAX_BATCH: usize = 2;

/// Default [`ServiceConfig::charge_back_clamp`]: generous enough that a
/// genuine 10×-under-estimated job is charged back in full (correction
/// ≤ 16 × estimate covers it), tight enough that a 1000× outlier is
/// amortized over the cost model instead of the deficit ledger.
pub const DEFAULT_CHARGE_BACK_CLAMP: f64 = 16.0;

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig::with_workers(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .min(8),
        )
    }
}

impl ServiceConfig {
    /// A configuration with the given pool width and default policies.
    pub fn with_workers(workers: usize) -> Self {
        ServiceConfig {
            workers,
            max_batch: DEFAULT_MAX_BATCH,
            adaptive_batch: false,
            latency_max_batch: DEFAULT_LATENCY_MAX_BATCH,
            default_policy: TenantPolicy::default(),
            tenant_policies: BTreeMap::new(),
            cost_ewma_alpha: crate::cost_model::DEFAULT_COST_EWMA_ALPHA,
            charge_back_clamp: DEFAULT_CHARGE_BACK_CLAMP,
            tracing: false,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            devices: Vec::new(),
            down_threshold: DEFAULT_DOWN_THRESHOLD,
            probe_interval: 0,
        }
    }

    /// Register one fleet device, builder-style (see
    /// [`ServiceConfig::devices`]).
    pub fn with_device(mut self, spec: DeviceSpec) -> Self {
        self.devices.push(spec);
        self
    }

    /// Set the degraded→down fault threshold, builder-style (see
    /// [`ServiceConfig::down_threshold`]).
    pub fn with_down_threshold(mut self, threshold: u32) -> Self {
        self.down_threshold = threshold;
        self
    }

    /// Enable down-device recovery probes every `interval` settled
    /// outcomes, builder-style (see [`ServiceConfig::probe_interval`]).
    pub fn with_probe_interval(mut self, interval: u64) -> Self {
        self.probe_interval = interval;
        self
    }

    /// Enable (or disable) per-job stage-event tracing, builder-style (see
    /// [`ServiceConfig::tracing`]).
    pub fn with_tracing(mut self, tracing: bool) -> Self {
        self.tracing = tracing;
        self
    }

    /// Set the trace ring capacity, builder-style (see
    /// [`ServiceConfig::trace_capacity`]). Values of 0 are treated as 1.
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity.max(1);
        self
    }

    /// Cap (or disable, with `1`) micro-batching, builder-style. Values of 0
    /// are treated as 1.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Enable (or disable) queue-depth-adaptive micro-batching,
    /// builder-style (see [`ServiceConfig::adaptive_batch`]).
    pub fn with_adaptive_batch(mut self, adaptive: bool) -> Self {
        self.adaptive_batch = adaptive;
        self
    }

    /// Cap (or disable, with `1`) latency-class micro-batching,
    /// builder-style (see [`ServiceConfig::latency_max_batch`]). Values of 0
    /// are treated as 1.
    pub fn with_latency_max_batch(mut self, max_batch: usize) -> Self {
        self.latency_max_batch = max_batch.max(1);
        self
    }

    /// Set the cost model's EWMA smoothing factor, builder-style (see
    /// [`ServiceConfig::cost_ewma_alpha`]).
    pub fn with_cost_ewma_alpha(mut self, alpha: f64) -> Self {
        self.cost_ewma_alpha = alpha;
        self
    }

    /// Set (or, with `0.0`, disable) the per-job charge-back clamp,
    /// builder-style (see [`ServiceConfig::charge_back_clamp`]).
    pub fn with_charge_back_clamp(mut self, clamp: f64) -> Self {
        self.charge_back_clamp = clamp;
        self
    }

    /// Attach a per-tenant policy override, builder-style.
    pub fn with_tenant_policy(mut self, tenant: impl Into<String>, policy: TenantPolicy) -> Self {
        self.tenant_policies.insert(tenant.into(), policy);
        self
    }

    /// The policy governing `tenant`.
    pub fn policy_for(&self, tenant: &str) -> &TenantPolicy {
        self.tenant_policies
            .get(tenant)
            .unwrap_or(&self.default_policy)
    }
}

/// One tracked batch: its jobs and owner.
#[derive(Debug, Clone)]
struct BatchRecord {
    tenant: Arc<str>,
    job_ids: Vec<JobId>,
}

#[derive(Default)]
struct ServiceState {
    next_batch: u64,
    batches: BTreeMap<BatchId, BatchRecord>,
    job_tenant: BTreeMap<JobId, Arc<str>>,
    jobs_submitted: u64,
    jobs_completed: u64,
    jobs_failed: u64,
    /// Fleet device that produced each job's terminal outcome.
    job_device: BTreeMap<JobId, Arc<str>>,
    per_backend: BTreeMap<String, BackendUtilization>,
    per_tenant: BTreeMap<Arc<str>, TenantStats>,
    last_run: Option<RunSummary>,
}

/// Jobs executed by one pool run, for its [`RunSummary`].
#[derive(Default)]
struct PoolCounters {
    jobs: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
}

/// The shared core behind every [`QmlService`] clone and every pool worker.
struct ServiceInner {
    runtime: Arc<Runtime>,
    config: ServiceConfig,
    state: Mutex<ServiceState>,
    sched: Mutex<FairScheduler>,
    /// Shared observability sink (stage-event tracer + latency histograms);
    /// the same registry the scheduler and — tracer only — the runtime
    /// report through, so every layer's events share one clock epoch.
    obs: Arc<MetricsRegistry>,
}

impl ServiceInner {
    /// Fold one finished job into the service metrics, then reconcile its
    /// measured duration with the fair scheduler
    /// ([`FairScheduler::record_outcome`]: cost-model update + deficit
    /// charge-back) and release its in-flight slot. Called from pool workers
    /// as jobs complete (the locks are taken sequentially, never nested).
    /// Order matters: the state fold happens *before* the scheduler release,
    /// so once `wait_idle` observes quiescence every finished job is already
    /// visible in `metrics()`.
    fn record_outcome(&self, outcome: &JobOutcome, counters: &PoolCounters) {
        let seconds = outcome.duration.as_secs_f64();
        let ok = outcome.result.is_ok();
        let fault = matches!(&outcome.result, Err(e) if e.is_device_fault());
        // Settle the fleet device first: free its slot, walk the health
        // ladder, and — for a device fault with a capable device left to
        // try — fail the job over. The runtime requeue inside the closure
        // only flips a *failed* record back to queued, so an outcome that
        // already settled can never be duplicated.
        let disposition = self.sched.lock().settle_outcome(
            outcome.id,
            outcome.device.as_deref(),
            seconds,
            ok,
            fault,
            || self.runtime.requeue(outcome.id),
        );
        if disposition == OutcomeDisposition::Requeued {
            // Not a terminal outcome: only the plane's busy-seconds accrue
            // (the device really ran that long, and per-backend totals must
            // keep folding over the per-device gauges, which count faulted
            // attempts). Completion counters, traces, and the run summary
            // wait for the terminal attempt.
            if let Some(backend) = &outcome.backend {
                let mut state = self.state.lock();
                state
                    .per_backend
                    .entry(backend.clone())
                    .or_default()
                    .busy_seconds += seconds;
            }
            return;
        }
        counters.jobs.fetch_add(1, Ordering::Relaxed);
        let mut state = self.state.lock();
        let tenant = state.job_tenant.get(&outcome.id).cloned();
        if let Some(device) = &outcome.device {
            state.job_device.insert(outcome.id, Arc::clone(device));
        }
        // Backend attribution covers failed executions too: the pool reports
        // the placed backend even when the run errored.
        if let Some(backend) = &outcome.backend {
            let util = state.per_backend.entry(backend.clone()).or_default();
            util.jobs += 1;
            util.busy_seconds += outcome.duration.as_secs_f64();
        }
        match &outcome.result {
            Ok(_) => {
                counters.completed.fetch_add(1, Ordering::Relaxed);
                state.jobs_completed += 1;
                if let Some(tenant) = tenant.clone() {
                    state.per_tenant.entry(tenant).or_default().completed += 1;
                }
            }
            Err(_) => {
                counters.failed.fetch_add(1, Ordering::Relaxed);
                state.jobs_failed += 1;
                if let Some(tenant) = tenant.clone() {
                    state.per_tenant.entry(tenant).or_default().failed += 1;
                }
            }
        }
        drop(state);
        // Observability is fed *before* the scheduler releases the job's
        // in-flight slot: once `wait_idle` observes quiescence, every
        // finished job's `executed`/`outcome` events and latency samples are
        // already visible.
        let measured_us = outcome.duration.as_micros() as u64;
        self.obs
            .observe_exec(tenant.as_deref(), outcome.backend.as_deref(), measured_us);
        if self.obs.tracing_enabled() {
            self.obs.trace(
                outcome.id,
                tenant.as_ref(),
                None,
                Stage::Executed { measured_us },
            );
            self.obs.trace(
                outcome.id,
                tenant.as_ref(),
                None,
                Stage::Outcome {
                    ok: outcome.result.is_ok(),
                },
            );
        }
        self.sched.lock().record_outcome(
            outcome.id,
            outcome.duration.as_secs_f64(),
            outcome.result.is_ok(),
        );
    }

    /// A point-in-time [`ServiceMetrics`] snapshot (shared by the service
    /// and its streaming handle).
    fn metrics(&self) -> ServiceMetrics {
        let cache = self.runtime.cache();
        // Locks are taken one at a time (scheduler gauges first, then the
        // submission/outcome state), never nested.
        let (scheduler, gauges, per_device, per_class) = {
            let sched = self.sched.lock();
            (
                sched.metrics,
                sched.gauges(),
                sched.device_snapshot(),
                sched.class_snapshot(),
            )
        };
        let state = self.state.lock();
        let mut per_tenant: BTreeMap<String, TenantStats> = state
            .per_tenant
            .iter()
            .map(|(name, stats)| (name.to_string(), *stats))
            .collect();
        for (name, gauge) in gauges {
            let stats = per_tenant.entry(name.to_string()).or_default();
            stats.dispatched = gauge.dispatched;
            stats.in_flight = gauge.in_flight;
            stats.throttled = gauge.throttled;
            stats.total_wait_seconds = gauge.total_wait_seconds;
            stats.busy_seconds = gauge.busy_seconds;
        }
        ServiceMetrics {
            jobs_submitted: state.jobs_submitted,
            jobs_completed: state.jobs_completed,
            jobs_failed: state.jobs_failed,
            queue_depth: self.runtime.queue_depth(),
            cache: cache.stats(),
            gate_cache: cache.gate_stats(),
            anneal_cache: cache.anneal_stats(),
            scheduler,
            per_backend: state.per_backend.clone(),
            per_device,
            per_class,
            per_tenant,
            last_run: state.last_run,
        }
    }

    /// The unified observability snapshot: [`ServiceInner::metrics`] plus
    /// latency percentiles, cost gauges, and tracer health.
    fn snapshot(&self) -> ObservabilitySnapshot {
        self.obs.snapshot(self.metrics())
    }
}

/// Pool workers pull their next job straight from the fair scheduler.
impl JobSource for ServiceInner {
    fn next_job(&self, _worker: usize) -> Feed {
        match self.sched.lock().next_job(Instant::now()) {
            SchedPoll::Dispatch(dispatch) => Feed::Job(dispatch),
            SchedPoll::Idle => Feed::Idle,
            SchedPoll::Shutdown => Feed::Shutdown,
        }
    }

    fn job_skipped(&self, id: JobId) {
        self.sched.lock().release(id);
    }
}

/// The multi-tenant execution service.
///
/// Submissions (single bundles or [`SweepRequest`]s) are validated and
/// expanded eagerly, recorded on the underlying [`Runtime`], and admitted to
/// a **per-tenant fair scheduler** (deficit round robin over cost-ranked
/// queues, with optional weights, in-flight caps, and token-bucket rate
/// limits — see [`TenantPolicy`]). Execution happens either
///
/// * **streaming** — [`QmlService::start`] spawns a long-lived worker pool
///   that keeps accepting `submit`/`submit_sweep` *while running* and is shut
///   down gracefully through the returned [`ServiceHandle`]; or
/// * **one-shot** — [`QmlService::run_pending`], a thin submit-then-drain
///   wrapper over the same machinery.
///
/// **Micro-batching.** When the scheduler picks a tenant, it opportunistically
/// coalesces up to [`ServiceConfig::max_batch`] queued jobs of that tenant
/// that share a device-level batch key — same backend, same realization plan
/// (see [`qml_backends::Backend::batch_key`]) — into one dispatch, executed
/// through the backend's `execute_batch`: one transpilation/lowering serves
/// the whole group even on a cold cache. Fairness accounting is unchanged
/// (deficit, rate-limit tokens, and in-flight slots are spent per member), so
/// under contention batches stay within the tenant's DRR budget, while an
/// uncontended tenant batches up to the cap. Formation counts surface in
/// [`SchedulerMetrics`](crate::SchedulerMetrics).
///
/// All executions share the runtime's transpilation/lowering cache across
/// tenants. `QmlService` is cheaply cloneable; clones share all state, which
/// is how submitter threads hand jobs to a running service:
///
/// ```
/// use qml_service::{QmlService, ServiceConfig};
/// use qml_algorithms::{qaoa_maxcut_program, QaoaSchedule, RING_P1_ANGLES};
/// use qml_graph::cycle;
/// use qml_types::{ContextDescriptor, ExecConfig, Target};
///
/// let service = QmlService::with_config(ServiceConfig::with_workers(2));
/// let handle = service.start()?;            // pool is now live
///
/// // Submit from another thread *while the service runs*.
/// let submitter = {
///     let service = service.clone();
///     std::thread::spawn(move || {
///         let program = qaoa_maxcut_program(
///             &cycle(4),
///             &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]),
///         )
///         .unwrap();
///         let context = ContextDescriptor::for_gate(
///             ExecConfig::new("gate.aer_simulator")
///                 .with_samples(64)
///                 .with_seed(7)
///                 .with_target(Target::ring(4)),
///         );
///         service.submit("live-tenant", program.with_context(context)).unwrap()
///     })
/// };
/// let (_batch, job) = submitter.join().unwrap();
///
/// let summary = handle.drain();             // finish everything, then stop
/// assert_eq!(summary.completed, 1);
/// assert_eq!(service.result(job).unwrap().shots, 64);
/// # Ok::<(), qml_types::QmlError>(())
/// ```
pub struct QmlService {
    inner: Arc<ServiceInner>,
}

impl Clone for QmlService {
    fn clone(&self) -> Self {
        QmlService {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Default for QmlService {
    fn default() -> Self {
        QmlService::new()
    }
}

impl QmlService {
    /// A service over the built-in backends with default worker count.
    pub fn new() -> Self {
        QmlService::with_config(ServiceConfig::default())
    }

    /// A service over the built-in backends with explicit configuration.
    pub fn with_config(config: ServiceConfig) -> Self {
        QmlService::with_runtime(Runtime::with_default_backends(), config)
    }

    /// A service over a caller-provided runtime (custom backends, shared
    /// cache, ...).
    pub fn with_runtime(mut runtime: Runtime, config: ServiceConfig) -> Self {
        let tracer: Arc<dyn Tracer> = if config.tracing {
            Arc::new(RingTracer::with_capacity(config.trace_capacity))
        } else {
            Arc::new(NoopTracer)
        };
        let obs = Arc::new(MetricsRegistry::new(tracer));
        // The runtime shares the service's tracer so plan/bind attribution
        // from workers lands in the same event stream (same clock epoch) as
        // the service's submit/dispatch/outcome stages.
        runtime.set_tracer(Arc::clone(obs.tracer()));
        let mut sched = FairScheduler::new(
            config.max_batch,
            config.latency_max_batch,
            config.adaptive_batch,
            config.cost_ewma_alpha,
            config.charge_back_clamp,
            Arc::clone(&obs),
        );
        // Every registered backend plane fronts a fleet: explicitly
        // configured devices where given, otherwise one implicit unlimited
        // device per plane — the fleet code path is always exercised, and a
        // single-device plane behaves exactly like the pre-fleet service.
        let mut specs = config.devices.clone();
        for backend in runtime.scheduler().registry().backends() {
            if specs.iter().all(|s| s.backend.name() != backend.name()) {
                specs.push(DeviceSpec::new(
                    format!("{}#0", backend.name()),
                    Arc::clone(backend),
                    CapabilityDescriptor::unlimited(),
                ));
            }
        }
        sched.set_fleet(FleetRouter::new(
            specs,
            config.cost_ewma_alpha,
            config.down_threshold,
            config.probe_interval,
        ));
        QmlService {
            inner: Arc::new(ServiceInner {
                runtime: Arc::new(runtime),
                config,
                state: Mutex::new(ServiceState::default()),
                sched: Mutex::new(sched),
                obs,
            }),
        }
    }

    /// The underlying runtime.
    pub fn runtime(&self) -> &Runtime {
        &self.inner.runtime
    }

    /// Submit one bundle for a tenant. Returns the batch (of size one) and
    /// the job id. Accepted while a streaming pool is running: the job is
    /// picked up by the fair scheduler without any drain/restart.
    pub fn submit(&self, tenant: &str, bundle: JobBundle) -> Result<(BatchId, JobId)> {
        let batch = self.submit_jobs(tenant, vec![bundle])?;
        let job = self.inner.state.lock().batches[&batch].job_ids[0];
        Ok((batch, job))
    }

    /// Expand and submit a parameter sweep for a tenant. The whole sweep is
    /// validated before any job is queued: a malformed sweep is rejected
    /// atomically. Like [`QmlService::submit`], sweeps are accepted while
    /// the service is running.
    pub fn submit_sweep(&self, tenant: &str, sweep: SweepRequest) -> Result<BatchId> {
        let jobs = sweep.expand()?;
        self.submit_jobs(tenant, jobs)
    }

    fn submit_jobs(&self, tenant: &str, bundles: Vec<JobBundle>) -> Result<BatchId> {
        // Validate everything up front so a batch is admitted all-or-nothing.
        for bundle in &bundles {
            bundle.validate()?;
        }
        // Place each job once, before taking any lock: the fair scheduler
        // spends DRR deficit in estimated-cost units, and the placement is
        // carried to the worker so the bundle is never placed twice. The
        // placed backend also stamps its device-level batch key (plan
        // identity folded with the backend name) so the scheduler can
        // coalesce plan-compatible jobs into micro-batches.
        let mut prepared = Vec::with_capacity(bundles.len());
        for bundle in bundles {
            let placement = self.inner.runtime.scheduler().place(&bundle).ok();
            let cost = placement.as_ref().map(|p| p.estimated_cost).unwrap_or(0.0);
            let batch_key = placement.as_ref().and_then(|p| {
                use qml_types::bundle::{fnv1a64_init, fnv1a64_update};
                let key = p.backend.batch_key(&bundle)?;
                let mut hash = fnv1a64_update(fnv1a64_init(), p.backend.name().as_bytes());
                hash = fnv1a64_update(hash, &key.to_le_bytes());
                Some(hash)
            });
            // An explicit `duration_us` cost hint is the submitter's own
            // wall-clock claim: it seeds the measured-cost model (and prices
            // this admission) until real measurements take over.
            let hint_seconds = hint_seconds(&bundle);
            // Fleet requirements are derived once here and carried with the
            // job, so routing — and re-routing after a device fault — never
            // re-parses descriptors.
            let requirements = JobRequirements::of(&bundle);
            // The service class (and any relative deadline) rides the bundle;
            // the deadline clock starts at submission, not dispatch, so queue
            // wait counts against it.
            let class = bundle.service_class();
            let deadline = class.deadline().map(|budget| Instant::now() + budget);
            prepared.push((
                bundle,
                Admission {
                    // Placeholder until the runtime assigns the real id at
                    // submission below.
                    id: JobId(0),
                    cost,
                    hint_seconds,
                    placement,
                    batch_key,
                    requirements: Some(requirements),
                    class,
                    deadline,
                    retry: false,
                },
            ));
        }
        // Fleet feasibility, still before anything is recorded: a job no
        // device on its placed plane could *ever* serve (too wide, wrong
        // optimization level) rejects the whole batch atomically, instead
        // of queueing work that can only bounce until it fails.
        {
            let sched = self.inner.sched.lock();
            for (_, adm) in &prepared {
                if let (Some(placement), Some(requirements)) = (&adm.placement, &adm.requirements) {
                    if !sched.feasible(placement.backend.name(), requirements) {
                        return Err(QmlError::Validation(format!(
                            "no device in the '{}' fleet can serve this job \
                             (width {}, optimization level {})",
                            placement.backend.name(),
                            requirements.qubits,
                            requirements.opt_level
                        )));
                    }
                }
            }
        }
        let jobs = {
            let mut submitted = Vec::with_capacity(prepared.len());
            for (bundle, mut adm) in prepared {
                adm.id = self.inner.runtime.submit(bundle)?;
                submitted.push(adm);
            }
            submitted
        };
        // Record batch/tenant bookkeeping *before* admitting anything to the
        // fair scheduler: a running pool may dispatch and finish a job the
        // instant it is admitted, and record_outcome must already find its
        // tenant. Locks are taken sequentially, never nested.
        let tenant: Arc<str> = self
            .inner
            .sched
            .lock()
            .intern(tenant, self.inner.config.policy_for(tenant));
        let batch = {
            let mut state = self.inner.state.lock();
            let id = BatchId(state.next_batch);
            state.next_batch += 1;
            state.jobs_submitted += jobs.len() as u64;
            let tenant_stats = state.per_tenant.entry(Arc::clone(&tenant)).or_default();
            tenant_stats.submitted += jobs.len() as u64;
            for adm in &jobs {
                state.job_tenant.insert(adm.id, Arc::clone(&tenant));
            }
            state.batches.insert(
                id,
                BatchRecord {
                    tenant: Arc::clone(&tenant),
                    job_ids: jobs.iter().map(|adm| adm.id).collect(),
                },
            );
            id
        };
        let mut sched = self.inner.sched.lock();
        for adm in jobs {
            // `submitted` lands immediately before the scheduler's own
            // `admitted` event, under the same lock: per-job stage order and
            // timestamp order agree by construction.
            if self.inner.obs.tracing_enabled() {
                self.inner
                    .obs
                    .trace(adm.id, Some(&tenant), adm.batch_key, Stage::Submitted);
            }
            sched.admit_job(&tenant, adm);
        }
        Ok(batch)
    }

    /// Jobs of a batch, in expansion order (empty for unknown batches).
    pub fn batch_jobs(&self, batch: BatchId) -> Vec<JobId> {
        self.inner
            .state
            .lock()
            .batches
            .get(&batch)
            .map(|b| b.job_ids.clone())
            .unwrap_or_default()
    }

    /// Status of a job.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.inner.runtime.status(id)
    }

    /// Result of a completed job.
    pub fn result(&self, id: JobId) -> Option<ExecutionResult> {
        self.inner.runtime.result(id)
    }

    /// Start the streaming service loop: a long-lived pool of
    /// [`ServiceConfig::workers`] threads that executes admitted jobs
    /// continuously under the fair scheduler and keeps accepting
    /// submissions while running.
    ///
    /// Returns a [`ServiceHandle`] whose [`drain`](ServiceHandle::drain) /
    /// [`abort`](ServiceHandle::abort) shut the loop down gracefully. At
    /// most one pool may run at a time; starting a second is an error.
    pub fn start(&self) -> Result<ServiceHandle> {
        {
            let mut sched = self.inner.sched.lock();
            if sched.mode != Mode::Stopped {
                return Err(QmlError::Validation(
                    "service is already running a streaming pool".into(),
                ));
            }
            sched.mode = Mode::Running;
        }
        let counters = Arc::new(PoolCounters::default());
        let sink = {
            let inner = Arc::clone(&self.inner);
            let counters = Arc::clone(&counters);
            Arc::new(move |outcome: JobOutcome| inner.record_outcome(&outcome, &counters))
        };
        let source: Arc<dyn JobSource> = Arc::clone(&self.inner) as Arc<dyn JobSource>;
        let pool = WorkerPool::spawn(&self.inner.runtime, self.inner.config.workers, source, sink);
        Ok(ServiceHandle {
            inner: Arc::clone(&self.inner),
            workers: pool.workers(),
            pool: Some(pool),
            counters,
            started: Instant::now(),
        })
    }

    /// Execute every queued job and fold the outcomes into the service
    /// metrics. A thin submit-then-drain wrapper over the streaming loop:
    /// equivalent to [`QmlService::start`] followed immediately by
    /// [`ServiceHandle::drain`]. Returns the drain summary.
    ///
    /// # Panics
    ///
    /// Panics if a streaming pool is already running — drain it (or abort
    /// it) through its [`ServiceHandle`] instead.
    pub fn run_pending(&self) -> RunSummary {
        self.start()
            .expect("run_pending requires no streaming pool to be active")
            .drain()
    }

    /// Block until `job` reaches a terminal state ([`JobStatus::Completed`]
    /// or [`JobStatus::Failed`]) or `timeout` elapses, returning the last
    /// observed status (`None` for unknown ids). Intended for callers of a
    /// *running* service; without a pool this only times out.
    pub fn wait_for(&self, job: JobId, timeout: Duration) -> Option<JobStatus> {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.status(job);
            match status {
                Some(JobStatus::Completed) | Some(JobStatus::Failed(_)) | None => return status,
                _ if Instant::now() >= deadline => return status,
                _ => thread::sleep(Duration::from_micros(500)),
            }
        }
    }

    /// Block until the service is quiescent — no job admitted to the fair
    /// scheduler is queued or in flight — or `timeout` elapses. Returns
    /// true if quiescence was reached.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let sched = self.inner.sched.lock();
                if sched.queued() == 0 && sched.in_flight() == 0 {
                    return true;
                }
            }
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_micros(500));
        }
    }

    /// A point-in-time snapshot of service health.
    pub fn metrics(&self) -> ServiceMetrics {
        self.inner.metrics()
    }

    /// The unified observability snapshot: [`QmlService::metrics`] folded
    /// together with per-tenant / per-backend latency percentiles,
    /// cost-model gauges, and trace-buffer health. Serialize it with
    /// [`ObservabilitySnapshot::to_json`] /
    /// [`to_jsonl`](ObservabilitySnapshot::to_jsonl), or grep it via
    /// [`dump_kv`](ObservabilitySnapshot::dump_kv).
    pub fn snapshot(&self) -> ObservabilitySnapshot {
        self.inner.snapshot()
    }

    /// Drain the retained per-job stage events (oldest first). Empty unless
    /// [`ServiceConfig::tracing`] is on. Draining frees the ring: drained
    /// events are never counted as dropped.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.inner.obs.tracer().drain()
    }

    /// Trace-buffer health: events recorded, events dropped to ring
    /// overflow, and the configured capacity.
    pub fn trace_stats(&self) -> TraceStats {
        self.inner.obs.tracer().stats()
    }

    /// Tenant that submitted a job (if known). The returned id is shared
    /// with the service's own tenant table — no per-call allocation.
    pub fn tenant_of(&self, id: JobId) -> Option<Arc<str>> {
        self.inner.state.lock().job_tenant.get(&id).cloned()
    }

    /// The fleet device that produced a job's **terminal** outcome, if the
    /// job was device-routed. Requeued attempts are not recorded: by the
    /// time this returns a device, the result is final.
    pub fn device_of(&self, id: JobId) -> Option<Arc<str>> {
        self.inner.state.lock().job_device.get(&id).cloned()
    }

    /// Per-device fleet gauges keyed by device id: health, dispatch /
    /// completion / failover counters, busy-seconds, queue depth.
    /// `busy_seconds` folds: summing one plane's devices reproduces that
    /// plane's [`BackendUtilization`] busy-seconds.
    pub fn device_metrics(&self) -> BTreeMap<String, DeviceUtilization> {
        self.inner.sched.lock().device_snapshot()
    }

    /// Cordon a fleet device for maintenance: it accepts no new routes,
    /// in-flight work finishes normally, and anything parked on its queue is
    /// released for siblings to steal. Healthy state and fault counters are
    /// untouched — [`QmlService::uncordon_device`] restores routing exactly
    /// as it was. Returns false for unknown device ids.
    pub fn cordon_device(&self, device: &str) -> bool {
        self.inner.sched.lock().cordon(device)
    }

    /// Lift a cordon placed by [`QmlService::cordon_device`]. Returns false
    /// for unknown device ids.
    pub fn uncordon_device(&self, device: &str) -> bool {
        self.inner.sched.lock().uncordon(device)
    }

    /// Tenant that owns a batch (if known). Shared id, no per-call
    /// allocation.
    pub fn batch_tenant(&self, batch: BatchId) -> Option<Arc<str>> {
        self.inner
            .state
            .lock()
            .batches
            .get(&batch)
            .map(|b| Arc::clone(&b.tenant))
    }
}

/// The bundle's explicit wall-clock claim, if any: its operators' cost
/// hints folded with [`CostHint::saturating_add`], whose duration survives
/// only when **every** operator carries one — the aggregate never
/// over-claims precision, so a lone hinted operator among unhinted ones
/// cannot price (and seed the cost model for) the whole bundle.
///
/// [`CostHint::saturating_add`]: qml_types::CostHint::saturating_add
fn hint_seconds(bundle: &JobBundle) -> Option<f64> {
    let total = bundle
        .operators
        .iter()
        .map(|op| op.cost_hint.unwrap_or_default())
        .reduce(|a, b| a.saturating_add(&b))?;
    total.duration_us.map(|us| us / 1e6)
}

/// Control handle for a running streaming pool (returned by
/// [`QmlService::start`]).
///
/// Exactly one of [`drain`](ServiceHandle::drain) /
/// [`abort`](ServiceHandle::abort) should end the run. Dropping the handle
/// without either aborts the pool (current jobs finish, the rest stay
/// queued) so worker threads are never leaked.
pub struct ServiceHandle {
    inner: Arc<ServiceInner>,
    pool: Option<WorkerPool>,
    counters: Arc<PoolCounters>,
    started: Instant,
    workers: usize,
}

impl ServiceHandle {
    /// Graceful shutdown: execute everything admitted (rate limits are
    /// waived so throttled tenants cannot stall shutdown; weights and
    /// in-flight caps still apply), wait for in-flight work, stop the pool.
    /// Jobs submitted directly to the underlying [`Runtime`] — bypassing the
    /// fair scheduler — are swept by a one-shot drain at the end, so nothing
    /// queued anywhere is left behind. Returns the summary of the whole run.
    pub fn drain(mut self) -> RunSummary {
        self.shutdown(Mode::Draining)
    }

    /// Hard stop: workers finish the job they are on and exit at the next
    /// job boundary. Undispatched jobs stay queued and run on the next
    /// [`QmlService::start`] or [`QmlService::run_pending`]. Returns the
    /// summary of the run so far.
    pub fn abort(mut self) -> RunSummary {
        self.shutdown(Mode::Aborting)
    }

    /// The unified observability snapshot of the running service — same as
    /// [`QmlService::snapshot`], offered on the handle so operators holding
    /// only the handle can poll health mid-run.
    pub fn snapshot(&self) -> ObservabilitySnapshot {
        self.inner.snapshot()
    }

    /// One JSON line of the current [`ObservabilitySnapshot`] — append to a
    /// `.jsonl` log to record a performance trajectory over a run's life.
    pub fn dump_jsonl(&self) -> String {
        self.inner.snapshot().to_jsonl()
    }

    fn shutdown(&mut self, mode: Mode) -> RunSummary {
        self.inner.sched.lock().mode = mode;
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
        if mode == Mode::Draining && self.inner.runtime.queue_depth() > 0 {
            // Jobs submitted directly to `service.runtime()` bypass the fair
            // scheduler, but a drain still owes them execution — run_pending
            // drained the whole runtime queue before the streaming loop
            // existed, and that contract is kept. Sweep the leftovers with
            // the runtime's one-shot pool and fold them into this summary.
            for outcome in self.inner.runtime.run_all_detailed(self.workers) {
                self.inner.record_outcome(&outcome, &self.counters);
            }
        }
        let wall_seconds = self.started.elapsed().as_secs_f64();
        let jobs = self.counters.jobs.load(Ordering::Relaxed) as usize;
        let summary = RunSummary {
            jobs,
            completed: self.counters.completed.load(Ordering::Relaxed) as usize,
            failed: self.counters.failed.load(Ordering::Relaxed) as usize,
            workers: self.workers,
            stolen: 0,
            wall_seconds,
            jobs_per_second: if wall_seconds > 0.0 {
                jobs as f64 / wall_seconds
            } else {
                0.0
            },
        };
        self.inner.state.lock().last_run = Some(summary);
        self.inner.sched.lock().mode = Mode::Stopped;
        summary
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        if self.pool.is_some() {
            self.shutdown(Mode::Aborting);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qml_algorithms::{maxcut_ising_program, qaoa_maxcut_program, QaoaSchedule, RING_P1_ANGLES};
    use qml_graph::cycle;
    use qml_types::{AnnealConfig, ContextDescriptor, ExecConfig, Target};

    fn gate_program() -> JobBundle {
        qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap()
    }

    fn gate_context(seed: u64) -> ContextDescriptor {
        ContextDescriptor::for_gate(
            ExecConfig::new("gate.aer_simulator")
                .with_samples(64)
                .with_seed(seed)
                .with_target(Target::ring(4)),
        )
    }

    #[test]
    fn single_submission_round_trip() {
        let service = QmlService::with_config(ServiceConfig::with_workers(2));
        let (batch, job) = service
            .submit("alice", gate_program().with_context(gate_context(1)))
            .unwrap();
        assert_eq!(service.status(job), Some(JobStatus::Queued));
        assert_eq!(service.metrics().queue_depth, 1);
        let report = service.run_pending();
        assert_eq!(report.completed, 1);
        assert_eq!(service.result(job).unwrap().shots, 64);
        assert_eq!(service.batch_jobs(batch), vec![job]);
        assert_eq!(service.tenant_of(job).as_deref(), Some("alice"));
        assert_eq!(service.metrics().queue_depth, 0);
    }

    #[test]
    fn per_tenant_and_per_backend_accounting() {
        let service = QmlService::with_config(ServiceConfig::with_workers(2));
        service
            .submit("alice", gate_program().with_context(gate_context(1)))
            .unwrap();
        service
            .submit(
                "bob",
                maxcut_ising_program(&cycle(4)).unwrap().with_context(
                    ContextDescriptor::for_anneal(
                        "anneal.neal_simulator",
                        AnnealConfig::with_reads(50),
                    ),
                ),
            )
            .unwrap();
        service.run_pending();
        let metrics = service.metrics();
        assert_eq!(metrics.per_tenant["alice"].completed, 1);
        assert_eq!(metrics.per_tenant["bob"].completed, 1);
        assert_eq!(metrics.per_tenant["alice"].dispatched, 1);
        assert_eq!(metrics.per_tenant["alice"].in_flight, 0);
        assert_eq!(metrics.per_backend["qml-gate-simulator"].jobs, 1);
        assert_eq!(metrics.per_backend["qml-simulated-annealer"].jobs, 1);
        assert!(metrics.per_backend["qml-gate-simulator"].busy_seconds > 0.0);
        assert_eq!(metrics.scheduler.dispatched, 2);
    }

    #[test]
    fn invalid_sweep_is_rejected_atomically() {
        let service = QmlService::with_config(ServiceConfig::with_workers(1));
        let sweep = SweepRequest::new(
            "bad",
            qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Symbolic { layers: 1 }).unwrap(),
        );
        assert!(service.submit_sweep("alice", sweep).is_err());
        assert_eq!(service.metrics().jobs_submitted, 0);
        assert_eq!(service.metrics().queue_depth, 0);
    }

    #[test]
    fn metrics_snapshot_reports_last_run() {
        let service = QmlService::with_config(ServiceConfig::with_workers(2));
        let mut sweep = SweepRequest::new("seeds", gate_program());
        for seed in 0..6 {
            sweep = sweep.with_context(gate_context(seed));
        }
        service.submit_sweep("alice", sweep).unwrap();
        let report = service.run_pending();
        assert_eq!(report.jobs, 6);
        assert!(report.jobs_per_second > 0.0);
        let metrics = service.metrics();
        assert_eq!(metrics.last_run, Some(report));
        assert_eq!(metrics.gate_cache.misses, 1);
        assert_eq!(metrics.gate_cache.hits, 5);
    }

    #[test]
    fn tenant_ids_are_interned_not_cloned() {
        let service = QmlService::with_config(ServiceConfig::with_workers(1));
        let (batch_a, job_a) = service
            .submit("alice", gate_program().with_context(gate_context(1)))
            .unwrap();
        let (_, job_b) = service
            .submit("alice", gate_program().with_context(gate_context(2)))
            .unwrap();
        let a = service.tenant_of(job_a).unwrap();
        let b = service.tenant_of(job_b).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "one shared allocation per tenant");
        let batch = service.batch_tenant(batch_a).unwrap();
        assert!(Arc::ptr_eq(&a, &batch));
    }

    #[test]
    fn start_twice_is_rejected() {
        let service = QmlService::with_config(ServiceConfig::with_workers(1));
        let handle = service.start().unwrap();
        assert!(service.start().is_err());
        handle.drain();
        // After a shutdown the service can be started again.
        service.start().unwrap().drain();
    }

    #[test]
    fn runtime_direct_submissions_still_drain() {
        // Jobs handed straight to the runtime bypass the fair scheduler;
        // run_pending (and any drain) must still execute them.
        let service = QmlService::with_config(ServiceConfig::with_workers(2));
        let direct = service
            .runtime()
            .submit(gate_program().with_context(gate_context(7)))
            .unwrap();
        service
            .submit("alice", gate_program().with_context(gate_context(8)))
            .unwrap();
        let report = service.run_pending();
        assert_eq!(report.jobs, 2);
        assert_eq!(report.completed, 2);
        assert_eq!(service.status(direct), Some(JobStatus::Completed));
        assert_eq!(service.metrics().queue_depth, 0);
    }

    #[test]
    fn sub_unit_burst_does_not_starve_a_rate_limited_tenant() {
        // burst = 0.25 can never hold a whole token; it must behave as 1.0
        // rather than silently zeroing the tenant's throughput.
        use crate::scheduler::RateLimit;
        let config = ServiceConfig::with_workers(1).with_tenant_policy(
            "drip",
            TenantPolicy::default().with_rate_limit(RateLimit::per_second(1000.0).with_burst(0.25)),
        );
        let service = QmlService::with_config(config);
        for seed in 0..3 {
            service
                .submit("drip", gate_program().with_context(gate_context(seed)))
                .unwrap();
        }
        let handle = service.start().unwrap();
        assert!(
            service.wait_idle(std::time::Duration::from_secs(30)),
            "sub-unit burst must not starve the tenant"
        );
        assert_eq!(handle.drain().completed, 3);
    }

    #[test]
    fn dropping_the_handle_aborts_instead_of_leaking() {
        let service = QmlService::with_config(ServiceConfig::with_workers(1));
        {
            let _handle = service.start().unwrap();
        }
        // Pool is gone: a fresh start succeeds and drains cleanly.
        service
            .submit("alice", gate_program().with_context(gate_context(1)))
            .unwrap();
        let report = service.run_pending();
        assert_eq!(report.completed, 1);
    }
}
