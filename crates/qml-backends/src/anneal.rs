//! The annealing backend: the repository's stand-in for the paper's
//! "D-Wave Ocean neal" execution path (Fig. 3).
//!
//! Pipeline: lower the bundle's single `ISING_PROBLEM` descriptor to a binary
//! quadratic model, read the annealer policy from the context's `anneal`
//! block (`num_reads`, sweeps, β range, seed), run the Metropolis simulated
//! annealer, and decode the aggregated samples through the same explicit
//! result schema the gate path uses.

use std::sync::Arc;

use qml_anneal::{AnnealParams, SimulatedAnnealer};
use qml_types::{AnnealConfig, DecodedCounts, ExecConfig, JobBundle, QmlError, Result};

use crate::cache::{AnnealPlan, AnnealPlanKey, TranspileCache};
use crate::lowering::lower_to_bqm;
use crate::results::{EnergyStats, ExecutionResult};
use crate::traits::Backend;

/// Default engine identifier served by [`AnnealBackend`].
pub const DEFAULT_ANNEAL_ENGINE: &str = "anneal.simulated_annealer";

/// Default Metropolis sweeps per read when the context does not specify them.
pub const DEFAULT_SWEEPS: u64 = 200;

/// The simulated-annealing backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnnealBackend;

impl AnnealBackend {
    /// Create an annealing backend.
    pub fn new() -> Self {
        AnnealBackend
    }

    /// Validate the bundle and its annealing policy; returns the exec block.
    fn prepare(&self, bundle: &JobBundle) -> Result<Option<ExecConfig>> {
        bundle.validate()?;
        let context = bundle.context.clone().unwrap_or_default();
        let exec = context.exec.clone();
        if let Some(exec) = &exec {
            if !self.supports_engine(&exec.engine) {
                return Err(QmlError::Unsupported(format!(
                    "annealing backend cannot serve engine `{}`",
                    exec.engine
                )));
            }
            exec.validate()?;
        }
        if let Some(anneal) = &context.anneal {
            anneal.validate()?;
        }
        Ok(exec)
    }

    /// The plan-cache key of a (validated) bundle under its context.
    fn plan_key(bundle: &JobBundle, exec: Option<&ExecConfig>) -> AnnealPlanKey {
        let context = bundle.context.clone().unwrap_or_default();
        AnnealPlanKey {
            // The realized program: attached bindings participate in
            // `program_hash`, so two binding sets of one symbolic problem
            // lower to (and cache) distinct BQMs.
            program: bundle.program_hash(),
            schedule: Self::schedule_fingerprint(exec, context.anneal.as_ref()),
        }
    }

    /// The deterministic realization phase: lower the bundle to a BQM plan.
    fn build_plan(bundle: &JobBundle) -> Result<AnnealPlan> {
        let lowered = lower_to_bqm(bundle)?;
        Ok(AnnealPlan {
            bqm: lowered.bqm,
            register: lowered.register,
            schema: lowered.schema,
        })
    }

    /// Sample a lowered plan under the bundle's annealer policy and decode.
    fn run_plan(
        &self,
        bundle: &JobBundle,
        exec: Option<ExecConfig>,
        plan: &AnnealPlan,
    ) -> Result<ExecutionResult> {
        let context = bundle.context.clone().unwrap_or_default();
        let params = Self::params(
            exec.as_ref(),
            context.anneal.as_ref(),
            bundle.program_hash(),
        );
        let sample_set = SimulatedAnnealer::new().sample(&plan.bqm, &params);

        // The sample set's bitstrings are in variable order; permute them
        // into the schema's classical-bit order first.
        let indices = plan.schema.wire_indices(&plan.register)?;
        let counts: std::collections::BTreeMap<String, u64> = sample_set
            .records
            .iter()
            .map(|record| {
                let full = record.bitstring();
                let word: String = indices
                    .iter()
                    .map(|&i| full.as_bytes()[i] as char)
                    .collect();
                (word, record.num_occurrences)
            })
            .collect();
        let decoded = DecodedCounts::decode(&counts, &plan.schema, &plan.register)?;

        let energy_stats = sample_set.lowest().map(|best| EnergyStats {
            min_energy: best.energy,
            mean_energy: sample_set.mean_energy(),
            ground_state_probability: sample_set.ground_state_probability(1e-9),
        });

        Ok(ExecutionResult {
            backend: self.name().to_string(),
            engine: exec
                .map(|e| e.engine)
                .unwrap_or_else(|| DEFAULT_ANNEAL_ENGINE.to_string()),
            register: plan.register.id.clone(),
            shots: params.num_reads,
            counts,
            decoded,
            gate_metrics: None,
            energy_stats,
            qec_estimate: None,
        })
    }

    /// Stable fingerprint of the context's **annealing schedule** — engine,
    /// Metropolis sweeps, and β-range. These are the knobs that shape the
    /// anneal itself; the read policy (`num_reads`, seed) deliberately stays
    /// out so shot-ladder sweeps keep sharing one plan. Part of the plan
    /// cache key so two contexts with different schedules can never collide
    /// on one BQM plan.
    fn schedule_fingerprint(exec: Option<&ExecConfig>, anneal: Option<&AnnealConfig>) -> u64 {
        use qml_types::bundle::{fnv1a64_init, fnv1a64_update};
        let mut hash = fnv1a64_init();
        if let Some(exec) = exec {
            hash = fnv1a64_update(hash, exec.engine.as_bytes());
        }
        hash = fnv1a64_update(hash, b"\x1f");
        let sweeps = anneal.and_then(|a| a.num_sweeps).unwrap_or(DEFAULT_SWEEPS);
        hash = fnv1a64_update(hash, &sweeps.to_le_bytes());
        hash = fnv1a64_update(hash, b"\x1f");
        if let Some((lo, hi)) = anneal.and_then(|a| a.beta_range) {
            hash = fnv1a64_update(hash, &lo.to_bits().to_le_bytes());
            hash = fnv1a64_update(hash, &hi.to_bits().to_le_bytes());
        }
        hash
    }

    /// Derive sampler parameters from the context blocks. `default_seed` —
    /// the submitting bundle's program hash — seeds unseeded runs, so two
    /// distinct unseeded problems never share Metropolis noise (a flat
    /// default of 0 made every unseeded sweep point sample-correlated);
    /// explicit seeds behave exactly as before.
    fn params(
        exec: Option<&ExecConfig>,
        anneal: Option<&AnnealConfig>,
        default_seed: u64,
    ) -> AnnealParams {
        let num_reads = anneal
            .map(|a| a.num_reads)
            .or_else(|| exec.map(|e| e.samples))
            .unwrap_or(1000);
        let num_sweeps = anneal.and_then(|a| a.num_sweeps).unwrap_or(DEFAULT_SWEEPS) as usize;
        let seed = anneal
            .and_then(|a| a.seed)
            .or_else(|| exec.and_then(|e| e.seed))
            .unwrap_or(default_seed);
        let mut params = AnnealParams::with_reads(num_reads)
            .with_sweeps(num_sweeps)
            .with_seed(seed);
        if let Some((lo, hi)) = anneal.and_then(|a| a.beta_range) {
            params = params.with_beta_range(lo, hi);
        }
        params
    }
}

impl Backend for AnnealBackend {
    fn name(&self) -> &str {
        "qml-simulated-annealer"
    }

    fn supports_engine(&self, engine: &str) -> bool {
        engine.starts_with("anneal.")
    }

    fn default_engine(&self) -> &str {
        DEFAULT_ANNEAL_ENGINE
    }

    fn execute(&self, bundle: &JobBundle) -> Result<ExecutionResult> {
        let exec = self.prepare(bundle)?;
        let plan = Self::build_plan(bundle)?;
        self.run_plan(bundle, exec, &plan)
    }

    fn execute_cached(
        &self,
        bundle: &JobBundle,
        cache: &TranspileCache,
    ) -> Result<ExecutionResult> {
        let exec = self.prepare(bundle)?;
        let key = Self::plan_key(bundle, exec.as_ref());
        let plan = cache.anneal_plan(key, || Self::build_plan(bundle))?;
        self.run_plan(bundle, exec, &plan)
    }

    /// Device-level batching: group members by plan key (realized program ×
    /// annealer-schedule fingerprint), lower each group's BQM **once**, then
    /// sample per member under its own read policy. A shot ladder — one
    /// problem resubmitted with varying `num_reads` — shares one BQM and one
    /// schedule across the whole group even on a cold cache.
    ///
    /// Cache counters stay member-accurate (one lookup per member), so a
    /// cold group of N reports exactly 1 miss and N−1 hits, identical to the
    /// sequential path.
    fn execute_batch(
        &self,
        bundles: &[JobBundle],
        cache: &TranspileCache,
    ) -> Vec<Result<ExecutionResult>> {
        self.execute_batch_timed(bundles, cache).0
    }

    /// The timed batch path: each member's sampling wall-clock is measured
    /// individually (a 4096-read member reports a correspondingly larger
    /// duration than a 16-read member of the same group), and the group's
    /// one BQM lowering counts as shared time.
    fn execute_batch_timed(
        &self,
        bundles: &[JobBundle],
        cache: &TranspileCache,
    ) -> (Vec<Result<ExecutionResult>>, crate::BatchTimings) {
        crate::traits::execute_grouped(
            bundles,
            |bundle| {
                let exec = self.prepare(bundle)?;
                Ok((Self::plan_key(bundle, exec.as_ref()), exec))
            },
            |key, bundle, _exec, shared| match shared {
                None => cache.anneal_plan_traced(key, || Self::build_plan(bundle)),
                Some(plan) => {
                    let reinsert = Arc::clone(plan);
                    cache.anneal_plan_traced(key, move || Ok(reinsert.as_ref().clone()))
                }
            },
            |bundle, exec, plan| self.run_plan(bundle, exec.clone(), plan),
        )
    }

    /// Annealing bundles batch when they share a lowered BQM and an annealer
    /// schedule: the batch key is exactly the plan-cache key. The read
    /// policy (`num_reads`, seed) stays out, so shot ladders group.
    fn batch_key(&self, bundle: &JobBundle) -> Option<u64> {
        let exec = self.prepare(bundle).ok()?;
        let key = Self::plan_key(bundle, exec.as_ref());
        Some(qml_types::bundle::fnv1a64_words(&[
            key.program,
            key.schedule,
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qml_algorithms::{maxcut_ising_program, qaoa_maxcut_program, QaoaSchedule, RING_P1_ANGLES};
    use qml_graph::{cut_value_of_bitstring, cycle};
    use qml_types::ContextDescriptor;

    fn fig3_context() -> ContextDescriptor {
        ContextDescriptor::for_anneal("anneal.neal_simulator", AnnealConfig::with_reads(1000))
    }

    #[test]
    fn fig3_anneal_path_end_to_end() {
        // The paper's Fig. 3 workflow: single ISING_PROBLEM + anneal context
        // with num_reads = 1000.
        let bundle = maxcut_ising_program(&cycle(4))
            .unwrap()
            .with_context(fig3_context());
        let result = AnnealBackend::new().execute(&bundle).unwrap();
        assert_eq!(result.shots, 1000);
        assert_eq!(result.counts.values().sum::<u64>(), 1000);
        assert_eq!(result.engine, "anneal.neal_simulator");

        // Both optimal cut assignments appear and dominate.
        let stats = result.energy_stats.unwrap();
        assert_eq!(stats.min_energy, -4.0);
        assert!(stats.ground_state_probability > 0.8);
        assert!(result.counts.contains_key("1010"));
        assert!(result.counts.contains_key("0101"));

        // Expected cut over all returned samples is near the optimum of 4.
        let graph = cycle(4);
        let expected_cut = result.expectation(|word| cut_value_of_bitstring(&graph, word));
        assert!(expected_cut > 3.5, "expected cut {expected_cut}");
    }

    #[test]
    fn default_context_still_runs() {
        let bundle = maxcut_ising_program(&cycle(4)).unwrap();
        let result = AnnealBackend::new().execute(&bundle).unwrap();
        assert_eq!(result.shots, 1000);
        assert_eq!(result.engine, DEFAULT_ANNEAL_ENGINE);
    }

    #[test]
    fn reproducible_per_seed() {
        let mut anneal = AnnealConfig::with_reads(200);
        anneal.seed = Some(7);
        let bundle =
            maxcut_ising_program(&cycle(4))
                .unwrap()
                .with_context(ContextDescriptor::for_anneal(
                    "anneal.neal_simulator",
                    anneal,
                ));
        let backend = AnnealBackend::new();
        assert_eq!(
            backend.execute(&bundle).unwrap().counts,
            backend.execute(&bundle).unwrap().counts
        );
    }

    #[test]
    fn gate_engine_rejected() {
        let bundle =
            maxcut_ising_program(&cycle(4))
                .unwrap()
                .with_context(ContextDescriptor::for_gate(ExecConfig::new(
                    "gate.aer_simulator",
                )));
        assert!(matches!(
            AnnealBackend::new().execute(&bundle),
            Err(QmlError::Unsupported(_))
        ));
    }

    #[test]
    fn qaoa_bundle_rejected() {
        let bundle = qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))
            .unwrap()
            .with_context(fig3_context());
        assert!(matches!(
            AnnealBackend::new().execute(&bundle),
            Err(QmlError::Unsupported(_))
        ));
    }

    #[test]
    fn sweep_and_beta_overrides_respected() {
        let mut anneal = AnnealConfig::with_reads(50);
        anneal.num_sweeps = Some(20);
        anneal.beta_range = Some((0.05, 8.0));
        anneal.seed = Some(3);
        let bundle =
            maxcut_ising_program(&cycle(4))
                .unwrap()
                .with_context(ContextDescriptor::for_anneal(
                    "anneal.neal_simulator",
                    anneal,
                ));
        let result = AnnealBackend::new().execute(&bundle).unwrap();
        assert_eq!(result.shots, 50);
    }
}
