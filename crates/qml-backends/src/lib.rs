//! # qml-backends — gate and annealing backends for the middle layer
//!
//! Backends are where the paper's late binding happens: the same validated
//! [`qml_types::JobBundle`] (typed data + operator descriptors + context) is
//! realized either as a transpiled circuit on the state-vector simulator
//! ([`GateBackend`], the Qiskit-Aer path of Fig. 2) or as a binary quadratic
//! model on the Metropolis annealer ([`AnnealBackend`], the Ocean-neal path
//! of Fig. 3). Both report the same [`ExecutionResult`] shape, decoded
//! through the bundle's explicit result schema.

#![warn(missing_docs)]
#![warn(clippy::print_stdout, clippy::print_stderr)]
#![forbid(unsafe_code)]

pub mod anneal;
pub mod cache;
pub mod gate;
pub mod lowering;
pub mod results;
pub mod testing;
pub mod traits;

pub use anneal::{AnnealBackend, DEFAULT_ANNEAL_ENGINE, DEFAULT_SWEEPS};
pub use cache::{
    AnnealPlan, AnnealPlanKey, CacheStats, GatePlan, GatePlanKey, TranspileCache,
    DEFAULT_PLAN_CAPACITY,
};
pub use gate::{listing4_context, GateBackend, DEFAULT_GATE_ENGINE};
pub use lowering::{lower_to_bqm, lower_to_circuit, LoweredBqm, LoweredCircuit};
pub use results::{EnergyStats, ExecutionResult};
pub use testing::{FaultPlan, FaultyBackend};
pub use traits::{Backend, BatchTimings};
