//! The backend abstraction: anything that can execute a middle-layer job
//! bundle.
//!
//! Backends are deliberately thin: they receive a complete, validated
//! [`JobBundle`] (intent + context) and return a uniform
//! [`ExecutionResult`]. Everything
//! device-specific — lowering, transpilation, sampling — happens behind this
//! trait, which is what makes the upper layers technology-agnostic.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qml_types::{JobBundle, Result};

use crate::cache::TranspileCache;
use crate::results::ExecutionResult;

/// Per-member wall-clock breakdown of one [`Backend::execute_batch_timed`]
/// call.
///
/// A micro-batch executes as one backend call, but fairness and utilization
/// accounting need *honest per-job* durations — splitting the batch's
/// wall-clock evenly across members is fiction whenever members differ
/// (e.g. a shot ladder). The breakdown separates the cost nobody owns
/// individually (realizing the group's shared plans) from each member's own
/// bind + sample time, so callers can attribute the shared part
/// proportionally.
#[derive(Debug, Clone, Default)]
pub struct BatchTimings {
    /// Time spent realizing shared plans (transpilation / lowering / cache
    /// fetches) across the whole call — work owned by groups, not by any
    /// single member.
    pub shared: Duration,
    /// Each member's own bind + sample wall-clock, in `bundles` order.
    pub members: Vec<Duration>,
    /// Per member, in `bundles` order: whether its single plan-cache lookup
    /// was answered from the cache (`Some(true)`), realized the plan
    /// (`Some(false)`), or is unknown (`None` — failed members, and backends
    /// whose batch path reports no plan attribution). Feeds per-job `plan`
    /// trace events; empty vectors (from pre-attribution constructions)
    /// read as all-unknown.
    pub plan_hits: Vec<Option<bool>>,
}

impl BatchTimings {
    /// `members[i]` plus a share of [`BatchTimings::shared`] proportional to
    /// `members[i]`'s weight among all member durations — the honest
    /// attribution of the whole call's wall-clock to member `i`. When every
    /// member's own time is zero (degenerate resolution), the shared cost is
    /// split evenly.
    pub fn attributed(&self) -> Vec<Duration> {
        let total: f64 = self.members.iter().map(|d| d.as_secs_f64()).sum();
        let shared = self.shared.as_secs_f64();
        let n = self.members.len().max(1) as f64;
        self.members
            .iter()
            .map(|d| {
                let own = d.as_secs_f64();
                let share = if total > 0.0 {
                    shared * (own / total)
                } else {
                    shared / n
                };
                Duration::from_secs_f64(own + share)
            })
            .collect()
    }

    /// Member `i`'s plan-cache attribution, `None` when unknown (out of
    /// range, failed member, or an attribution-blind backend).
    pub fn plan_hit(&self, i: usize) -> Option<bool> {
        self.plan_hits.get(i).copied().flatten()
    }
}

/// A backend able to realize and execute middle-layer job bundles.
pub trait Backend: Send + Sync {
    /// Stable backend name (used by the registry and in results).
    fn name(&self) -> &str;

    /// True if this backend can serve the given engine identifier
    /// (e.g. `"gate.aer_simulator"`, `"anneal.neal_simulator"`).
    fn supports_engine(&self, engine: &str) -> bool;

    /// The engine identifier this backend uses when a bundle carries no
    /// context (late binding to a sensible default).
    fn default_engine(&self) -> &str;

    /// Execute a job bundle and return its decoded result.
    fn execute(&self, bundle: &JobBundle) -> Result<ExecutionResult>;

    /// Execute a job bundle, reusing (and populating) the given
    /// transpilation/lowering cache where this backend supports it.
    ///
    /// The default implementation ignores the cache, so existing third-party
    /// backends keep working unchanged; the built-in gate and annealing
    /// backends override it to skip lowering/transpilation on repeated
    /// `(program, target)` submissions.
    fn execute_cached(
        &self,
        bundle: &JobBundle,
        cache: &TranspileCache,
    ) -> Result<ExecutionResult> {
        let _ = cache;
        self.execute(bundle)
    }

    /// Execute a batch of bundles against this backend, sharing one cache.
    ///
    /// Backends with device-level batching (circuit merging, shared annealer
    /// schedules, calibration windows) override this to group plan-compatible
    /// members — same [`Backend::batch_key`] — and realize each group's plan
    /// **once**, even on a cold cache, before binding/sampling per member.
    /// The built-in gate and annealing backends do exactly that. Contract,
    /// regardless of implementation:
    ///
    /// * outcomes are returned in submission order (`result[i]` belongs to
    ///   `bundles[i]`);
    /// * per-member results are bit-identical to what
    ///   [`Backend::execute_cached`] would produce for that bundle alone;
    /// * a failing member yields `Err` at its own position and never poisons
    ///   the rest of its group.
    ///
    /// The default executes sequentially through [`Backend::execute_cached`].
    fn execute_batch(
        &self,
        bundles: &[JobBundle],
        cache: &TranspileCache,
    ) -> Vec<Result<ExecutionResult>> {
        bundles
            .iter()
            .map(|bundle| self.execute_cached(bundle, cache))
            .collect()
    }

    /// Execute a batch like [`Backend::execute_batch`], additionally
    /// reporting the wall-clock breakdown: shared realization time plus each
    /// member's own bind + sample time (see [`BatchTimings`]).
    ///
    /// The default wraps [`Backend::execute_batch`] — preserving any
    /// third-party batching override — and, lacking finer information,
    /// attributes the call evenly across members with no shared component.
    /// The built-in gate and annealing backends override this with real
    /// per-member timing; their `execute_batch` is the projection of this
    /// method onto results.
    fn execute_batch_timed(
        &self,
        bundles: &[JobBundle],
        cache: &TranspileCache,
    ) -> (Vec<Result<ExecutionResult>>, BatchTimings) {
        let started = Instant::now();
        let results = self.execute_batch(bundles, cache);
        let share = started.elapsed() / bundles.len().max(1) as u32;
        let timings = BatchTimings {
            shared: Duration::ZERO,
            members: vec![share; bundles.len()],
            plan_hits: vec![None; bundles.len()],
        };
        (results, timings)
    }

    /// A stable grouping key for device-level batching: two bundles with the
    /// same key **on the same backend** share one realized plan, so callers
    /// (the service's fair scheduler) may coalesce them into a single
    /// [`Backend::execute_batch`] call. `None` — the default — means this
    /// backend does not batch the bundle (or cannot realize it at all), and
    /// the bundle always dispatches solo.
    ///
    /// The key must be at least as fine as the backend's realization-cache
    /// key: bundles that would realize different plans must never share a
    /// batch key. Keys need not be unique across backends — callers fold in
    /// the backend identity themselves.
    fn batch_key(&self, bundle: &JobBundle) -> Option<u64> {
        let _ = bundle;
        None
    }

    /// A rough, device-independent score for how expensive this bundle would
    /// be on this backend — consumed by the runtime's cost-hint scheduler.
    /// The default implementation sums the descriptors' cost hints.
    fn estimate_cost(&self, bundle: &JobBundle) -> f64 {
        bundle
            .operators
            .iter()
            .filter_map(|op| op.cost_hint.as_ref())
            .map(|hint| hint.scheduling_weight())
            .sum()
    }
}

/// The group-by-key batch driver shared by the built-in backends'
/// [`Backend::execute_batch`] overrides.
///
/// * `prepare` validates one member and returns its plan key plus whatever
///   per-member state `run` needs; a member that fails to prepare gets `Err`
///   at its own slot and never joins a group.
/// * `fetch` performs that member's **single** cache lookup, returning the
///   plan plus whether the lookup *hit* (recorded per member in
///   [`BatchTimings::plan_hits`]). It receives the group's already-realized
///   plan (if any): passing it back as the build closure re-inserts a flat
///   clone when the entry was evicted mid-batch, so a group can never
///   realize its plan twice — while cache counters stay member-accurate (a
///   cold group of N is 1 miss + N−1 hits). If the first member's build
///   fails, the next member retries with its own build, mirroring sequential
///   semantics (failed builds are not cached).
/// * `run` executes one member against the shared plan.
///
/// Outcomes are returned in `bundles` order, alongside the wall-clock
/// breakdown: cache fetches / plan realizations count toward
/// [`BatchTimings::shared`] (a group's realization belongs to the group, not
/// to whichever member happened to go first), while each member's `prepare`
/// and `run` time is its own.
pub(crate) fn execute_grouped<K, P, Plan>(
    bundles: &[JobBundle],
    mut prepare: impl FnMut(&JobBundle) -> Result<(K, P)>,
    mut fetch: impl FnMut(K, &JobBundle, &P, Option<&Arc<Plan>>) -> Result<(Arc<Plan>, bool)>,
    mut run: impl FnMut(&JobBundle, &P, &Plan) -> Result<ExecutionResult>,
) -> (Vec<Result<ExecutionResult>>, BatchTimings)
where
    K: std::hash::Hash + Eq + Copy,
{
    let mut results: Vec<Option<Result<ExecutionResult>>> = Vec::with_capacity(bundles.len());
    results.resize_with(bundles.len(), || None);
    let mut timings = BatchTimings {
        shared: Duration::ZERO,
        members: vec![Duration::ZERO; bundles.len()],
        plan_hits: vec![None; bundles.len()],
    };
    let mut prepared: Vec<Option<P>> = Vec::with_capacity(bundles.len());
    prepared.resize_with(bundles.len(), || None);
    let mut groups: Vec<(K, Vec<usize>)> = Vec::new();
    let mut group_of: HashMap<K, usize> = HashMap::new();
    for (i, bundle) in bundles.iter().enumerate() {
        let started = Instant::now();
        match prepare(bundle) {
            Ok((key, prep)) => {
                prepared[i] = Some(prep);
                match group_of.entry(key) {
                    Entry::Occupied(slot) => groups[*slot.get()].1.push(i),
                    Entry::Vacant(slot) => {
                        slot.insert(groups.len());
                        groups.push((key, vec![i]));
                    }
                }
            }
            Err(err) => results[i] = Some(Err(err)),
        }
        timings.members[i] += started.elapsed();
    }
    for (key, members) in groups {
        // The group's shared realization, set by the first member whose
        // fetch succeeds (even if its own run then fails).
        let mut shared: Option<Arc<Plan>> = None;
        for i in members {
            let bundle = &bundles[i];
            let prep = prepared[i].as_ref().expect("grouped members are prepared");
            let fetch_started = Instant::now();
            let plan = fetch(key, bundle, prep, shared.as_ref());
            timings.shared += fetch_started.elapsed();
            let outcome = plan.and_then(|(plan, hit)| {
                timings.plan_hits[i] = Some(hit);
                shared.get_or_insert_with(|| Arc::clone(&plan));
                let run_started = Instant::now();
                let outcome = run(bundle, prep, &plan);
                timings.members[i] += run_started.elapsed();
                outcome
            });
            results[i] = Some(outcome);
        }
    }
    let results = results
        .into_iter()
        .map(|r| r.expect("every member resolved"))
        .collect();
    (results, timings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qml_algorithms::{qaoa_maxcut_program, QaoaSchedule, RING_P1_ANGLES};
    use qml_graph::cycle;
    use qml_types::QmlError;

    struct DummyBackend;

    impl Backend for DummyBackend {
        fn name(&self) -> &str {
            "dummy"
        }
        fn supports_engine(&self, engine: &str) -> bool {
            engine.starts_with("dummy.")
        }
        fn default_engine(&self) -> &str {
            "dummy.null"
        }
        fn execute(&self, _bundle: &JobBundle) -> Result<ExecutionResult> {
            Err(QmlError::Unsupported("dummy backend cannot execute".into()))
        }
    }

    #[test]
    fn default_cost_estimate_sums_hints() {
        let bundle =
            qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap();
        let backend = DummyBackend;
        let cost = backend.estimate_cost(&bundle);
        assert!(
            cost > 0.0,
            "QAOA descriptors carry cost hints, so the estimate is positive"
        );
    }

    #[test]
    fn engine_matching() {
        let backend = DummyBackend;
        assert!(backend.supports_engine("dummy.anything"));
        assert!(!backend.supports_engine("gate.aer_simulator"));
        assert_eq!(backend.default_engine(), "dummy.null");
    }
}
