//! The backend abstraction: anything that can execute a middle-layer job
//! bundle.
//!
//! Backends are deliberately thin: they receive a complete, validated
//! [`JobBundle`] (intent + context) and return a uniform
//! [`ExecutionResult`]. Everything
//! device-specific — lowering, transpilation, sampling — happens behind this
//! trait, which is what makes the upper layers technology-agnostic.

use qml_types::{JobBundle, Result};

use crate::cache::TranspileCache;
use crate::results::ExecutionResult;

/// A backend able to realize and execute middle-layer job bundles.
pub trait Backend: Send + Sync {
    /// Stable backend name (used by the registry and in results).
    fn name(&self) -> &str;

    /// True if this backend can serve the given engine identifier
    /// (e.g. `"gate.aer_simulator"`, `"anneal.neal_simulator"`).
    fn supports_engine(&self, engine: &str) -> bool;

    /// The engine identifier this backend uses when a bundle carries no
    /// context (late binding to a sensible default).
    fn default_engine(&self) -> &str;

    /// Execute a job bundle and return its decoded result.
    fn execute(&self, bundle: &JobBundle) -> Result<ExecutionResult>;

    /// Execute a job bundle, reusing (and populating) the given
    /// transpilation/lowering cache where this backend supports it.
    ///
    /// The default implementation ignores the cache, so existing third-party
    /// backends keep working unchanged; the built-in gate and annealing
    /// backends override it to skip lowering/transpilation on repeated
    /// `(program, target)` submissions.
    fn execute_cached(
        &self,
        bundle: &JobBundle,
        cache: &TranspileCache,
    ) -> Result<ExecutionResult> {
        let _ = cache;
        self.execute(bundle)
    }

    /// Execute a batch of bundles against this backend, sharing one cache.
    ///
    /// Backends with device-level batching (circuit merging, shared calibration
    /// windows) can override this; the default executes sequentially through
    /// [`Backend::execute_cached`] and returns per-bundle outcomes in order.
    fn execute_batch(
        &self,
        bundles: &[JobBundle],
        cache: &TranspileCache,
    ) -> Vec<Result<ExecutionResult>> {
        bundles
            .iter()
            .map(|bundle| self.execute_cached(bundle, cache))
            .collect()
    }

    /// A rough, device-independent score for how expensive this bundle would
    /// be on this backend — consumed by the runtime's cost-hint scheduler.
    /// The default implementation sums the descriptors' cost hints.
    fn estimate_cost(&self, bundle: &JobBundle) -> f64 {
        bundle
            .operators
            .iter()
            .filter_map(|op| op.cost_hint.as_ref())
            .map(|hint| hint.scheduling_weight())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qml_algorithms::{qaoa_maxcut_program, QaoaSchedule, RING_P1_ANGLES};
    use qml_graph::cycle;
    use qml_types::QmlError;

    struct DummyBackend;

    impl Backend for DummyBackend {
        fn name(&self) -> &str {
            "dummy"
        }
        fn supports_engine(&self, engine: &str) -> bool {
            engine.starts_with("dummy.")
        }
        fn default_engine(&self) -> &str {
            "dummy.null"
        }
        fn execute(&self, _bundle: &JobBundle) -> Result<ExecutionResult> {
            Err(QmlError::Unsupported("dummy backend cannot execute".into()))
        }
    }

    #[test]
    fn default_cost_estimate_sums_hints() {
        let bundle =
            qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap();
        let backend = DummyBackend;
        let cost = backend.estimate_cost(&bundle);
        assert!(
            cost > 0.0,
            "QAOA descriptors carry cost hints, so the estimate is positive"
        );
    }

    #[test]
    fn engine_matching() {
        let backend = DummyBackend;
        assert!(backend.supports_engine("dummy.anything"));
        assert!(!backend.supports_engine("gate.aer_simulator"));
        assert_eq!(backend.default_engine(), "dummy.null");
    }
}
