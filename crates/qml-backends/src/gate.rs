//! The gate-model backend: the repository's stand-in for the paper's
//! "IBM Qiskit Aer" execution path (Fig. 2).
//!
//! Pipeline: lower the bundle's operator descriptors to a circuit, transpile
//! it against the context's `target` block (basis gates, coupling map,
//! optimization level), run the state-vector simulator for the requested
//! number of shots with the requested seed, and decode the counts through the
//! measurement descriptor's explicit result schema. If the context carries a
//! `qec` block, the orthogonal QEC service contributes a resource estimate —
//! without changing the program's semantics.

use std::sync::Arc;

use qml_qec::QecService;
use qml_sim::Simulator;
use qml_transpile::{transpile, CouplingMap, TranspileTarget};
use qml_types::{
    ContextDescriptor, CostHint, DecodedCounts, ExecConfig, JobBundle, QmlError, Result, Target,
};

use crate::cache::{GatePlan, GatePlanKey, TranspileCache};
use crate::lowering::lower_to_circuit;
use crate::results::ExecutionResult;
use crate::traits::Backend;

/// Default engine identifier served by [`GateBackend`].
pub const DEFAULT_GATE_ENGINE: &str = "gate.statevector_simulator";

/// Execution defaults used when a bundle carries no context: an ideal
/// all-to-all simulator with 1024 shots and seed 0.
fn default_exec() -> ExecConfig {
    ExecConfig::new(DEFAULT_GATE_ENGINE).with_seed(0)
}

/// Convert the context's device target into a transpilation target.
fn to_transpile_target(target: &Target, circuit_width: usize) -> TranspileTarget {
    let coupling_map = target.coupling_map.as_ref().map(|edges| {
        let min_qubits = target.num_qubits.unwrap_or(0).max(circuit_width);
        CouplingMap::new(edges, min_qubits)
    });
    TranspileTarget {
        basis_gates: target.basis_gates.clone(),
        coupling_map,
    }
}

/// The gate-model simulator backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct GateBackend;

impl GateBackend {
    /// Create a gate backend.
    pub fn new() -> Self {
        GateBackend
    }

    /// Validate the bundle and extract its (defaulted) context and exec
    /// policy.
    fn prepare(&self, bundle: &JobBundle) -> Result<(ContextDescriptor, ExecConfig)> {
        bundle.validate()?;
        let context = bundle.context.clone().unwrap_or_default();
        let exec = context.exec.clone().unwrap_or_else(default_exec);
        if !self.supports_engine(&exec.engine) {
            return Err(QmlError::Unsupported(format!(
                "gate backend cannot serve engine `{}`",
                exec.engine
            )));
        }
        exec.validate()?;
        Ok((context, exec))
    }

    /// The device target the exec policy resolves to.
    fn transpile_target(bundle: &JobBundle, exec: &ExecConfig) -> TranspileTarget {
        exec.target
            .as_ref()
            .map(|t| to_transpile_target(t, bundle.total_width()))
            .unwrap_or_else(TranspileTarget::ideal)
    }

    /// The deterministic realization phase: lower the intent — **symbols
    /// intact** — to a circuit and transpile it against the target. Pure in
    /// `(symbolic intent, target, level)`, so its output is what the
    /// [`TranspileCache`] memoizes and every binding of a sweep shares.
    fn build_plan(bundle: &JobBundle, exec: &ExecConfig) -> Result<GatePlan> {
        let lowered = lower_to_circuit(bundle)?;
        let target = Self::transpile_target(bundle, exec);
        let transpiled = transpile(&lowered.circuit, &target, exec.options.optimization_level)
            .map_err(|e| QmlError::Unsupported(format!("transpilation failed: {e}")))?;
        Ok(GatePlan::new(
            transpiled.circuit,
            lowered.symbols,
            transpiled.metrics,
            lowered.register,
            lowered.schema,
        ))
    }

    /// The per-job binding values for a plan, in slot order: the bundle's
    /// own canonical symbols looked up in its attached
    /// [`BindingSet`](qml_types::BindingSet). Positional, so a plan built
    /// from a differently-spelled (but canonically equal) program binds
    /// correctly.
    fn binding_values(bundle: &JobBundle, plan: &GatePlan) -> Result<Vec<f64>> {
        let symbols = bundle.canonical_symbols();
        if symbols.len() != plan.symbols.len() {
            return Err(QmlError::Validation(format!(
                "bundle has {} symbolic parameters but the plan expects {}",
                symbols.len(),
                plan.symbols.len()
            )));
        }
        if symbols.is_empty() {
            return Ok(Vec::new());
        }
        match &bundle.bindings {
            Some(bindings) => bindings.values_for(&symbols),
            None => Err(QmlError::UnboundParameter(symbols[0].clone())),
        }
    }

    /// The plan-cache key of a (validated) bundle under its exec policy.
    fn plan_key(bundle: &JobBundle, exec: &ExecConfig) -> GatePlanKey {
        GatePlanKey {
            program: bundle.symbolic_program_hash(),
            target: Self::transpile_target(bundle, exec).fingerprint(),
            optimization_level: exec.options.optimization_level,
        }
    }

    /// The policy-dependent phase: bind the plan's slot table with the
    /// bundle's late parameter values as a zero-copy overlay (O(#sites), no
    /// circuit copy, no re-transpilation), sample the bound view through the
    /// worker's shared scratch buffers, and decode the counts through the
    /// plan's explicit result schema.
    fn run_plan(
        &self,
        bundle: &JobBundle,
        context: &ContextDescriptor,
        exec: &ExecConfig,
        plan: &GatePlan,
    ) -> Result<ExecutionResult> {
        let values = Self::binding_values(bundle, plan)?;
        // Concrete plans execute the shared plan circuit directly; parametric
        // plans pay only the O(#sites) overlay — never a gate-vector copy.
        let bound = plan.bind_overlay(&values)?;
        // An unseeded job derives its seed from the realized program instead
        // of a flat 0: two distinct unseeded programs (e.g. the points of a
        // sweep, which differ in their binding fingerprints) must not share
        // sampling noise. Deterministic and cache-transparent — re-running
        // the same unseeded bundle reproduces its counts exactly.
        let seed = exec.seed.unwrap_or_else(|| bundle.program_hash());
        let sim = Simulator::new();
        let run = qml_sim::with_thread_scratch(|scratch| {
            sim.run_view_with_scratch(&bound, exec.samples, seed, scratch)
        })
        .map_err(|e| QmlError::Validation(format!("cannot sample bound circuit: {e}")))?;
        let decoded = DecodedCounts::decode(&run.counts, &plan.schema, &plan.register)?;

        // Orthogonal QEC service (advisory resource estimate only).
        let qec_estimate = context
            .qec
            .as_ref()
            .map(|config| {
                QecService::from_config(config).map(|service| {
                    let realized_cost = CostHint::gates(
                        plan.metrics.two_qubit_gates as u64,
                        plan.metrics.depth as u64,
                    )
                    .with_oneq(plan.metrics.single_qubit_gates as u64);
                    service.estimate(bundle.total_width(), Some(&realized_cost))
                })
            })
            .transpose()?;

        Ok(ExecutionResult {
            backend: self.name().to_string(),
            engine: exec.engine.clone(),
            register: plan.register.id.clone(),
            shots: exec.samples,
            counts: run.counts,
            decoded,
            gate_metrics: Some(plan.metrics),
            energy_stats: None,
            qec_estimate,
        })
    }
}

impl Backend for GateBackend {
    fn name(&self) -> &str {
        "qml-gate-simulator"
    }

    fn supports_engine(&self, engine: &str) -> bool {
        engine.starts_with("gate.")
    }

    fn default_engine(&self) -> &str {
        DEFAULT_GATE_ENGINE
    }

    fn execute(&self, bundle: &JobBundle) -> Result<ExecutionResult> {
        let (context, exec) = self.prepare(bundle)?;
        let plan = Self::build_plan(bundle, &exec)?;
        self.run_plan(bundle, &context, &exec, &plan)
    }

    fn execute_cached(
        &self,
        bundle: &JobBundle,
        cache: &TranspileCache,
    ) -> Result<ExecutionResult> {
        let (context, exec) = self.prepare(bundle)?;
        // Keyed on the *symbolic* program hash: every binding set of a sweep
        // — and any re-spelling of its symbols — shares one parametric plan,
        // so an N-point scan performs exactly one transpilation.
        let key = Self::plan_key(bundle, &exec);
        let plan = cache.gate_plan(key, || Self::build_plan(bundle, &exec))?;
        self.run_plan(bundle, &context, &exec, &plan)
    }

    /// Device-level batching: group members by plan key (symbolic program ×
    /// target × optimization level), realize each group's plan **once**, then
    /// bind and sample per member. N compatible jobs cost 1 transpilation
    /// plus N cheap substitutions even on a cold cache — and the single
    /// realization per group holds regardless of cache capacity (an
    /// interleaved multi-plan batch cannot LRU-thrash itself the way
    /// sequential execution can).
    ///
    /// Cache counters stay member-accurate: every member performs one
    /// lookup, so a cold group of N reports exactly 1 miss and N−1 hits —
    /// identical to the sequential path.
    fn execute_batch(
        &self,
        bundles: &[JobBundle],
        cache: &TranspileCache,
    ) -> Vec<Result<ExecutionResult>> {
        self.execute_batch_timed(bundles, cache).0
    }

    /// The timed batch path: per-member bind + sample wall-clock is measured
    /// individually, and group plan realizations count as shared time — so a
    /// shot ladder's members report honest, unequal durations instead of an
    /// even split of the batch's wall-clock.
    fn execute_batch_timed(
        &self,
        bundles: &[JobBundle],
        cache: &TranspileCache,
    ) -> (Vec<Result<ExecutionResult>>, crate::BatchTimings) {
        crate::traits::execute_grouped(
            bundles,
            |bundle| {
                let (context, exec) = self.prepare(bundle)?;
                Ok((Self::plan_key(bundle, &exec), (context, exec)))
            },
            |key, bundle, (_, exec), shared| match shared {
                None => cache.gate_plan_traced(key, || Self::build_plan(bundle, exec)),
                Some(plan) => {
                    let reinsert = Arc::clone(plan);
                    cache.gate_plan_traced(key, move || Ok(reinsert.as_ref().clone()))
                }
            },
            |bundle, (context, exec), plan| self.run_plan(bundle, context, exec, plan),
        )
    }

    /// Gate bundles batch when they share a realized plan: the batch key is
    /// exactly the plan-cache key (symbolic program × target fingerprint ×
    /// optimization level). Bundles this backend cannot serve return `None`
    /// and dispatch solo.
    fn batch_key(&self, bundle: &JobBundle) -> Option<u64> {
        let (_, exec) = self.prepare(bundle).ok()?;
        let key = Self::plan_key(bundle, &exec);
        Some(qml_types::bundle::fnv1a64_words(&[
            key.program,
            key.target,
            u64::from(key.optimization_level),
        ]))
    }
}

/// Convenience: the Listing-4 style context for this backend — Aer-like
/// engine, 4096 samples, seed 42, hardware basis on the given coupling map,
/// optimization level 2.
pub fn listing4_context(target: Target) -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(4096)
            .with_seed(42)
            .with_target(target)
            .with_optimization_level(2),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::TranspileCache;
    use qml_algorithms::{
        qaoa_maxcut_program, qft_program, QaoaSchedule, QftParams, RING_P1_ANGLES,
    };
    use qml_graph::{cut_value_of_bitstring, cycle};
    use qml_types::{AnnealConfig, QecConfig};

    fn qaoa_bundle() -> JobBundle {
        qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap()
    }

    #[test]
    fn fig2_gate_path_end_to_end() {
        // The paper's Fig. 2 workflow: QAOA bundle + ring-coupled Aer context.
        let bundle = qaoa_bundle().with_context(listing4_context(Target::ring(4)));
        let result = GateBackend::new().execute(&bundle).unwrap();
        assert_eq!(result.shots, 4096);
        assert_eq!(result.engine, "gate.aer_simulator");
        assert_eq!(result.register, "ising_vars");
        assert_eq!(result.counts.values().sum::<u64>(), 4096);
        // The transpiled circuit respects the hardware basis.
        let metrics = result.gate_metrics.unwrap();
        assert!(metrics.two_qubit_gates >= 8, "4 ZZ couplings → ≥ 8 CX");
        // The optimal cuts are the two most likely outcomes among cut values.
        let graph = cycle(4);
        let expected_cut = result.expectation(|word| cut_value_of_bitstring(&graph, word));
        assert!(
            expected_cut > 2.0,
            "QAOA must beat the random baseline of 2.0, got {expected_cut}"
        );
    }

    #[test]
    fn default_context_is_ideal_simulator() {
        let result = GateBackend::new().execute(&qaoa_bundle()).unwrap();
        assert_eq!(result.engine, DEFAULT_GATE_ENGINE);
        assert_eq!(result.shots, 1024);
        assert_eq!(result.gate_metrics.unwrap().swaps_inserted, 0);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let bundle = qaoa_bundle().with_context(listing4_context(Target::ring(4)));
        let backend = GateBackend::new();
        let a = backend.execute(&bundle).unwrap();
        let b = backend.execute(&bundle).unwrap();
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn qft_listing1_runs_through_the_middle_layer() {
        let bundle = qft_program(10, QftParams::default())
            .unwrap()
            .with_context(listing4_context(Target::linear(10)));
        let result = GateBackend::new().execute(&bundle).unwrap();
        assert_eq!(result.counts.values().sum::<u64>(), 4096);
        let metrics = result.gate_metrics.unwrap();
        assert!(metrics.swaps_inserted > 0, "linear coupling forces routing");
        assert!(metrics.two_qubit_gates >= 45);
    }

    #[test]
    fn anneal_engine_rejected() {
        let bundle = qaoa_bundle().with_context(ContextDescriptor::for_anneal(
            "anneal.neal_simulator",
            AnnealConfig::with_reads(10),
        ));
        assert!(matches!(
            GateBackend::new().execute(&bundle),
            Err(QmlError::Unsupported(_))
        ));
    }

    #[test]
    fn qec_context_adds_resource_estimate_without_changing_counts() {
        let plain = qaoa_bundle().with_context(listing4_context(Target::ring(4)));
        let with_qec = qaoa_bundle()
            .with_context(listing4_context(Target::ring(4)).with_qec(QecConfig::surface(7)));
        let backend = GateBackend::new();
        let a = backend.execute(&plain).unwrap();
        let b = backend.execute(&with_qec).unwrap();
        assert_eq!(a.counts, b.counts, "QEC context must not change semantics");
        assert!(a.qec_estimate.is_none());
        let estimate = b.qec_estimate.unwrap();
        assert_eq!(estimate.logical_qubits, 4);
        assert!(estimate.physical_qubits >= 4 * 97);
    }

    #[test]
    fn unknown_qec_family_is_an_error_not_a_silent_ignore() {
        let mut qec = QecConfig::surface(7);
        qec.code_family = "fancy-new-code".into();
        let bundle = qaoa_bundle().with_context(listing4_context(Target::ring(4)).with_qec(qec));
        assert!(GateBackend::new().execute(&bundle).is_err());
    }

    #[test]
    fn estimate_cost_positive_for_qaoa() {
        assert!(GateBackend::new().estimate_cost(&qaoa_bundle()) > 0.0);
    }

    #[test]
    fn cached_execution_matches_uncached_and_counts_hits() {
        let bundle = qaoa_bundle().with_context(listing4_context(Target::ring(4)));
        let backend = GateBackend::new();
        let cache = TranspileCache::new();

        let direct = backend.execute(&bundle).unwrap();
        let cold = backend.execute_cached(&bundle, &cache).unwrap();
        let warm = backend.execute_cached(&bundle, &cache).unwrap();
        assert_eq!(
            direct.counts, cold.counts,
            "cache must not change semantics"
        );
        assert_eq!(cold, warm, "warm run must reproduce the cold run exactly");

        let stats = cache.gate_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn cache_distinguishes_targets_and_levels() {
        let backend = GateBackend::new();
        let cache = TranspileCache::new();
        let ring = qaoa_bundle().with_context(listing4_context(Target::ring(4)));
        let line = qaoa_bundle().with_context(listing4_context(Target::linear(4)));
        backend.execute_cached(&ring, &cache).unwrap();
        backend.execute_cached(&line, &cache).unwrap();
        assert_eq!(
            cache.gate_stats().entries,
            2,
            "different targets, different plans"
        );

        let level0 = qaoa_bundle().with_context(ContextDescriptor::for_gate(
            ExecConfig::new("gate.aer_simulator")
                .with_samples(64)
                .with_seed(1)
                .with_target(Target::ring(4))
                .with_optimization_level(0),
        ));
        backend.execute_cached(&level0, &cache).unwrap();
        assert_eq!(
            cache.gate_stats().entries,
            3,
            "optimization level is part of the key"
        );
    }

    #[test]
    fn cache_shared_across_shots_and_seeds() {
        // A parameter sweep re-submits the same intent with varying sampling
        // policy: only the first submission may transpile.
        let backend = GateBackend::new();
        let cache = TranspileCache::new();
        for (samples, seed) in [(64, 0u64), (128, 1), (256, 2), (512, 3)] {
            let bundle = qaoa_bundle().with_context(ContextDescriptor::for_gate(
                ExecConfig::new("gate.aer_simulator")
                    .with_samples(samples)
                    .with_seed(seed)
                    .with_target(Target::ring(4))
                    .with_optimization_level(2),
            ));
            let result = backend.execute_cached(&bundle, &cache).unwrap();
            assert_eq!(result.shots, samples);
        }
        let stats = cache.gate_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 3);
    }
}
