//! The transpilation/lowering cache shared by cache-aware backends.
//!
//! Realizing a job bundle has two phases: an expensive, *deterministic* one
//! (lowering descriptors and transpiling against the target) and a cheap,
//! policy-dependent one (binding late parameters, sampling with the requested
//! shots/seed, and decoding). The paper's context-descriptor split makes the
//! first phase a pure function of `(symbolic program, device target)` —
//! exactly what parameter sweeps and multi-tenant traffic repeat over and
//! over. [`TranspileCache`] memoizes that phase.
//!
//! Gate-path plans are **parametric**: keyed by
//! [`qml_types::JobBundle::symbolic_program_hash`] (which canonicalizes
//! symbol names) plus [`qml_transpile::TranspileTarget::fingerprint`] and the
//! optimization level, and stored with their symbols intact — so an N-point
//! angle sweep transpiles once and re-binds the routed circuit per point via
//! [`GatePlan::bind`]. Annealing plans are keyed per realized program *and*
//! annealer-schedule fingerprint, so two contexts with different schedules
//! can never collide on one BQM plan.
//!
//! Both cache planes are bounded LRU by default (see
//! [`TranspileCache::with_capacity`] / [`TranspileCache::unbounded`]);
//! evictions are counted in [`CacheStats`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use qml_anneal::BinaryQuadraticModel;
use qml_sim::{BoundCircuit, Circuit};
use qml_transpile::CircuitMetrics;
use qml_types::{QmlError, QuantumDataType, Result, ResultSchema};

/// Default per-plane LRU capacity of a [`TranspileCache`].
pub const DEFAULT_PLAN_CAPACITY: usize = 1024;

/// Cache key of a gate-path realization: **symbolic** program hash, device
/// target fingerprint, and transpiler optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GatePlanKey {
    /// [`qml_types::JobBundle::symbolic_program_hash`] of the submitted
    /// intent (binding-independent, symbol names canonicalized).
    pub program: u64,
    /// [`qml_transpile::TranspileTarget::fingerprint`] of the device target.
    pub target: u64,
    /// Transpiler optimization level (0–3).
    pub optimization_level: u8,
}

/// Cache key of an annealing-path realization: realized program hash plus
/// the annealer schedule fingerprint of the submitting context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AnnealPlanKey {
    /// [`qml_types::JobBundle::program_hash`] of the (resolved) intent.
    pub program: u64,
    /// Fingerprint of the context's annealing schedule (engine, sweeps,
    /// β-range) — read policy (reads/seed) is deliberately excluded.
    pub schedule: u64,
}

/// A fully realized gate-path plan: everything execution needs except the
/// late-bound parameter values and the sampling policy (shots/seed).
///
/// The circuit may carry **symbolic** rotation angles. The hot path binds
/// with [`GatePlan::bind_overlay`]: the `Arc`-shared circuit is never copied,
/// only an O(#sites) overlay of bound gates is built per job.
/// [`GatePlan::bind`] remains as the materializing reference path
/// (differential tests, external consumers that need an owned circuit).
#[derive(Debug, Clone, PartialEq)]
pub struct GatePlan {
    /// The transpiled (routed, basis-lowered, optimized) circuit; possibly
    /// parametric. Shared: cloning the plan or binding a job never copies
    /// the gate vector.
    pub circuit: Arc<Circuit>,
    /// Slot table: symbol names in canonical order (`values[i]` binds
    /// `symbols[i]`). Empty for fully concrete plans.
    pub symbols: Vec<String>,
    /// Gate indices still carrying symbolic angles after optimization.
    param_sites: Vec<usize>,
    /// Cost metrics of the transpiled circuit (binding-independent).
    pub metrics: CircuitMetrics,
    /// The register the measurement reads out.
    pub register: QuantumDataType,
    /// The explicit result schema attached to the measurement descriptor.
    pub schema: ResultSchema,
}

impl GatePlan {
    /// Assemble a plan, recording the circuit's symbolic substitution sites.
    pub fn new(
        circuit: Circuit,
        symbols: Vec<String>,
        metrics: CircuitMetrics,
        register: QuantumDataType,
        schema: ResultSchema,
    ) -> Self {
        let param_sites = circuit.symbolic_gate_indices();
        GatePlan {
            circuit: Arc::new(circuit),
            symbols,
            param_sites,
            metrics,
            register,
            schema,
        }
    }

    /// True if the plan still carries symbolic angles to bind per execution.
    pub fn is_parametric(&self) -> bool {
        !self.param_sites.is_empty()
    }

    /// Number of symbolic substitution sites in the transpiled circuit.
    pub fn param_site_count(&self) -> usize {
        self.param_sites.len()
    }

    /// Substitute the slot-ordered `values` (aligned with
    /// [`GatePlan::symbols`]) into an owned copy of the plan's circuit.
    ///
    /// This is the materializing reference path; the execute hot path uses
    /// the copy-free [`GatePlan::bind_overlay`] instead.
    pub fn bind(&self, values: &[f64]) -> Result<Circuit> {
        self.check_binding(values)?;
        if self.param_sites.is_empty() {
            Ok((*self.circuit).clone())
        } else {
            Ok(self.circuit.bind_sites(&self.param_sites, values))
        }
    }

    /// Zero-copy binding: substitute the slot-ordered `values` as a
    /// [`BoundCircuit`] overlay over the shared plan circuit — O(#sites) per
    /// job, no gate-vector copy. Non-parametric plans return a view that
    /// executes the shared circuit directly.
    pub fn bind_overlay(&self, values: &[f64]) -> Result<BoundCircuit> {
        self.check_binding(values)?;
        if self.param_sites.is_empty() {
            Ok(BoundCircuit::concrete(Arc::clone(&self.circuit)))
        } else {
            Ok(BoundCircuit::bind_sites(
                Arc::clone(&self.circuit),
                &self.param_sites,
                values,
            ))
        }
    }

    fn check_binding(&self, values: &[f64]) -> Result<()> {
        if values.len() < self.symbols.len() {
            return Err(QmlError::Validation(format!(
                "parametric plan needs {} binding values, got {}",
                self.symbols.len(),
                values.len()
            )));
        }
        Ok(())
    }
}

/// A realized annealing-path plan: the lowered quadratic model plus decoding
/// information, independent of the read/sweep policy.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealPlan {
    /// The binary quadratic model to sample.
    pub bqm: BinaryQuadraticModel,
    /// The register the samples refer to.
    pub register: QuantumDataType,
    /// The explicit result schema.
    pub schema: ResultSchema,
}

/// Hit/miss/entry/eviction counters of one cache plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to realize the plan.
    pub misses: u64,
    /// Plans currently stored.
    pub entries: usize,
    /// Plans dropped by the LRU capacity bound since the cache was created.
    #[serde(default)]
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over total lookups, 0.0 when the cache is untouched.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A single-flight slot: empty until its plan is first realized. The
/// last-use stamp rides the slot itself so the hit path never takes a
/// plane-wide lock beyond the map's read lock.
struct Slot<V> {
    plan: Mutex<Option<Arc<V>>>,
    /// Last-use tick of the plane clock; 0 = never used.
    last_used: AtomicU64,
    /// True once the slot has been added to the plane's `entries` counter.
    /// Eviction only considers counted slots, so it can never decrement the
    /// counter for a freshly published plan whose builder has not counted it
    /// yet (and in-flight builds stay invisible to eviction entirely).
    counted: std::sync::atomic::AtomicBool,
}

impl<V> Default for Slot<V> {
    fn default() -> Self {
        Slot {
            plan: Mutex::new(None),
            last_used: AtomicU64::new(0),
            counted: std::sync::atomic::AtomicBool::new(false),
        }
    }
}

type PlanSlot<V> = Arc<Slot<V>>;

/// One single-flight cache plane: per-key slots so concurrent misses of the
/// *same* plan serialize on their slot (exactly one build — no thundering
/// herd) while different keys stay fully concurrent. Optionally bounded:
/// inserting beyond `capacity` evicts the least-recently-used realized plan.
struct CachePlane<K, V> {
    slots: RwLock<HashMap<K, PlanSlot<V>>>,
    /// Monotonic LRU clock; slots store the tick of their last use.
    clock: AtomicU64,
    /// Maximum realized entries; `None` = unbounded.
    capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Slots holding a realized plan — kept separately so a stats snapshot
    /// never has to take the per-slot locks (which may be held across an
    /// in-flight build).
    entries: AtomicUsize,
}

impl<K, V> CachePlane<K, V> {
    fn with_capacity(capacity: Option<usize>) -> Self {
        if let Some(cap) = capacity {
            assert!(cap > 0, "cache capacity must be at least 1");
        }
        CachePlane {
            slots: RwLock::new(HashMap::new()),
            clock: AtomicU64::new(0),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            entries: AtomicUsize::new(0),
        }
    }

    /// Stamp a slot as most recently used (lock-free; ticks start at 1 so a
    /// stamped slot is always distinguishable from an unrealized one).
    fn touch(&self, slot: &Slot<V>) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        slot.last_used.store(now, Ordering::Relaxed);
    }
}

impl<K: std::hash::Hash + Eq + Clone, V> CachePlane<K, V> {
    /// Evict least-recently-used realized plans until the plane fits its
    /// capacity again. Never evicts `just_inserted` (the entry that triggered
    /// enforcement), so a hot miss cannot evict itself. Victim selection and
    /// removal happen atomically under the map's write lock; the O(entries)
    /// scan only runs on misses past capacity, never on hits.
    fn enforce_capacity(&self, just_inserted: &K) {
        let Some(capacity) = self.capacity else {
            return;
        };
        while self.entries.load(Ordering::Relaxed) > capacity {
            let mut slots = self.slots.write();
            let victim = slots
                .iter()
                .filter(|(key, slot)| *key != just_inserted && slot.counted.load(Ordering::Relaxed))
                .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
                .map(|(key, _)| key.clone());
            let Some(victim) = victim else {
                break;
            };
            slots.remove(&victim);
            self.entries.fetch_sub(1, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn get_or_build(&self, key: K, build: impl FnOnce() -> Result<V>) -> Result<Arc<V>> {
        self.get_or_build_traced(key, build).map(|(plan, _)| plan)
    }

    /// Like [`CachePlane::get_or_build`], additionally reporting whether the
    /// lookup was a hit (`true`) or realized the plan (`false`) — the
    /// attribution per-job plan trace events need, which the aggregate
    /// hit/miss counters cannot provide.
    fn get_or_build_traced(
        &self,
        key: K,
        build: impl FnOnce() -> Result<V>,
    ) -> Result<(Arc<V>, bool)> {
        // Bind the fast-path lookup to its own statement so the read guard
        // drops before the write path runs (an `if let` over the guard would
        // hold it through the `else` and self-deadlock).
        let existing = self.slots.read().get(&key).cloned();
        let slot = match existing {
            Some(slot) => slot,
            None => self.slots.write().entry(key.clone()).or_default().clone(),
        };
        let mut guard = slot.plan.lock();
        if let Some(plan) = guard.as_ref() {
            let plan = plan.clone();
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.touch(&slot);
            return Ok((plan, true));
        }
        // Failed realizations leave the slot empty so the next submission
        // retries, mirroring how transpilation errors surface per job.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(build()?);
        *guard = Some(plan.clone());
        // Release the slot before touching map-level state: eviction takes
        // the map's write lock and must never wait behind a held slot.
        drop(guard);
        // Count the entry only while its slot is still reachable, with the
        // increment **under the map's read lock**: a concurrent clear()
        // (write lock) either ran before this block (slot orphaned, not
        // counted) or runs after and resets the counter while holding the
        // same lock — never in between, so the counter can never outlive the
        // plans it counts.
        let counted = {
            let slots = self.slots.read();
            let live = slots.get(&key).is_some_and(|l| Arc::ptr_eq(l, &slot));
            if live {
                self.entries.fetch_add(1, Ordering::Relaxed);
                slot.counted.store(true, Ordering::Relaxed);
            }
            live
        };
        if counted {
            self.touch(&slot);
            self.enforce_capacity(&key);
        }
        Ok((plan, false))
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    fn clear(&self) {
        let mut slots = self.slots.write();
        slots.clear();
        // Reset while still holding the write lock so no in-flight build can
        // interleave its reachability check with the reset.
        self.entries.store(0, Ordering::Relaxed);
    }
}

impl<K: std::fmt::Debug, V> std::fmt::Debug for CachePlane<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachePlane")
            .field("capacity", &self.capacity)
            .field("entries", &self.entries.load(Ordering::Relaxed))
            .finish()
    }
}

/// Thread-safe transpilation/lowering cache with hit/miss/eviction counters.
///
/// Entries are stored behind `Arc` so concurrent executions of the same plan
/// share one realization without cloning circuits, and lookups are
/// single-flight per key: when N workers miss the same plan at once, one
/// builds and the rest wait for its result. Both planes are bounded LRU
/// caches (default [`DEFAULT_PLAN_CAPACITY`] entries each); long-running
/// deployments that want the PR-1 behavior back can construct the cache with
/// [`TranspileCache::unbounded`].
#[derive(Debug)]
pub struct TranspileCache {
    gate: CachePlane<GatePlanKey, GatePlan>,
    anneal: CachePlane<AnnealPlanKey, AnnealPlan>,
}

impl Default for TranspileCache {
    fn default() -> Self {
        TranspileCache::new()
    }
}

impl TranspileCache {
    /// A cache bounded at [`DEFAULT_PLAN_CAPACITY`] plans per plane.
    pub fn new() -> Self {
        TranspileCache::with_capacity(DEFAULT_PLAN_CAPACITY)
    }

    /// A cache bounded at `capacity` plans per plane (LRU eviction).
    ///
    /// # Panics
    /// Panics if `capacity` is 0.
    pub fn with_capacity(capacity: usize) -> Self {
        TranspileCache {
            gate: CachePlane::with_capacity(Some(capacity)),
            anneal: CachePlane::with_capacity(Some(capacity)),
        }
    }

    /// An unbounded cache (the escape hatch for deployments that manage
    /// memory with [`TranspileCache::clear`] instead).
    pub fn unbounded() -> Self {
        TranspileCache {
            gate: CachePlane::with_capacity(None),
            anneal: CachePlane::with_capacity(None),
        }
    }

    /// Fetch the gate plan for `key`, realizing and storing it with `build`
    /// on a miss.
    pub fn gate_plan(
        &self,
        key: GatePlanKey,
        build: impl FnOnce() -> Result<GatePlan>,
    ) -> Result<Arc<GatePlan>> {
        self.gate.get_or_build(key, build)
    }

    /// Fetch the annealing plan for a key, realizing it on a miss.
    pub fn anneal_plan(
        &self,
        key: AnnealPlanKey,
        build: impl FnOnce() -> Result<AnnealPlan>,
    ) -> Result<Arc<AnnealPlan>> {
        self.anneal.get_or_build(key, build)
    }

    /// Like [`TranspileCache::gate_plan`], additionally reporting whether the
    /// lookup hit the cache — feeds the per-job `plan` trace events.
    pub fn gate_plan_traced(
        &self,
        key: GatePlanKey,
        build: impl FnOnce() -> Result<GatePlan>,
    ) -> Result<(Arc<GatePlan>, bool)> {
        self.gate.get_or_build_traced(key, build)
    }

    /// Like [`TranspileCache::anneal_plan`], additionally reporting whether
    /// the lookup hit the cache.
    pub fn anneal_plan_traced(
        &self,
        key: AnnealPlanKey,
        build: impl FnOnce() -> Result<AnnealPlan>,
    ) -> Result<(Arc<AnnealPlan>, bool)> {
        self.anneal.get_or_build_traced(key, build)
    }

    /// Counters of the gate-path plane.
    pub fn gate_stats(&self) -> CacheStats {
        self.gate.stats()
    }

    /// Counters of the annealing-path plane.
    pub fn anneal_stats(&self) -> CacheStats {
        self.anneal.stats()
    }

    /// Combined counters across both planes.
    pub fn stats(&self) -> CacheStats {
        let g = self.gate_stats();
        let a = self.anneal_stats();
        CacheStats {
            hits: g.hits + a.hits,
            misses: g.misses + a.misses,
            entries: g.entries + a.entries,
            evictions: g.evictions + a.evictions,
        }
    }

    /// Drop every cached plan (counters are kept).
    pub fn clear(&self) {
        self.gate.clear();
        self.anneal.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_plan() -> GatePlan {
        let qdt = QuantumDataType::ising_spins("r", "s", 2).unwrap();
        GatePlan::new(
            Circuit::new(2),
            Vec::new(),
            CircuitMetrics::of(&Circuit::new(2), 0),
            qdt.clone(),
            ResultSchema::for_register(&qdt),
        )
    }

    fn key(program: u64) -> GatePlanKey {
        GatePlanKey {
            program,
            target: 1,
            optimization_level: 2,
        }
    }

    #[test]
    fn hit_and_miss_counters() {
        let cache = TranspileCache::new();
        cache.gate_plan(key(1), || Ok(dummy_plan())).unwrap();
        cache
            .gate_plan(key(1), || panic!("must not rebuild"))
            .unwrap();
        cache.gate_plan(key(2), || Ok(dummy_plan())).unwrap();
        let stats = cache.gate_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 0);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn failed_builds_are_not_cached() {
        let cache = TranspileCache::new();
        let attempt = cache.gate_plan(key(9), || Err(QmlError::Unsupported("nope".into())));
        assert!(attempt.is_err());
        assert_eq!(cache.gate_stats().entries, 0);
        // A later, successful build fills the slot.
        cache.gate_plan(key(9), || Ok(dummy_plan())).unwrap();
        assert_eq!(cache.gate_stats().entries, 1);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let cache = TranspileCache::new();
        cache.gate_plan(key(1), || Ok(dummy_plan())).unwrap();
        cache.clear();
        let stats = cache.gate_stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn lru_capacity_evicts_the_coldest_plan() {
        let cache = TranspileCache::with_capacity(2);
        cache.gate_plan(key(1), || Ok(dummy_plan())).unwrap();
        cache.gate_plan(key(2), || Ok(dummy_plan())).unwrap();
        // Touch key 1 so key 2 becomes the LRU victim.
        cache.gate_plan(key(1), || panic!("hit expected")).unwrap();
        cache.gate_plan(key(3), || Ok(dummy_plan())).unwrap();

        let stats = cache.gate_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        // Key 1 survived (still a hit), key 2 was evicted (rebuilds).
        cache.gate_plan(key(1), || panic!("hit expected")).unwrap();
        let mut rebuilt = false;
        cache
            .gate_plan(key(2), || {
                rebuilt = true;
                Ok(dummy_plan())
            })
            .unwrap();
        assert!(rebuilt, "evicted plan must rebuild on next use");
        assert_eq!(cache.gate_stats().evictions, 2, "rebuilding 2 evicted 3");
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = TranspileCache::unbounded();
        for program in 0..64 {
            cache.gate_plan(key(program), || Ok(dummy_plan())).unwrap();
        }
        let stats = cache.gate_stats();
        assert_eq!(stats.entries, 64);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn parametric_plan_binds_slot_table() {
        use qml_sim::{Gate, ParamExpr};
        let qdt = QuantumDataType::ising_spins("r", "s", 2).unwrap();
        let mut circuit = Circuit::new(2);
        circuit.push(Gate::Rzz(0, 1, ParamExpr::symbol(0).scale(2.0)));
        circuit.push(Gate::Rx(1, ParamExpr::symbol(1)));
        circuit.push(Gate::H(0));
        circuit.measure_all();
        let plan = GatePlan::new(
            circuit,
            vec!["gamma_0".into(), "beta_0".into()],
            CircuitMetrics::of(&Circuit::new(2), 0),
            qdt.clone(),
            ResultSchema::for_register(&qdt),
        );
        assert!(plan.is_parametric());
        assert_eq!(plan.param_site_count(), 2);

        let bound = plan.bind(&[0.25, 0.5]).unwrap();
        assert!(!bound.is_symbolic());
        assert_eq!(bound.gates()[0], Gate::Rzz(0, 1, 0.5.into()));
        assert_eq!(bound.gates()[1], Gate::Rx(1, 0.5.into()));

        assert!(plan.bind(&[0.25]).is_err(), "missing slot value rejected");

        let overlay = plan.bind_overlay(&[0.25, 0.5]).unwrap();
        assert_eq!(overlay.to_circuit(), bound, "overlay == clone-bind");
        assert!(
            Arc::ptr_eq(overlay.base(), &plan.circuit),
            "overlay shares the plan circuit"
        );
        assert!(plan.bind_overlay(&[0.25]).is_err());
    }

    #[test]
    fn concrete_plan_overlay_shares_the_circuit() {
        let plan = dummy_plan();
        let overlay = plan.bind_overlay(&[]).unwrap();
        assert!(overlay.overrides().is_empty());
        assert!(Arc::ptr_eq(overlay.base(), &plan.circuit));
    }
}
