//! The transpilation/lowering cache shared by cache-aware backends.
//!
//! Realizing a job bundle has two phases: an expensive, *deterministic* one
//! (lowering descriptors and transpiling against the target) and a cheap,
//! policy-dependent one (sampling with the requested shots/seed and decoding).
//! The paper's context-descriptor split makes the first phase a pure function
//! of `(program intent, device target)` — exactly what parameter sweeps and
//! multi-tenant traffic repeat over and over. [`TranspileCache`] memoizes that
//! phase, keyed by [`qml_types::JobBundle::program_hash`] plus
//! [`qml_transpile::TranspileTarget::fingerprint`] (and the optimization
//! level), so repeated contexts skip `qml-transpile` entirely.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use qml_anneal::BinaryQuadraticModel;
use qml_sim::Circuit;
use qml_transpile::CircuitMetrics;
use qml_types::{QuantumDataType, Result, ResultSchema};

/// Cache key of a gate-path realization: program intent hash, device target
/// fingerprint, and transpiler optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GatePlanKey {
    /// [`qml_types::JobBundle::program_hash`] of the submitted intent.
    pub program: u64,
    /// [`qml_transpile::TranspileTarget::fingerprint`] of the device target.
    pub target: u64,
    /// Transpiler optimization level (0–3).
    pub optimization_level: u8,
}

/// A fully realized gate-path plan: everything execution needs except the
/// sampling policy (shots/seed).
#[derive(Debug, Clone, PartialEq)]
pub struct GatePlan {
    /// The transpiled circuit, ready for the simulator.
    pub circuit: Circuit,
    /// Cost metrics of the transpiled circuit.
    pub metrics: CircuitMetrics,
    /// The register the measurement reads out.
    pub register: QuantumDataType,
    /// The explicit result schema attached to the measurement descriptor.
    pub schema: ResultSchema,
}

/// A realized annealing-path plan: the lowered quadratic model plus decoding
/// information, independent of the read/sweep policy.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealPlan {
    /// The binary quadratic model to sample.
    pub bqm: BinaryQuadraticModel,
    /// The register the samples refer to.
    pub register: QuantumDataType,
    /// The explicit result schema.
    pub schema: ResultSchema,
}

/// Hit/miss/entry counters of one cache plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to realize the plan.
    pub misses: u64,
    /// Plans currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over total lookups, 0.0 when the cache is untouched.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A single-flight slot: empty until its plan is first realized.
type PlanSlot<V> = Arc<Mutex<Option<Arc<V>>>>;

/// One single-flight cache plane: per-key slots so concurrent misses of the
/// *same* plan serialize on their slot (exactly one build — no thundering
/// herd) while different keys stay fully concurrent.
#[derive(Debug)]
struct CachePlane<K, V> {
    slots: RwLock<HashMap<K, PlanSlot<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Slots holding a realized plan — kept separately so a stats snapshot
    /// never has to take the per-slot locks (which may be held across an
    /// in-flight build).
    entries: AtomicUsize,
}

impl<K, V> Default for CachePlane<K, V> {
    fn default() -> Self {
        CachePlane {
            slots: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            entries: AtomicUsize::new(0),
        }
    }
}

impl<K: std::hash::Hash + Eq + Clone, V> CachePlane<K, V> {
    fn get_or_build(&self, key: K, build: impl FnOnce() -> Result<V>) -> Result<Arc<V>> {
        // Bind the fast-path lookup to its own statement so the read guard
        // drops before the write path runs (an `if let` over the guard would
        // hold it through the `else` and self-deadlock).
        let existing = self.slots.read().get(&key).cloned();
        let slot = match existing {
            Some(slot) => slot,
            None => self.slots.write().entry(key.clone()).or_default().clone(),
        };
        let mut guard = slot.lock();
        if let Some(plan) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(plan.clone());
        }
        // Failed realizations leave the slot empty so the next submission
        // retries, mirroring how transpilation errors surface per job.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(build()?);
        *guard = Some(plan.clone());
        // Count the entry only while its slot is still reachable, under the
        // map's read lock: a concurrent clear() (write lock) either ran
        // before this check (slot orphaned, not counted) or runs after and
        // resets the counter while holding the same lock — so the counter
        // can never outlive the plans it counts.
        let slots = self.slots.read();
        if slots.get(&key).is_some_and(|live| Arc::ptr_eq(live, &slot)) {
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
        Ok(plan)
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
        }
    }

    fn clear(&self) {
        let mut slots = self.slots.write();
        slots.clear();
        // Reset while still holding the write lock so no in-flight build can
        // interleave its reachability check with the reset.
        self.entries.store(0, Ordering::Relaxed);
    }
}

/// Thread-safe transpilation/lowering cache with hit/miss counters.
///
/// Entries are stored behind `Arc` so concurrent executions of the same plan
/// share one realization without cloning circuits, and lookups are
/// single-flight per key: when N workers miss the same plan at once, one
/// builds and the rest wait for its result. The cache is unbounded: plans are
/// small relative to execution state, and the service layer exposes
/// [`TranspileCache::clear`] for long-running deployments.
#[derive(Debug, Default)]
pub struct TranspileCache {
    gate: CachePlane<GatePlanKey, GatePlan>,
    anneal: CachePlane<u64, AnnealPlan>,
}

impl TranspileCache {
    /// An empty cache.
    pub fn new() -> Self {
        TranspileCache::default()
    }

    /// Fetch the gate plan for `key`, realizing and storing it with `build`
    /// on a miss.
    pub fn gate_plan(
        &self,
        key: GatePlanKey,
        build: impl FnOnce() -> Result<GatePlan>,
    ) -> Result<Arc<GatePlan>> {
        self.gate.get_or_build(key, build)
    }

    /// Fetch the annealing plan for a program hash, realizing it on a miss.
    pub fn anneal_plan(
        &self,
        program: u64,
        build: impl FnOnce() -> Result<AnnealPlan>,
    ) -> Result<Arc<AnnealPlan>> {
        self.anneal.get_or_build(program, build)
    }

    /// Counters of the gate-path plane.
    pub fn gate_stats(&self) -> CacheStats {
        self.gate.stats()
    }

    /// Counters of the annealing-path plane.
    pub fn anneal_stats(&self) -> CacheStats {
        self.anneal.stats()
    }

    /// Combined counters across both planes.
    pub fn stats(&self) -> CacheStats {
        let g = self.gate_stats();
        let a = self.anneal_stats();
        CacheStats {
            hits: g.hits + a.hits,
            misses: g.misses + a.misses,
            entries: g.entries + a.entries,
        }
    }

    /// Drop every cached plan (counters are kept).
    pub fn clear(&self) {
        self.gate.clear();
        self.anneal.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qml_types::QmlError;

    fn dummy_plan() -> GatePlan {
        let qdt = QuantumDataType::ising_spins("r", "s", 2).unwrap();
        GatePlan {
            circuit: Circuit::new(2),
            metrics: CircuitMetrics::of(&Circuit::new(2), 0),
            schema: ResultSchema::for_register(&qdt),
            register: qdt,
        }
    }

    fn key(program: u64) -> GatePlanKey {
        GatePlanKey {
            program,
            target: 1,
            optimization_level: 2,
        }
    }

    #[test]
    fn hit_and_miss_counters() {
        let cache = TranspileCache::new();
        cache.gate_plan(key(1), || Ok(dummy_plan())).unwrap();
        cache
            .gate_plan(key(1), || panic!("must not rebuild"))
            .unwrap();
        cache.gate_plan(key(2), || Ok(dummy_plan())).unwrap();
        let stats = cache.gate_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 2);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn failed_builds_are_not_cached() {
        let cache = TranspileCache::new();
        let attempt = cache.gate_plan(key(9), || Err(QmlError::Unsupported("nope".into())));
        assert!(attempt.is_err());
        assert_eq!(cache.gate_stats().entries, 0);
        // A later, successful build fills the slot.
        cache.gate_plan(key(9), || Ok(dummy_plan())).unwrap();
        assert_eq!(cache.gate_stats().entries, 1);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let cache = TranspileCache::new();
        cache.gate_plan(key(1), || Ok(dummy_plan())).unwrap();
        cache.clear();
        let stats = cache.gate_stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.misses, 1);
    }
}
