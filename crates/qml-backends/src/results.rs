//! Execution results: what a backend hands back to the runtime.
//!
//! Both execution paths — gate simulation and annealing — report their
//! samples in the same shape (counts over classical words) and decode them
//! through the same explicit result schema, which is exactly what lets the
//! paper's two workflows share downstream analysis.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use qml_qec::ResourceEstimate;
use qml_transpile::CircuitMetrics;
use qml_types::DecodedCounts;

/// Energy statistics reported by annealing backends.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyStats {
    /// Lowest energy observed.
    pub min_energy: f64,
    /// Occurrence-weighted mean energy.
    pub mean_energy: f64,
    /// Fraction of reads that reached the lowest observed energy.
    pub ground_state_probability: f64,
}

/// The uniform result of executing a job bundle on any backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionResult {
    /// Name of the backend that produced the result.
    pub backend: String,
    /// Engine identifier from the context (e.g. `gate.aer_simulator`).
    pub engine: String,
    /// Id of the register the readout refers to.
    pub register: String,
    /// Number of samples (shots / reads).
    pub shots: u64,
    /// Raw counts keyed by classical word (character j = classical bit j).
    pub counts: BTreeMap<String, u64>,
    /// Counts decoded through the operator's explicit result schema.
    pub decoded: DecodedCounts,
    /// Transpilation metrics (gate path only).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub gate_metrics: Option<CircuitMetrics>,
    /// Energy statistics (annealing path only).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub energy_stats: Option<EnergyStats>,
    /// Resource estimate produced by the orthogonal QEC service when the
    /// context carried a `qec` block (advisory; semantics are unchanged).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub qec_estimate: Option<ResourceEstimate>,
}

impl ExecutionResult {
    /// Empirical probability of a word.
    pub fn probability(&self, word: &str) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        *self.counts.get(word).unwrap_or(&0) as f64 / self.shots as f64
    }

    /// The most frequent word (ties broken lexicographically).
    pub fn most_frequent(&self) -> Option<(&str, u64)> {
        self.counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(w, &n)| (w.as_str(), n))
    }

    /// Occurrence-weighted expectation of a word-level objective — the
    /// statistic behind the paper's "expected cut".
    pub fn expectation<F: Fn(&str) -> f64>(&self, objective: F) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        self.counts
            .iter()
            .map(|(word, &n)| objective(word) * n as f64)
            .sum::<f64>()
            / self.shots as f64
    }

    /// The `k` most frequent words with their empirical probabilities.
    pub fn top_k(&self, k: usize) -> Vec<(String, f64)> {
        let mut entries: Vec<(String, u64)> =
            self.counts.iter().map(|(w, &n)| (w.clone(), n)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        entries
            .into_iter()
            .take(k)
            .map(|(w, n)| (w, n as f64 / self.shots.max(1) as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qml_types::{QuantumDataType, ResultSchema};

    fn demo_result() -> ExecutionResult {
        let qdt = QuantumDataType::ising_spins("ising_vars", "s", 4).unwrap();
        let schema = ResultSchema::for_register(&qdt);
        let mut counts = BTreeMap::new();
        counts.insert("1010".to_string(), 500u64);
        counts.insert("0101".to_string(), 400u64);
        counts.insert("0000".to_string(), 100u64);
        let decoded = DecodedCounts::decode(&counts, &schema, &qdt).unwrap();
        ExecutionResult {
            backend: "test".into(),
            engine: "gate.test".into(),
            register: "ising_vars".into(),
            shots: 1000,
            counts,
            decoded,
            gate_metrics: None,
            energy_stats: None,
            qec_estimate: None,
        }
    }

    #[test]
    fn probabilities_and_top_k() {
        let r = demo_result();
        assert!((r.probability("1010") - 0.5).abs() < 1e-12);
        assert_eq!(r.probability("1111"), 0.0);
        assert_eq!(r.most_frequent(), Some(("1010", 500)));
        let top = r.top_k(2);
        assert_eq!(top[0].0, "1010");
        assert_eq!(top[1].0, "0101");
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn expectation_weighted_by_counts() {
        let r = demo_result();
        let ones = r.expectation(|w| w.chars().filter(|&c| c == '1').count() as f64);
        assert!((ones - (0.5 * 2.0 + 0.4 * 2.0 + 0.1 * 0.0)).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let r = demo_result();
        let json = serde_json::to_string(&r).unwrap();
        let back: ExecutionResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn zero_shot_edge_cases() {
        let mut r = demo_result();
        r.shots = 0;
        assert_eq!(r.probability("1010"), 0.0);
        assert_eq!(r.expectation(|_| 1.0), 0.0);
    }
}
