//! Lowering: realizing operator descriptors as circuits or quadratic models.
//!
//! This is the layer the paper calls "realization hooks ... rules that lower
//! a quantum operator descriptor to a target-specific form (gate list, pulse
//! schedule, anneal submission) when the caller supplies a backend/context"
//! (§4.4). Lowering happens **late**: the same intent bundle is handed to
//! whichever backend the context selects, and only then do descriptors become
//! gates (gate path) or a binary quadratic model (annealing path).

use qml_anneal::BinaryQuadraticModel;
use qml_sim::{qft_circuit, Circuit, Gate, ParamExpr};
use qml_types::{
    JobBundle, OperatorDescriptor, ParamValue, QmlError, QuantumDataType, RepKind, Result,
    ResultSchema,
};

use qml_algorithms::parse_ising_operator;

/// The gate-path lowering of a job bundle: a (possibly **parametric**)
/// circuit plus the information needed to bind and decode it.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredCircuit {
    /// The realized circuit (registers laid out contiguously in declaration
    /// order). Symbolic operator parameters lower to symbolic rotation
    /// angles referencing the slot table below.
    pub circuit: Circuit,
    /// Slot table: symbol names in the bundle's canonical order — slot `i`
    /// of every [`ParamExpr`] in the circuit refers to `symbols[i]`.
    pub symbols: Vec<String>,
    /// The register the final measurement reads out.
    pub register: QuantumDataType,
    /// The explicit result schema attached to the measurement descriptor.
    pub schema: ResultSchema,
}

/// Slot-assigning view of the bundle's symbols: canonical order, so that
/// equal symbolic programs (up to symbol spelling) assign corresponding
/// parameters the same slot.
struct SymbolResolver {
    names: Vec<String>,
}

impl SymbolResolver {
    fn for_bundle(bundle: &JobBundle) -> Self {
        SymbolResolver {
            names: bundle.canonical_symbols(),
        }
    }

    /// Resolve one operator parameter into an angle expression: numeric
    /// values fold to constants, symbols become slot references.
    fn angle(&self, op: &OperatorDescriptor, key: &str) -> Result<ParamExpr> {
        match op.params.get(key) {
            None => Err(QmlError::Validation(format!(
                "missing parameter `{key}` on operator `{}`",
                op.name
            ))),
            Some(value) => self.value(value, key),
        }
    }

    fn value(&self, value: &ParamValue, key: &str) -> Result<ParamExpr> {
        match value {
            ParamValue::Symbol(symbol) => {
                let slot = self
                    .names
                    .iter()
                    .position(|name| *name == symbol.name)
                    .ok_or_else(|| QmlError::UnboundParameter(symbol.name.clone()))?;
                Ok(ParamExpr::symbol(slot as u32))
            }
            other => other
                .as_f64()
                .map(ParamExpr::constant)
                .ok_or_else(|| QmlError::Validation(format!("parameter `{key}` is not numeric"))),
        }
    }
}

/// The annealing-path lowering of a job bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredBqm {
    /// The binary quadratic model to sample.
    pub bqm: BinaryQuadraticModel,
    /// The register the samples refer to.
    pub register: QuantumDataType,
    /// The explicit result schema attached to the problem descriptor.
    pub schema: ResultSchema,
}

/// Extract the edges/weights parameters of an `ISING_COST_PHASE` descriptor.
fn parse_edges(op: &OperatorDescriptor, width: usize) -> Result<Vec<(usize, usize, f64)>> {
    let edges = match op.params.get("edges") {
        Some(ParamValue::List(items)) => items,
        _ => {
            return Err(QmlError::Validation(format!(
                "operator `{}` is missing its `edges` parameter",
                op.name
            )))
        }
    };
    let weights: Option<&[ParamValue]> = op.params.get("weights").and_then(ParamValue::as_list);
    edges
        .iter()
        .enumerate()
        .map(|(idx, entry)| {
            let pair = entry
                .as_list()
                .ok_or_else(|| QmlError::Validation("edge entries must be [u, v]".into()))?;
            if pair.len() != 2 {
                return Err(QmlError::Validation("edge entries must be [u, v]".into()));
            }
            let u = pair[0]
                .as_u64()
                .ok_or_else(|| QmlError::Validation("bad edge index".into()))?
                as usize;
            let v = pair[1]
                .as_u64()
                .ok_or_else(|| QmlError::Validation("bad edge index".into()))?
                as usize;
            if u >= width || v >= width || u == v {
                return Err(QmlError::Validation(format!(
                    "edge ({u},{v}) is invalid for a width-{width} register"
                )));
            }
            let w = match weights.and_then(|ws| ws.get(idx)) {
                None => 1.0,
                // Weights are structural (they scale the circuit's angles at
                // lowering time): a still-symbolic weight must fail loudly,
                // never silently default.
                Some(ParamValue::Symbol(symbol)) => {
                    return Err(QmlError::UnboundParameter(symbol.name.clone()))
                }
                Some(value) => value
                    .as_f64()
                    .ok_or_else(|| QmlError::Validation("edge weights must be numeric".into()))?,
            };
            Ok((u, v, w))
        })
        .collect()
}

/// Lower a job bundle to a gate-model circuit, **keeping symbolic parameters
/// symbolic**: a QAOA bundle with unbound γ/β lowers to a parametric circuit
/// whose rotation angles reference the returned slot table. Structural
/// parameters (edges, QFT shape, encodings) must still be concrete.
///
/// The bundle must end with exactly one `MEASUREMENT` descriptor (explicit
/// measurement is the only way to obtain classical data) and every unitary
/// descriptor must have a gate realization.
pub fn lower_to_circuit(bundle: &JobBundle) -> Result<LoweredCircuit> {
    bundle.validate()?;
    let resolver = SymbolResolver::for_bundle(bundle);
    let offsets = bundle.register_offsets();
    let total_width = bundle.total_width();
    let mut circuit = Circuit::new(total_width);
    let mut readout: Option<(QuantumDataType, ResultSchema)> = None;

    for op in &bundle.operators {
        let register = bundle
            .find_qdt(&op.domain_qdt)
            .ok_or_else(|| QmlError::UnknownRegister(op.domain_qdt.clone()))?;
        let offset = offsets[&register.id];
        let wire = |i: usize| offset + i;

        match &op.rep_kind {
            RepKind::PrepUniform | RepKind::HadamardLayer => {
                for i in 0..register.width {
                    circuit.push(Gate::H(wire(i)));
                }
            }
            RepKind::IsingCostPhase => {
                let gamma = resolver.angle(op, "gamma")?;
                for (u, v, w) in parse_edges(op, register.width)? {
                    // exp(−i γ w Z_u Z_v) = RZZ(2 γ w). The scale is affine,
                    // so a symbolic γ stays symbolic through lowering.
                    circuit.push(Gate::Rzz(wire(u), wire(v), gamma.scale(2.0 * w)));
                }
            }
            RepKind::MixerRx => {
                let beta = resolver.angle(op, "beta")?;
                for i in 0..register.width {
                    // exp(−i β X) = RX(2β).
                    circuit.push(Gate::Rx(wire(i), beta.scale(2.0)));
                }
            }
            RepKind::QftTemplate => {
                // Every QFT parameter is structural (it changes the circuit's
                // shape), so none may still be symbolic: `u64_or`/`bool_or`
                // would otherwise silently substitute their defaults.
                op.params.ensure_bound()?;
                let approx = op.params.u64_or("approx_degree", 0) as usize;
                let do_swaps = op.params.bool_or("do_swaps", true);
                let inverse = op.params.bool_or("inverse", false);
                let qft = qft_circuit(register.width, approx, do_swaps, inverse);
                let map: Vec<usize> = (0..register.width).map(wire).collect();
                circuit.compose(&qft.remap(&map, total_width));
            }
            RepKind::AngleEncoding => {
                let angles = op
                    .params
                    .get("angles")
                    .and_then(ParamValue::as_list)
                    .ok_or_else(|| QmlError::Validation("angle encoding needs `angles`".into()))?;
                for (i, angle) in angles.iter().enumerate() {
                    let theta = resolver.value(angle, "angles")?;
                    circuit.push(Gate::Ry(wire(i), theta));
                }
            }
            RepKind::Measurement => {
                let schema = op.result_schema.clone().ok_or_else(|| {
                    QmlError::Validation("measurement without result schema".into())
                })?;
                let codomain = bundle
                    .find_qdt(&op.codomain_qdt)
                    .ok_or_else(|| QmlError::UnknownRegister(op.codomain_qdt.clone()))?;
                let indices = schema.wire_indices(codomain)?;
                let qubits: Vec<usize> =
                    indices.iter().map(|&i| offsets[&codomain.id] + i).collect();
                circuit.measure(&qubits);
                readout = Some((codomain.clone(), schema));
            }
            other => {
                return Err(QmlError::Unsupported(format!(
                    "the gate backend has no realization rule for `{other}` (operator `{}`)",
                    op.name
                )))
            }
        }
    }

    let (register, schema) = readout.ok_or_else(|| {
        QmlError::Validation(
            "bundle has no MEASUREMENT descriptor; implicit measurement is forbidden".into(),
        )
    })?;
    Ok(LoweredCircuit {
        circuit,
        symbols: resolver.names,
        register,
        schema,
    })
}

/// Lower a job bundle to a binary quadratic model for annealing backends.
///
/// Unlike the gate path, BQM coefficients are structural, so symbolic
/// parameters must be resolved first: any attached
/// [`BindingSet`](qml_types::BindingSet) is substituted eagerly and the
/// result must be fully bound. The bundle must contain exactly one
/// `ISING_PROBLEM` descriptor; anything else is not an annealing workload.
pub fn lower_to_bqm(bundle: &JobBundle) -> Result<LoweredBqm> {
    let resolved;
    let bundle = if bundle.bindings.is_some() {
        resolved = bundle.resolved();
        &resolved
    } else {
        bundle
    };
    bundle.validate()?;
    bundle.ensure_bound()?;
    let problems: Vec<&OperatorDescriptor> = bundle
        .operators
        .iter()
        .filter(|op| op.rep_kind.is_problem())
        .collect();
    if problems.len() != 1 {
        return Err(QmlError::Unsupported(format!(
            "the annealing backend expects exactly one ISING_PROBLEM descriptor, found {}",
            problems.len()
        )));
    }
    if bundle.operators.len() != 1 {
        return Err(QmlError::Unsupported(
            "the annealing backend cannot realize additional operators alongside ISING_PROBLEM"
                .into(),
        ));
    }
    let op = problems[0];
    let register = bundle
        .find_qdt(&op.domain_qdt)
        .ok_or_else(|| QmlError::UnknownRegister(op.domain_qdt.clone()))?;
    let problem = parse_ising_operator(op, register.width)?;
    let bqm = BinaryQuadraticModel::from_ising(&problem.h, &problem.j);
    let schema = op
        .result_schema
        .clone()
        .unwrap_or_else(|| ResultSchema::for_register(register));
    schema.validate_against(register)?;
    Ok(LoweredBqm {
        bqm,
        register: register.clone(),
        schema,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qml_algorithms::{
        maxcut_ising_program, qaoa_maxcut_program, qft_program, QaoaSchedule, QftParams,
        RING_P1_ANGLES,
    };
    use qml_graph::cycle;
    use qml_sim::Simulator;
    use qml_types::QuantumDataType;

    #[test]
    fn qaoa_bundle_lowers_to_expected_gates() {
        let bundle =
            qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap();
        let lowered = lower_to_circuit(&bundle).unwrap();
        let counts = lowered.circuit.gate_counts();
        assert_eq!(counts["h"], 4, "PREP_UNIFORM = one H per qubit");
        assert_eq!(counts["rzz"], 4, "one ZZ per edge of C4");
        assert_eq!(counts["rx"], 4, "one RX per qubit");
        assert_eq!(lowered.circuit.num_clbits(), 4);
        assert_eq!(lowered.register.id, "ising_vars");
    }

    #[test]
    fn qft_bundle_lowers_and_runs() {
        let bundle = qft_program(5, QftParams::default()).unwrap();
        let lowered = lower_to_circuit(&bundle).unwrap();
        assert!(lowered.circuit.gate_counts().contains_key("cp"));
        let result = Simulator::new().run(&lowered.circuit, 256, 7);
        assert_eq!(result.counts.values().sum::<u64>(), 256);
    }

    #[test]
    fn unbound_symbols_lower_to_a_parametric_circuit() {
        let bundle = qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Symbolic { layers: 1 }).unwrap();
        let lowered = lower_to_circuit(&bundle).unwrap();
        assert!(lowered.circuit.is_symbolic());
        assert_eq!(
            lowered.symbols,
            vec!["gamma_0".to_string(), "beta_0".to_string()],
            "slot table follows canonical (first-appearance) order"
        );
        // 4 RZZ (γ) + 4 RX (β) symbolic sites.
        assert_eq!(lowered.circuit.symbolic_gate_indices().len(), 8);

        // Binding the slot table reproduces the bind-first lowering exactly.
        let mut bindings = std::collections::BTreeMap::new();
        bindings.insert("gamma_0".to_string(), ParamValue::Float(0.4));
        bindings.insert("beta_0".to_string(), ParamValue::Float(0.55));
        let eager = lower_to_circuit(&bundle.bind(&bindings)).unwrap();
        let late = lowered.circuit.bind(&[0.4, 0.55]);
        assert_eq!(
            late, eager.circuit,
            "late and eager binding agree gate-for-gate"
        );
    }

    #[test]
    fn symbolic_structural_params_fail_loudly() {
        // A symbolic QFT shape parameter must never silently default.
        let mut bundle = qft_program(4, QftParams::default()).unwrap();
        bundle.operators[0]
            .params
            .insert("approx_degree", ParamValue::symbol("d"));
        assert!(matches!(
            lower_to_circuit(&bundle),
            Err(QmlError::UnboundParameter(name)) if name == "d"
        ));

        // A symbolic edge weight (structural: it scales the lowered angle)
        // must fail loudly too, not default to 1.0.
        let mut qaoa =
            qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap();
        qaoa.operators[1].params.insert(
            "weights",
            ParamValue::List(vec![
                ParamValue::symbol("w0"),
                ParamValue::Float(1.0),
                ParamValue::Float(1.0),
                ParamValue::Float(1.0),
            ]),
        );
        assert!(matches!(
            lower_to_circuit(&qaoa),
            Err(QmlError::UnboundParameter(name)) if name == "w0"
        ));
    }

    #[test]
    fn symbolic_angle_encoding_lowers_symbolically() {
        use qml_types::ResultSchema;
        let register = QuantumDataType::bool_register("b", "b", 2).unwrap();
        let encode = qml_types::OperatorDescriptor::builder("encode", RepKind::AngleEncoding, "b")
            .param(
                "angles",
                ParamValue::List(vec![ParamValue::symbol("x0"), ParamValue::Float(0.3)]),
            )
            .build()
            .unwrap();
        let measure = qml_types::OperatorDescriptor::builder("m", RepKind::Measurement, "b")
            .result_schema(ResultSchema::for_register(&register))
            .build()
            .unwrap();
        let bundle = JobBundle::new("enc", vec![register], vec![encode, measure]);
        let lowered = lower_to_circuit(&bundle).unwrap();
        assert_eq!(lowered.symbols, vec!["x0".to_string()]);
        assert_eq!(lowered.circuit.symbolic_gate_indices().len(), 1);
    }

    #[test]
    fn missing_measurement_rejected() {
        let register = qml_algorithms::ising_register(4).unwrap();
        let prep = qml_algorithms::qaoa::prep_uniform(&register).unwrap();
        let bundle = JobBundle::new("no-measure", vec![register], vec![prep]);
        let err = lower_to_circuit(&bundle).unwrap_err();
        assert!(err.to_string().contains("MEASUREMENT"), "{err}");
    }

    #[test]
    fn unsupported_descriptor_rejected_by_gate_path() {
        let a = QuantumDataType::int_register("a", "a", 3).unwrap();
        let b = QuantumDataType::int_register("b", "b", 3).unwrap();
        let add = qml_algorithms::adder(&a, &b).unwrap();
        let meas = qml_algorithms::with_measurement(vec![add], &b).unwrap();
        let bundle = JobBundle::new("adder", vec![a, b], meas);
        assert!(matches!(
            lower_to_circuit(&bundle),
            Err(QmlError::Unsupported(_))
        ));
    }

    #[test]
    fn multi_register_layout_offsets_wires() {
        // Two registers: the second register's gates must land on wires ≥ 3.
        let a = QuantumDataType::bool_register("a", "a", 3).unwrap();
        let b = QuantumDataType::bool_register("b", "b", 2).unwrap();
        let prep_b = qml_algorithms::hadamard_layer(&b).unwrap();
        let ops = qml_algorithms::with_measurement(vec![prep_b], &b).unwrap();
        let bundle = JobBundle::new("two-regs", vec![a, b], ops);
        let lowered = lower_to_circuit(&bundle).unwrap();
        assert!(lowered
            .circuit
            .gates()
            .iter()
            .all(|g| g.qubits().iter().all(|&q| q >= 3)));
        assert_eq!(lowered.circuit.num_qubits(), 5);
        assert_eq!(lowered.circuit.measured(), &[3, 4]);
    }

    #[test]
    fn ising_bundle_lowers_to_bqm() {
        let bundle = maxcut_ising_program(&cycle(4)).unwrap();
        let lowered = lower_to_bqm(&bundle).unwrap();
        assert_eq!(lowered.bqm.num_variables(), 4);
        assert_eq!(lowered.bqm.num_interactions(), 4);
        assert_eq!(lowered.bqm.energy_spin(&[1, -1, 1, -1]), -4.0);
        assert_eq!(lowered.register.id, "ising_vars");
    }

    #[test]
    fn qaoa_bundle_rejected_by_anneal_lowering() {
        let bundle =
            qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap();
        assert!(matches!(
            lower_to_bqm(&bundle),
            Err(QmlError::Unsupported(_))
        ));
    }

    #[test]
    fn ising_bundle_rejected_by_gate_lowering() {
        let bundle = maxcut_ising_program(&cycle(4)).unwrap();
        assert!(matches!(
            lower_to_circuit(&bundle),
            Err(QmlError::Unsupported(_))
        ));
    }

    #[test]
    fn malformed_edges_rejected() {
        let register = qml_algorithms::ising_register(4).unwrap();
        let mut cost =
            qml_algorithms::qaoa::ising_cost_phase(&register, &cycle(4), 0.3, 0).unwrap();
        cost.params
            .insert("edges", ParamValue::List(vec![ParamValue::Int(1)]));
        let ops = qml_algorithms::with_measurement(vec![cost], &register).unwrap();
        let bundle = JobBundle::new("bad-edges", vec![register], ops);
        assert!(lower_to_circuit(&bundle).is_err());
    }
}
