//! Lowering: realizing operator descriptors as circuits or quadratic models.
//!
//! This is the layer the paper calls "realization hooks ... rules that lower
//! a quantum operator descriptor to a target-specific form (gate list, pulse
//! schedule, anneal submission) when the caller supplies a backend/context"
//! (§4.4). Lowering happens **late**: the same intent bundle is handed to
//! whichever backend the context selects, and only then do descriptors become
//! gates (gate path) or a binary quadratic model (annealing path).

use qml_anneal::BinaryQuadraticModel;
use qml_sim::{qft_circuit, Circuit, Gate};
use qml_types::{
    JobBundle, OperatorDescriptor, ParamValue, QmlError, QuantumDataType, RepKind, Result,
    ResultSchema,
};

use qml_algorithms::parse_ising_operator;

/// The gate-path lowering of a job bundle: a circuit plus the information
/// needed to decode its counts.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredCircuit {
    /// The realized circuit (registers laid out contiguously in declaration
    /// order).
    pub circuit: Circuit,
    /// The register the final measurement reads out.
    pub register: QuantumDataType,
    /// The explicit result schema attached to the measurement descriptor.
    pub schema: ResultSchema,
}

/// The annealing-path lowering of a job bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredBqm {
    /// The binary quadratic model to sample.
    pub bqm: BinaryQuadraticModel,
    /// The register the samples refer to.
    pub register: QuantumDataType,
    /// The explicit result schema attached to the problem descriptor.
    pub schema: ResultSchema,
}

/// Extract the edges/weights parameters of an `ISING_COST_PHASE` descriptor.
fn parse_edges(op: &OperatorDescriptor, width: usize) -> Result<Vec<(usize, usize, f64)>> {
    let edges = match op.params.get("edges") {
        Some(ParamValue::List(items)) => items,
        _ => {
            return Err(QmlError::Validation(format!(
                "operator `{}` is missing its `edges` parameter",
                op.name
            )))
        }
    };
    let weights: Option<&[ParamValue]> = op.params.get("weights").and_then(ParamValue::as_list);
    edges
        .iter()
        .enumerate()
        .map(|(idx, entry)| {
            let pair = entry
                .as_list()
                .ok_or_else(|| QmlError::Validation("edge entries must be [u, v]".into()))?;
            if pair.len() != 2 {
                return Err(QmlError::Validation("edge entries must be [u, v]".into()));
            }
            let u = pair[0]
                .as_u64()
                .ok_or_else(|| QmlError::Validation("bad edge index".into()))?
                as usize;
            let v = pair[1]
                .as_u64()
                .ok_or_else(|| QmlError::Validation("bad edge index".into()))?
                as usize;
            if u >= width || v >= width || u == v {
                return Err(QmlError::Validation(format!(
                    "edge ({u},{v}) is invalid for a width-{width} register"
                )));
            }
            let w = weights
                .and_then(|ws| ws.get(idx))
                .and_then(ParamValue::as_f64)
                .unwrap_or(1.0);
            Ok((u, v, w))
        })
        .collect()
}

/// Lower a job bundle to a gate-model circuit.
///
/// The bundle must end with exactly one `MEASUREMENT` descriptor (explicit
/// measurement is the only way to obtain classical data) and every unitary
/// descriptor must have a gate realization.
pub fn lower_to_circuit(bundle: &JobBundle) -> Result<LoweredCircuit> {
    bundle.validate()?;
    bundle.ensure_bound()?;
    let offsets = bundle.register_offsets();
    let total_width = bundle.total_width();
    let mut circuit = Circuit::new(total_width);
    let mut readout: Option<(QuantumDataType, ResultSchema)> = None;

    for op in &bundle.operators {
        let register = bundle
            .find_qdt(&op.domain_qdt)
            .ok_or_else(|| QmlError::UnknownRegister(op.domain_qdt.clone()))?;
        let offset = offsets[&register.id];
        let wire = |i: usize| offset + i;

        match &op.rep_kind {
            RepKind::PrepUniform | RepKind::HadamardLayer => {
                for i in 0..register.width {
                    circuit.push(Gate::H(wire(i)));
                }
            }
            RepKind::IsingCostPhase => {
                let gamma = op.params.require_f64("gamma")?;
                for (u, v, w) in parse_edges(op, register.width)? {
                    // exp(−i γ w Z_u Z_v) = RZZ(2 γ w).
                    circuit.push(Gate::Rzz(wire(u), wire(v), 2.0 * gamma * w));
                }
            }
            RepKind::MixerRx => {
                let beta = op.params.require_f64("beta")?;
                for i in 0..register.width {
                    // exp(−i β X) = RX(2β).
                    circuit.push(Gate::Rx(wire(i), 2.0 * beta));
                }
            }
            RepKind::QftTemplate => {
                let approx = op.params.u64_or("approx_degree", 0) as usize;
                let do_swaps = op.params.bool_or("do_swaps", true);
                let inverse = op.params.bool_or("inverse", false);
                let qft = qft_circuit(register.width, approx, do_swaps, inverse);
                let map: Vec<usize> = (0..register.width).map(wire).collect();
                circuit.compose(&qft.remap(&map, total_width));
            }
            RepKind::AngleEncoding => {
                let angles = op
                    .params
                    .get("angles")
                    .and_then(ParamValue::as_list)
                    .ok_or_else(|| QmlError::Validation("angle encoding needs `angles`".into()))?;
                for (i, angle) in angles.iter().enumerate() {
                    let theta = angle
                        .as_f64()
                        .ok_or_else(|| QmlError::Validation("non-numeric angle".into()))?;
                    circuit.push(Gate::Ry(wire(i), theta));
                }
            }
            RepKind::Measurement => {
                let schema = op.result_schema.clone().ok_or_else(|| {
                    QmlError::Validation("measurement without result schema".into())
                })?;
                let codomain = bundle
                    .find_qdt(&op.codomain_qdt)
                    .ok_or_else(|| QmlError::UnknownRegister(op.codomain_qdt.clone()))?;
                let indices = schema.wire_indices(codomain)?;
                let qubits: Vec<usize> =
                    indices.iter().map(|&i| offsets[&codomain.id] + i).collect();
                circuit.measure(&qubits);
                readout = Some((codomain.clone(), schema));
            }
            other => {
                return Err(QmlError::Unsupported(format!(
                    "the gate backend has no realization rule for `{other}` (operator `{}`)",
                    op.name
                )))
            }
        }
    }

    let (register, schema) = readout.ok_or_else(|| {
        QmlError::Validation(
            "bundle has no MEASUREMENT descriptor; implicit measurement is forbidden".into(),
        )
    })?;
    Ok(LoweredCircuit {
        circuit,
        register,
        schema,
    })
}

/// Lower a job bundle to a binary quadratic model for annealing backends.
///
/// The bundle must contain exactly one `ISING_PROBLEM` descriptor; anything
/// else is not an annealing workload.
pub fn lower_to_bqm(bundle: &JobBundle) -> Result<LoweredBqm> {
    bundle.validate()?;
    bundle.ensure_bound()?;
    let problems: Vec<&OperatorDescriptor> = bundle
        .operators
        .iter()
        .filter(|op| op.rep_kind.is_problem())
        .collect();
    if problems.len() != 1 {
        return Err(QmlError::Unsupported(format!(
            "the annealing backend expects exactly one ISING_PROBLEM descriptor, found {}",
            problems.len()
        )));
    }
    if bundle.operators.len() != 1 {
        return Err(QmlError::Unsupported(
            "the annealing backend cannot realize additional operators alongside ISING_PROBLEM"
                .into(),
        ));
    }
    let op = problems[0];
    let register = bundle
        .find_qdt(&op.domain_qdt)
        .ok_or_else(|| QmlError::UnknownRegister(op.domain_qdt.clone()))?;
    let problem = parse_ising_operator(op, register.width)?;
    let bqm = BinaryQuadraticModel::from_ising(&problem.h, &problem.j);
    let schema = op
        .result_schema
        .clone()
        .unwrap_or_else(|| ResultSchema::for_register(register));
    schema.validate_against(register)?;
    Ok(LoweredBqm {
        bqm,
        register: register.clone(),
        schema,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qml_algorithms::{
        maxcut_ising_program, qaoa_maxcut_program, qft_program, QaoaSchedule, QftParams,
        RING_P1_ANGLES,
    };
    use qml_graph::cycle;
    use qml_sim::Simulator;
    use qml_types::QuantumDataType;

    #[test]
    fn qaoa_bundle_lowers_to_expected_gates() {
        let bundle =
            qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap();
        let lowered = lower_to_circuit(&bundle).unwrap();
        let counts = lowered.circuit.gate_counts();
        assert_eq!(counts["h"], 4, "PREP_UNIFORM = one H per qubit");
        assert_eq!(counts["rzz"], 4, "one ZZ per edge of C4");
        assert_eq!(counts["rx"], 4, "one RX per qubit");
        assert_eq!(lowered.circuit.num_clbits(), 4);
        assert_eq!(lowered.register.id, "ising_vars");
    }

    #[test]
    fn qft_bundle_lowers_and_runs() {
        let bundle = qft_program(5, QftParams::default()).unwrap();
        let lowered = lower_to_circuit(&bundle).unwrap();
        assert!(lowered.circuit.gate_counts().contains_key("cp"));
        let result = Simulator::new().run(&lowered.circuit, 256, 7);
        assert_eq!(result.counts.values().sum::<u64>(), 256);
    }

    #[test]
    fn unbound_symbols_block_lowering() {
        let bundle = qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Symbolic { layers: 1 }).unwrap();
        assert!(matches!(
            lower_to_circuit(&bundle),
            Err(QmlError::UnboundParameter(_))
        ));
    }

    #[test]
    fn missing_measurement_rejected() {
        let register = qml_algorithms::ising_register(4).unwrap();
        let prep = qml_algorithms::qaoa::prep_uniform(&register).unwrap();
        let bundle = JobBundle::new("no-measure", vec![register], vec![prep]);
        let err = lower_to_circuit(&bundle).unwrap_err();
        assert!(err.to_string().contains("MEASUREMENT"), "{err}");
    }

    #[test]
    fn unsupported_descriptor_rejected_by_gate_path() {
        let a = QuantumDataType::int_register("a", "a", 3).unwrap();
        let b = QuantumDataType::int_register("b", "b", 3).unwrap();
        let add = qml_algorithms::adder(&a, &b).unwrap();
        let meas = qml_algorithms::with_measurement(vec![add], &b).unwrap();
        let bundle = JobBundle::new("adder", vec![a, b], meas);
        assert!(matches!(
            lower_to_circuit(&bundle),
            Err(QmlError::Unsupported(_))
        ));
    }

    #[test]
    fn multi_register_layout_offsets_wires() {
        // Two registers: the second register's gates must land on wires ≥ 3.
        let a = QuantumDataType::bool_register("a", "a", 3).unwrap();
        let b = QuantumDataType::bool_register("b", "b", 2).unwrap();
        let prep_b = qml_algorithms::hadamard_layer(&b).unwrap();
        let ops = qml_algorithms::with_measurement(vec![prep_b], &b).unwrap();
        let bundle = JobBundle::new("two-regs", vec![a, b], ops);
        let lowered = lower_to_circuit(&bundle).unwrap();
        assert!(lowered
            .circuit
            .gates()
            .iter()
            .all(|g| g.qubits().iter().all(|&q| q >= 3)));
        assert_eq!(lowered.circuit.num_qubits(), 5);
        assert_eq!(lowered.circuit.measured(), &[3, 4]);
    }

    #[test]
    fn ising_bundle_lowers_to_bqm() {
        let bundle = maxcut_ising_program(&cycle(4)).unwrap();
        let lowered = lower_to_bqm(&bundle).unwrap();
        assert_eq!(lowered.bqm.num_variables(), 4);
        assert_eq!(lowered.bqm.num_interactions(), 4);
        assert_eq!(lowered.bqm.energy_spin(&[1, -1, 1, -1]), -4.0);
        assert_eq!(lowered.register.id, "ising_vars");
    }

    #[test]
    fn qaoa_bundle_rejected_by_anneal_lowering() {
        let bundle =
            qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap();
        assert!(matches!(
            lower_to_bqm(&bundle),
            Err(QmlError::Unsupported(_))
        ));
    }

    #[test]
    fn ising_bundle_rejected_by_gate_lowering() {
        let bundle = maxcut_ising_program(&cycle(4)).unwrap();
        assert!(matches!(
            lower_to_circuit(&bundle),
            Err(QmlError::Unsupported(_))
        ));
    }

    #[test]
    fn malformed_edges_rejected() {
        let register = qml_algorithms::ising_register(4).unwrap();
        let mut cost =
            qml_algorithms::qaoa::ising_cost_phase(&register, &cycle(4), 0.3, 0).unwrap();
        cost.params
            .insert("edges", ParamValue::List(vec![ParamValue::Int(1)]));
        let ops = qml_algorithms::with_measurement(vec![cost], &register).unwrap();
        let bundle = JobBundle::new("bad-edges", vec![register], ops);
        assert!(lower_to_circuit(&bundle).is_err());
    }
}
