//! Deterministic fault injection for fleet and failure-domain tests.
//!
//! Failure-handling claims ("jobs are requeued exactly once", "a down device
//! receives no dispatches") are only testable if failures happen *on
//! schedule*. [`FaultyBackend`] wraps any real [`Backend`] and injects
//! [`QmlError::DeviceFault`] errors according to a scriptable [`FaultPlan`]:
//! fail the nth execution (transient — the device recovers afterwards), fail
//! every execution from an index onward (permanent — a dead device), or fail
//! every bundle with a given plan key (a poisoned plan class). Everything
//! else delegates to the wrapped backend unchanged, so results on the
//! non-faulting path stay bit-identical to the inner backend's.
//!
//! This module is compiled into the library (not `#[cfg(test)]`) so unit
//! tests, the repository-level integration tests, and the fleet examples all
//! share one fault vocabulary instead of growing per-test ad-hoc doubles.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qml_types::{JobBundle, QmlError, Result};

use crate::cache::TranspileCache;
use crate::results::ExecutionResult;
use crate::traits::{Backend, BatchTimings};

/// A deterministic fault schedule for a [`FaultyBackend`].
///
/// Execution indices are 0-based and count every member execution the
/// wrapper performs (batch members included, in submission order), so a
/// schedule is reproducible run-to-run for a deterministic workload.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Transient faults: execution indices that fail once each; the device
    /// works again on the next execution (health flapping).
    pub fail_nth: BTreeSet<u64>,
    /// Permanent fault: every execution with index `>= fail_from` fails —
    /// the device is dead from that point on.
    pub fail_from: Option<u64>,
    /// Fail every bundle whose plan key (per the inner backend's
    /// [`Backend::batch_key`]) is in this set, regardless of index.
    pub fail_plan_keys: BTreeSet<u64>,
}

impl FaultPlan {
    /// An empty plan: never faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Fail the executions at these 0-based indices (transient faults),
    /// builder-style.
    pub fn with_fail_nth(mut self, indices: impl IntoIterator<Item = u64>) -> Self {
        self.fail_nth.extend(indices);
        self
    }

    /// Fail every execution from `index` onward (a permanent device death),
    /// builder-style.
    pub fn with_fail_from(mut self, index: u64) -> Self {
        self.fail_from = Some(index);
        self
    }

    /// Fail every bundle with this plan key, builder-style.
    pub fn with_fail_plan_key(mut self, key: u64) -> Self {
        self.fail_plan_keys.insert(key);
        self
    }

    /// The fault scheduled for execution `index` of a bundle with the given
    /// plan key, if any.
    pub fn fault_for(&self, index: u64, plan_key: Option<u64>) -> Option<QmlError> {
        if self.fail_from.is_some_and(|from| index >= from) {
            return Some(QmlError::DeviceFault(format!(
                "injected permanent fault (execution #{index})"
            )));
        }
        if self.fail_nth.contains(&index) {
            return Some(QmlError::DeviceFault(format!(
                "injected transient fault (execution #{index})"
            )));
        }
        if let Some(key) = plan_key {
            if self.fail_plan_keys.contains(&key) {
                return Some(QmlError::DeviceFault(format!(
                    "injected fault for plan key {key:016x} (execution #{index})"
                )));
            }
        }
        None
    }
}

/// A [`Backend`] wrapper that injects [`QmlError::DeviceFault`] errors on a
/// deterministic [`FaultPlan`] schedule and otherwise delegates to the
/// wrapped backend. See the module docs.
#[derive(Debug)]
pub struct FaultyBackend<B: Backend> {
    inner: B,
    plan: FaultPlan,
    executions: AtomicU64,
    faults_injected: AtomicU64,
}

impl<B: Backend> FaultyBackend<B> {
    /// Wrap `inner`, injecting faults per `plan`.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        FaultyBackend {
            inner,
            plan,
            executions: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
        }
    }

    /// Total member executions attempted so far (faulted ones included).
    pub fn executions(&self) -> u64 {
        self.executions.load(Ordering::Relaxed)
    }

    /// How many faults the plan has injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.load(Ordering::Relaxed)
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Claim the next execution index and return the scheduled fault for it,
    /// if any.
    fn check(&self, bundle: &JobBundle) -> Option<QmlError> {
        let index = self.executions.fetch_add(1, Ordering::Relaxed);
        let fault = self.plan.fault_for(index, self.inner.batch_key(bundle));
        if fault.is_some() {
            self.faults_injected.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }
}

impl<B: Backend> Backend for FaultyBackend<B> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn supports_engine(&self, engine: &str) -> bool {
        self.inner.supports_engine(engine)
    }

    fn default_engine(&self) -> &str {
        self.inner.default_engine()
    }

    fn execute(&self, bundle: &JobBundle) -> Result<ExecutionResult> {
        match self.check(bundle) {
            Some(fault) => Err(fault),
            None => self.inner.execute(bundle),
        }
    }

    fn execute_cached(
        &self,
        bundle: &JobBundle,
        cache: &TranspileCache,
    ) -> Result<ExecutionResult> {
        match self.check(bundle) {
            Some(fault) => Err(fault),
            None => self.inner.execute_cached(bundle, cache),
        }
    }

    /// Per-member sequential execution through the (fault-checked) cached
    /// path. The [`Backend`] batch contract guarantees per-member results
    /// are bit-identical to solo execution, so injecting at member
    /// granularity preserves result fidelity while keeping fault indices
    /// aligned with submission order.
    fn execute_batch_timed(
        &self,
        bundles: &[JobBundle],
        cache: &TranspileCache,
    ) -> (Vec<Result<ExecutionResult>>, BatchTimings) {
        let mut results = Vec::with_capacity(bundles.len());
        let mut members = Vec::with_capacity(bundles.len());
        for bundle in bundles {
            let started = Instant::now();
            results.push(self.execute_cached(bundle, cache));
            members.push(started.elapsed());
        }
        let timings = BatchTimings {
            shared: Duration::ZERO,
            members,
            plan_hits: vec![None; bundles.len()],
        };
        (results, timings)
    }

    fn batch_key(&self, bundle: &JobBundle) -> Option<u64> {
        self.inner.batch_key(bundle)
    }

    fn estimate_cost(&self, bundle: &JobBundle) -> f64 {
        self.inner.estimate_cost(bundle)
    }
}

/// [`FaultyBackend::new`] boxed behind an `Arc<dyn Backend>`, the shape the
/// runtime registry takes.
pub fn faulty<B: Backend + 'static>(inner: B, plan: FaultPlan) -> Arc<dyn Backend> {
    Arc::new(FaultyBackend::new(inner, plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateBackend;
    use qml_algorithms::{qaoa_maxcut_program, QaoaSchedule, RING_P1_ANGLES};
    use qml_graph::cycle;
    use qml_types::{ContextDescriptor, ExecConfig};

    fn job() -> JobBundle {
        qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))
            .unwrap()
            .with_context(ContextDescriptor::for_gate(
                ExecConfig::new("gate.aer_simulator")
                    .with_samples(256)
                    .with_seed(7),
            ))
    }

    #[test]
    fn transient_fault_hits_only_scheduled_indices() {
        let backend = FaultyBackend::new(GateBackend::new(), FaultPlan::none().with_fail_nth([1]));
        let bundle = job();
        assert!(backend.execute(&bundle).is_ok());
        let err = backend.execute(&bundle).unwrap_err();
        assert!(err.is_device_fault(), "scheduled index faults: {err}");
        assert!(backend.execute(&bundle).is_ok(), "transient: recovers");
        assert_eq!(backend.executions(), 3);
        assert_eq!(backend.faults_injected(), 1);
    }

    #[test]
    fn permanent_fault_kills_the_device() {
        let backend = FaultyBackend::new(GateBackend::new(), FaultPlan::none().with_fail_from(2));
        let bundle = job();
        assert!(backend.execute(&bundle).is_ok());
        assert!(backend.execute(&bundle).is_ok());
        for _ in 0..3 {
            assert!(backend.execute(&bundle).unwrap_err().is_device_fault());
        }
        assert_eq!(backend.faults_injected(), 3);
    }

    #[test]
    fn plan_key_fault_targets_one_plan_class() {
        let inner = GateBackend::new();
        let bundle = job();
        let key = inner.batch_key(&bundle).expect("gate bundles have keys");
        let backend = FaultyBackend::new(inner, FaultPlan::none().with_fail_plan_key(key));
        assert!(backend.execute(&bundle).unwrap_err().is_device_fault());
    }

    #[test]
    fn non_faulting_path_is_bit_identical_to_inner() {
        let reference = GateBackend::new().execute(&job()).unwrap();
        let backend = FaultyBackend::new(GateBackend::new(), FaultPlan::none());
        let wrapped = backend.execute(&job()).unwrap();
        assert_eq!(wrapped.counts, reference.counts);
        assert_eq!(wrapped.shots, reference.shots);
    }

    #[test]
    fn batch_path_counts_members_in_submission_order() {
        let backend = FaultyBackend::new(GateBackend::new(), FaultPlan::none().with_fail_nth([1]));
        let cache = TranspileCache::new();
        let bundles = vec![job(), job(), job()];
        let (results, timings) = backend.execute_batch_timed(&bundles, &cache);
        assert!(results[0].is_ok());
        assert!(results[1].as_ref().unwrap_err().is_device_fault());
        assert!(results[2].is_ok());
        assert_eq!(timings.members.len(), 3);
    }
}
