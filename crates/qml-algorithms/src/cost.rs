//! Device-independent cost-hint estimators.
//!
//! The paper's algorithmic libraries "could also add metadata such as cost
//! hints (e.g. depth, two-qubit count)" (§4.4). These estimators produce the
//! `cost_hint` each constructor attaches; the ablation bench `ablation_cost_hints`
//! measures how close they come to the transpiled reality.

use qml_types::CostHint;

/// Cost hint for an exact width-`n` QFT template.
///
/// The textbook construction uses n Hadamards, n(n−1)/2 controlled phases and
/// ⌊n/2⌋ swaps; each controlled phase lowers to 2 CX and each swap to 3 CX on
/// hardware, so the two-qubit estimate is `n(n−1) + 3⌊n/2⌋` when swaps are
/// requested. Depth is estimated at roughly `2n + n²/4` after routing slack.
pub fn qft_cost(width: usize, approx_degree: usize, do_swaps: bool) -> CostHint {
    let n = width as u64;
    let full_pairs = n.saturating_sub(1) * n / 2;
    // Approximation drops the smallest rotations: keep pairs with distance
    // ≤ n − 1 − approx_degree.
    let kept_pairs = if approx_degree == 0 {
        full_pairs
    } else {
        let max_distance = (width.saturating_sub(1 + approx_degree)) as u64;
        (1..n).map(|j| j.min(max_distance)).sum()
    };
    let swap_cx = if do_swaps { 3 * (n / 2) } else { 0 };
    let twoq = 2 * kept_pairs + swap_cx;
    let oneq = n + 2 * kept_pairs;
    let depth = 2 * n + kept_pairs / 2;
    CostHint::gates(twoq, depth).with_oneq(oneq)
}

/// Cost hint for one QAOA cost layer (phase separation) over `num_edges`
/// couplings: each ZZ interaction lowers to 2 CX + 1 RZ.
pub fn qaoa_cost_layer_cost(num_edges: usize) -> CostHint {
    let e = num_edges as u64;
    CostHint::gates(2 * e, 3 * e.div_ceil(2).max(1)).with_oneq(e)
}

/// Cost hint for one QAOA mixer layer over `width` qubits: RX on every qubit,
/// no entangling gates.
pub fn qaoa_mixer_cost(width: usize) -> CostHint {
    CostHint::gates(0, 1).with_oneq(width as u64)
}

/// Cost hint for uniform-superposition preparation: one Hadamard per qubit.
pub fn prep_uniform_cost(width: usize) -> CostHint {
    CostHint::gates(0, 1).with_oneq(width as u64)
}

/// Cost hint for a ripple-carry adder over two width-`n` registers
/// (Cuccaro-style: ~2n CX + n Toffolis ≈ 6n CX equivalents each).
pub fn adder_cost(width: usize) -> CostHint {
    let n = width as u64;
    CostHint::gates(8 * n, 10 * n)
        .with_oneq(12 * n)
        .with_ancillas(1)
}

/// Cost hint for a modular adder (roughly five plain adders plus comparisons,
/// the Shor-algorithm primitive the paper names in §4.2).
pub fn modular_adder_cost(width: usize) -> CostHint {
    let base = adder_cost(width);
    CostHint::gates(base.twoq.unwrap_or(0) * 5, base.depth.unwrap_or(0) * 5)
        .with_oneq(base.oneq.unwrap_or(0) * 5)
        .with_ancillas(2)
}

/// Total cost of a descriptor sequence (element-wise sum of the hints that
/// are present; absent hints make the corresponding field unknown).
pub fn total_cost(hints: &[Option<CostHint>]) -> CostHint {
    hints
        .iter()
        .fold(CostHint::gates(0, 0).with_oneq(0), |acc, h| match h {
            Some(h) => acc.saturating_add(h),
            None => acc.saturating_add(&CostHint::unknown()),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qft10_cost_is_near_the_papers_hint() {
        // Listing 3 quotes "roughly 45 two-qubit gates and depth near 100"
        // for the 10-qubit QFT. The paper counts controlled phases as one
        // two-qubit gate each: 10·9/2 = 45.
        let pairs_only = qft_cost(10, 0, false);
        assert_eq!(pairs_only.twoq, Some(90), "2 CX per controlled phase");
        // The descriptor-level count of controlled-phase *operations* is 45.
        assert_eq!(10 * 9 / 2, 45);
        let with_swaps = qft_cost(10, 0, true);
        assert!(with_swaps.twoq.unwrap() > pairs_only.twoq.unwrap());
        assert!(with_swaps.depth.unwrap() >= 20);
    }

    #[test]
    fn approximation_reduces_cost() {
        let exact = qft_cost(10, 0, false);
        let approx = qft_cost(10, 4, false);
        assert!(approx.twoq.unwrap() < exact.twoq.unwrap());
        assert!(approx.oneq.unwrap() < exact.oneq.unwrap());
    }

    #[test]
    fn qaoa_layer_costs() {
        let cost = qaoa_cost_layer_cost(4);
        assert_eq!(cost.twoq, Some(8));
        let mixer = qaoa_mixer_cost(4);
        assert_eq!(mixer.twoq, Some(0));
        assert_eq!(mixer.oneq, Some(4));
        assert_eq!(prep_uniform_cost(4).oneq, Some(4));
    }

    #[test]
    fn arithmetic_costs_scale_linearly() {
        let small = adder_cost(4);
        let large = adder_cost(8);
        assert_eq!(large.twoq.unwrap(), 2 * small.twoq.unwrap());
        assert!(modular_adder_cost(4).twoq.unwrap() > adder_cost(4).twoq.unwrap());
    }

    #[test]
    fn total_cost_adds_and_degrades_gracefully() {
        let total = total_cost(&[
            Some(prep_uniform_cost(4)),
            Some(qaoa_cost_layer_cost(4)),
            Some(qaoa_mixer_cost(4)),
        ]);
        assert_eq!(total.twoq, Some(8));
        assert_eq!(total.oneq, Some(12));

        let with_unknown = total_cost(&[Some(prep_uniform_cost(4)), None]);
        assert_eq!(
            with_unknown.twoq, None,
            "an unknown element makes the sum unknown"
        );
    }

    #[test]
    fn single_qubit_qft_degenerate_case() {
        let cost = qft_cost(1, 0, true);
        assert_eq!(cost.twoq, Some(0));
        assert_eq!(cost.oneq, Some(1));
    }
}
