//! Closed-loop variational driving: a deterministic optimizer for QAOA
//! angles.
//!
//! Variational workloads are *interactive*: each optimizer iteration submits
//! a circuit evaluation, waits for the measured objective, and only then
//! chooses the next angles. That submit → await → re-submit loop is exactly
//! the traffic pattern the service's latency class exists for — one
//! straggling evaluation stalls the whole optimization, so queue wait is on
//! the critical path.
//!
//! [`PatternSearch`] is the driver half of that loop: a derivative-free
//! coordinate pattern search over one QAOA layer's `(γ, β)`. It proposes one
//! angle pair at a time ([`next_angles`](PatternSearch::next_angles)), the
//! caller evaluates it however it likes (typically by submitting a bound
//! bundle to a running [`QmlService`] and awaiting the result) and reports
//! the measured objective back ([`observe`](PatternSearch::observe)).
//!
//! The search is **fully deterministic**: no randomness, no clocks — given
//! the same sequence of observed objective values it proposes the same
//! sequence of angles. That makes closed-loop runs reproducible end to end
//! (seeded simulator + deterministic driver ⇒ bit-identical trajectories,
//! loaded service or idle), which is what the integration tests pin.
//!
//! [`QmlService`]: ../../qml_service/struct.QmlService.html

use crate::qaoa::QaoaAngles;

/// A deterministic derivative-free maximizer over one QAOA layer's
/// `(γ, β)`.
///
/// Classic coordinate pattern search: evaluate the center, then the four
/// axial probes `γ ± step` and `β ± step`. If the best probe improves on the
/// center, the center moves there (same step); otherwise the step halves.
/// The search converges when the step would shrink below `min_step`.
///
/// Drive it as a pull loop:
///
/// ```
/// use qml_algorithms::{PatternSearch, QaoaAngles};
///
/// let mut search = PatternSearch::new(
///     QaoaAngles { gamma: 0.2, beta: 0.8 },
///     0.4,   // initial step (radians)
///     0.05,  // convergence threshold
/// );
/// while let Some(angles) = search.next_angles() {
///     // Submit a bound evaluation and await its measured objective here;
///     // this example uses a synthetic concave stand-in.
///     let value = -(angles.gamma - 0.4f64).powi(2) - (angles.beta - 0.6f64).powi(2);
///     search.observe(value);
/// }
/// let (best, value) = search.best();
/// assert!(search.converged());
/// assert!((best.gamma - 0.4).abs() < 0.1 && (best.beta - 0.6).abs() < 0.1);
/// assert!(value > -0.01);
/// ```
#[derive(Debug, Clone)]
pub struct PatternSearch {
    center: QaoaAngles,
    /// Objective at the center; `None` until the first observation.
    center_value: Option<f64>,
    step: f64,
    min_step: f64,
    /// Axial probes still to evaluate this round, in fixed order.
    pending: Vec<QaoaAngles>,
    /// Best `(angles, value)` among this round's observed probes.
    best_probe: Option<(QaoaAngles, f64)>,
    /// The proposal handed out by `next_angles` and not yet observed.
    outstanding: Option<QaoaAngles>,
    /// Every `(angles, observed value)` in evaluation order.
    trajectory: Vec<(QaoaAngles, f64)>,
    converged: bool,
}

impl PatternSearch {
    /// A search centered on `init`, probing at `step` radians until the step
    /// would fall below `min_step`. Non-positive steps are clamped to a tiny
    /// positive value, and `min_step` is clamped to at most `step` so the
    /// search always evaluates at least one full round.
    pub fn new(init: QaoaAngles, step: f64, min_step: f64) -> Self {
        let step = if step > 0.0 { step } else { f64::EPSILON };
        let min_step = min_step.clamp(f64::EPSILON, step);
        PatternSearch {
            center: init,
            center_value: None,
            step,
            min_step,
            pending: Vec::new(),
            best_probe: None,
            outstanding: None,
            trajectory: Vec::new(),
            converged: false,
        }
    }

    /// The next angles to evaluate, or `None` once the search has converged.
    /// Calling again before [`observe`](PatternSearch::observe) returns the
    /// same proposal — a crashed evaluation can simply be retried.
    pub fn next_angles(&mut self) -> Option<QaoaAngles> {
        if self.converged {
            return None;
        }
        if let Some(angles) = self.outstanding {
            return Some(angles);
        }
        let next = if self.center_value.is_none() {
            self.center
        } else {
            // `refill` keeps `pending` non-empty between rounds until
            // convergence, so an empty list here is unreachable.
            self.pending.remove(0)
        };
        self.outstanding = Some(next);
        Some(next)
    }

    /// Report the measured objective (to **maximize**) for the angles the
    /// last [`next_angles`](PatternSearch::next_angles) proposed.
    ///
    /// # Panics
    ///
    /// Panics when no proposal is outstanding.
    pub fn observe(&mut self, value: f64) {
        let angles = self
            .outstanding
            .take()
            .expect("observe() without a preceding next_angles()");
        self.trajectory.push((angles, value));
        if self.center_value.is_none() {
            self.center_value = Some(value);
            self.refill();
            return;
        }
        if self.best_probe.is_none_or(|(_, best)| value > best) {
            self.best_probe = Some((angles, value));
        }
        if !self.pending.is_empty() {
            return;
        }
        // Round complete: move the center to a strictly improving probe,
        // otherwise halve the step (converging once it falls below the
        // threshold). NaN objectives never improve, so a broken evaluation
        // cannot drag the center off the best point seen.
        let center_value = self.center_value.expect("center observed above");
        match self.best_probe.take() {
            Some((best, value)) if value > center_value => {
                self.center = best;
                self.center_value = Some(value);
            }
            _ => {
                self.step /= 2.0;
                if self.step < self.min_step {
                    self.converged = true;
                    return;
                }
            }
        }
        self.refill();
    }

    /// Queue the four axial probes around the current center.
    fn refill(&mut self) {
        let QaoaAngles { gamma, beta } = self.center;
        let step = self.step;
        self.pending = vec![
            QaoaAngles {
                gamma: gamma + step,
                beta,
            },
            QaoaAngles {
                gamma: gamma - step,
                beta,
            },
            QaoaAngles {
                gamma,
                beta: beta + step,
            },
            QaoaAngles {
                gamma,
                beta: beta - step,
            },
        ];
    }

    /// The best angles seen so far and their objective value (the initial
    /// center with value `-inf` before the first observation).
    pub fn best(&self) -> (QaoaAngles, f64) {
        (self.center, self.center_value.unwrap_or(f64::NEG_INFINITY))
    }

    /// True once the step has shrunk below the convergence threshold.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Evaluations observed so far.
    pub fn evaluations(&self) -> usize {
        self.trajectory.len()
    }

    /// Every `(angles, observed value)` in evaluation order. Two runs fed
    /// identical observations produce identical trajectories.
    pub fn trajectory(&self) -> &[(QaoaAngles, f64)] {
        &self.trajectory
    }

    /// The current probe step, in radians.
    pub fn step(&self) -> f64 {
        self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn concave(angles: QaoaAngles) -> f64 {
        -(angles.gamma - 0.3).powi(2) - (angles.beta - 0.5).powi(2)
    }

    fn run(mut search: PatternSearch) -> PatternSearch {
        while let Some(angles) = search.next_angles() {
            search.observe(concave(angles));
        }
        search
    }

    #[test]
    fn converges_to_the_maximum_of_a_concave_objective() {
        let search = run(PatternSearch::new(
            QaoaAngles {
                gamma: 1.5,
                beta: -0.7,
            },
            0.5,
            1e-3,
        ));
        assert!(search.converged());
        let (best, value) = search.best();
        assert!((best.gamma - 0.3).abs() < 5e-3, "gamma={}", best.gamma);
        assert!((best.beta - 0.5).abs() < 5e-3, "beta={}", best.beta);
        assert!(value > -1e-4);
    }

    #[test]
    fn identical_observations_produce_identical_trajectories() {
        let a = run(PatternSearch::new(
            QaoaAngles {
                gamma: 0.1,
                beta: 0.9,
            },
            0.4,
            1e-2,
        ));
        let b = run(PatternSearch::new(
            QaoaAngles {
                gamma: 0.1,
                beta: 0.9,
            },
            0.4,
            1e-2,
        ));
        assert_eq!(a.evaluations(), b.evaluations());
        for (x, y) in a.trajectory().iter().zip(b.trajectory()) {
            assert_eq!(x.0.gamma.to_bits(), y.0.gamma.to_bits());
            assert_eq!(x.0.beta.to_bits(), y.0.beta.to_bits());
            assert_eq!(x.1.to_bits(), y.1.to_bits());
        }
    }

    #[test]
    fn unobserved_proposals_are_stable_across_repeated_polls() {
        let mut search = PatternSearch::new(
            QaoaAngles {
                gamma: 0.0,
                beta: 0.0,
            },
            0.25,
            1e-2,
        );
        let first = search.next_angles().unwrap();
        let again = search.next_angles().unwrap();
        assert_eq!(first, again, "retryable until observed");
        search.observe(0.0);
        assert_ne!(search.next_angles().unwrap(), first);
    }

    #[test]
    fn a_flat_objective_converges_by_halving_without_moving() {
        let mut search = PatternSearch::new(
            QaoaAngles {
                gamma: 0.2,
                beta: 0.4,
            },
            0.4,
            0.1,
        );
        while let Some(_angles) = search.next_angles() {
            search.observe(1.0);
        }
        let (best, value) = search.best();
        assert_eq!(best.gamma, 0.2);
        assert_eq!(best.beta, 0.4);
        assert_eq!(value, 1.0);
        // Center + 3 rounds of 4 probes (0.4 → 0.2 → 0.1 → below 0.1).
        assert_eq!(search.evaluations(), 13);
    }

    #[test]
    fn nan_observations_never_capture_the_center() {
        let mut search = PatternSearch::new(
            QaoaAngles {
                gamma: 0.2,
                beta: 0.4,
            },
            0.4,
            0.2,
        );
        while let Some(_angles) = search.next_angles() {
            search.observe(f64::NAN);
        }
        assert!(search.converged());
        let (best, _) = search.best();
        assert_eq!((best.gamma, best.beta), (0.2, 0.4), "center never moved");
    }
}
