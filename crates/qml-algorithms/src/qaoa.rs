//! The QAOA algorithmic library (gate path of the paper's §5 / Fig. 2).
//!
//! Given a typed register of Ising decision variables and a problem graph,
//! this library emits the QAOA operator descriptor stack the paper
//! describes: `PREP_UNIFORM`, alternating `ISING_COST_PHASE` (angle γ, with
//! the problem's edges and weights) and `MIXER_RX` (angle β) layers, and a
//! final `MEASUREMENT` carrying an explicit result schema. Angles may be
//! concrete or symbolic (`gamma_0`, `beta_0`, ...) for late binding.

use qml_graph::Graph;
use qml_types::{
    EncodingKind, JobBundle, OperatorDescriptor, ParamValue, QmlError, QuantumDataType, RepKind,
    Result, ResultSchema,
};

use crate::cost::{prep_uniform_cost, qaoa_cost_layer_cost, qaoa_mixer_cost};

/// Angles of one QAOA layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QaoaAngles {
    /// Cost-layer (phase separation) angle γ.
    pub gamma: f64,
    /// Mixer angle β.
    pub beta: f64,
}

/// Known-good single-layer angles for unweighted 2-regular graphs (rings):
/// γ = π/8, β = 3π/8 reach the p = 1 optimum (¾ of the best cut, i.e. an
/// expected cut of 3 on C4) under the backend lowering convention
/// `ISING_COST_PHASE → RZZ(2γw)` and `MIXER_RX → RX(2β)`.
pub const RING_P1_ANGLES: QaoaAngles = QaoaAngles {
    gamma: std::f64::consts::FRAC_PI_8,
    beta: 3.0 * std::f64::consts::FRAC_PI_8,
};

/// How the layer angles are supplied.
#[derive(Debug, Clone, PartialEq)]
pub enum QaoaSchedule {
    /// Concrete angles, one entry per layer.
    Fixed(Vec<QaoaAngles>),
    /// Symbolic angles `gamma_i` / `beta_i`, bound later (late binding).
    Symbolic {
        /// Number of layers p.
        layers: usize,
    },
}

impl QaoaSchedule {
    /// Number of layers.
    pub fn layers(&self) -> usize {
        match self {
            QaoaSchedule::Fixed(angles) => angles.len(),
            QaoaSchedule::Symbolic { layers } => *layers,
        }
    }
}

/// Edge list of a graph as a descriptor parameter value `[[u, v], ...]`.
fn edges_param(graph: &Graph) -> ParamValue {
    ParamValue::List(
        graph
            .edges()
            .iter()
            .map(|&(u, v, _)| ParamValue::List(vec![ParamValue::from(u), ParamValue::from(v)]))
            .collect(),
    )
}

/// Edge weights of a graph as a descriptor parameter value `[w, ...]`
/// (aligned with [`edges_param`]).
fn weights_param(graph: &Graph) -> ParamValue {
    ParamValue::List(
        graph
            .edges()
            .iter()
            .map(|&(_, _, w)| ParamValue::Float(w))
            .collect(),
    )
}

/// The `PREP_UNIFORM` descriptor (Hadamard on every carrier).
pub fn prep_uniform(register: &QuantumDataType) -> Result<OperatorDescriptor> {
    OperatorDescriptor::builder("prep_uniform", RepKind::PrepUniform, &register.id)
        .cost_hint(prep_uniform_cost(register.width))
        .build()
}

/// One `ISING_COST_PHASE` layer with angle `gamma` over the problem graph.
pub fn ising_cost_phase(
    register: &QuantumDataType,
    graph: &Graph,
    gamma: impl Into<ParamValue>,
    layer: usize,
) -> Result<OperatorDescriptor> {
    if graph.num_nodes() != register.width {
        return Err(QmlError::WidthMismatch {
            register: register.id.clone(),
            expected: register.width,
            found: graph.num_nodes(),
        });
    }
    OperatorDescriptor::builder(
        format!("cost_layer_{layer}"),
        RepKind::IsingCostPhase,
        &register.id,
    )
    .param("gamma", gamma)
    .param("edges", edges_param(graph))
    .param("weights", weights_param(graph))
    .cost_hint(qaoa_cost_layer_cost(graph.num_edges()))
    .build()
}

/// One `MIXER_RX` layer with angle `beta`.
pub fn mixer_rx(
    register: &QuantumDataType,
    beta: impl Into<ParamValue>,
    layer: usize,
) -> Result<OperatorDescriptor> {
    OperatorDescriptor::builder(
        format!("mixer_layer_{layer}"),
        RepKind::MixerRx,
        &register.id,
    )
    .param("beta", beta)
    .cost_hint(qaoa_mixer_cost(register.width))
    .build()
}

/// The closing `MEASUREMENT` descriptor with an explicit result schema.
pub fn measurement(register: &QuantumDataType) -> Result<OperatorDescriptor> {
    OperatorDescriptor::builder("measure", RepKind::Measurement, &register.id)
        .result_schema(ResultSchema::for_register(register))
        .build()
}

/// The typed register the paper's §5 uses: `width` Ising decision variables
/// named `s`, id `ising_vars`, measured as Boolean labels.
pub fn ising_register(width: usize) -> Result<QuantumDataType> {
    QuantumDataType::ising_spins("ising_vars", "s", width)
}

/// Build the complete QAOA descriptor sequence for a Max-Cut instance.
pub fn qaoa_sequence(
    register: &QuantumDataType,
    graph: &Graph,
    schedule: &QaoaSchedule,
) -> Result<Vec<OperatorDescriptor>> {
    if register.encoding_kind != EncodingKind::IsingSpin {
        return Err(QmlError::Validation(format!(
            "QAOA for Max-Cut requires an ISING_SPIN register, got {}",
            register.encoding_kind
        )));
    }
    if schedule.layers() == 0 {
        return Err(QmlError::Validation("QAOA needs at least one layer".into()));
    }
    let mut ops = vec![prep_uniform(register)?];
    for layer in 0..schedule.layers() {
        let (gamma, beta): (ParamValue, ParamValue) = match schedule {
            QaoaSchedule::Fixed(angles) => (
                ParamValue::Float(angles[layer].gamma),
                ParamValue::Float(angles[layer].beta),
            ),
            QaoaSchedule::Symbolic { .. } => (
                ParamValue::symbol(format!("gamma_{layer}")),
                ParamValue::symbol(format!("beta_{layer}")),
            ),
        };
        ops.push(ising_cost_phase(register, graph, gamma, layer)?);
        ops.push(mixer_rx(register, beta, layer)?);
    }
    ops.push(measurement(register)?);
    Ok(ops)
}

/// Package a complete QAOA Max-Cut job bundle (intent only; attach a context
/// to target a backend).
pub fn qaoa_maxcut_program(graph: &Graph, schedule: &QaoaSchedule) -> Result<JobBundle> {
    let register = ising_register(graph.num_nodes())?;
    let ops = qaoa_sequence(&register, graph, schedule)?;
    let bundle = JobBundle::new(
        format!("maxcut-qaoa-p{}", schedule.layers()),
        vec![register],
        ops,
    )
    .with_metadata("library", "qml-algorithms::qaoa")
    .with_metadata("problem", "maxcut");
    bundle.validate()?;
    Ok(bundle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qml_graph::cycle;
    use std::collections::BTreeMap;

    #[test]
    fn fig2_descriptor_stack_structure() {
        // The paper's Fig. 2: PREP_UNIFORM, ISING_COST_PHASE(γ, edges,
        // weights), MIXER_RX(β), final MEASUREMENT with result schema.
        let graph = cycle(4);
        let bundle =
            qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap();
        let kinds: Vec<&RepKind> = bundle.operators.iter().map(|o| &o.rep_kind).collect();
        assert_eq!(
            kinds,
            vec![
                &RepKind::PrepUniform,
                &RepKind::IsingCostPhase,
                &RepKind::MixerRx,
                &RepKind::Measurement
            ]
        );
        let register = &bundle.data_types[0];
        assert_eq!(register.id, "ising_vars");
        assert_eq!(register.name, "s");
        assert_eq!(register.width, 4);
        assert_eq!(register.encoding_kind, EncodingKind::IsingSpin);

        let cost = &bundle.operators[1];
        assert_eq!(
            cost.params.get("edges").unwrap().as_list().unwrap().len(),
            4
        );
        assert!((cost.params.require_f64("gamma").unwrap() - RING_P1_ANGLES.gamma).abs() < 1e-12);
        let meas = bundle.operators.last().unwrap();
        assert!(meas.result_schema.is_some());
    }

    #[test]
    fn multi_layer_sequence_length() {
        let graph = cycle(6);
        let schedule = QaoaSchedule::Fixed(vec![RING_P1_ANGLES; 3]);
        let bundle = qaoa_maxcut_program(&graph, &schedule).unwrap();
        // 1 prep + 3 × (cost + mixer) + 1 measurement = 8.
        assert_eq!(bundle.operators.len(), 8);
    }

    #[test]
    fn symbolic_schedule_supports_late_binding() {
        let graph = cycle(4);
        let bundle = qaoa_maxcut_program(&graph, &QaoaSchedule::Symbolic { layers: 2 }).unwrap();
        let mut symbols = bundle.unbound_symbols();
        symbols.sort();
        assert_eq!(symbols, vec!["beta_0", "beta_1", "gamma_0", "gamma_1"]);
        assert!(bundle.ensure_bound().is_err());

        let bindings: BTreeMap<String, ParamValue> = symbols
            .iter()
            .map(|s| (s.clone(), ParamValue::Float(0.3)))
            .collect();
        let bound = bundle.bind(&bindings);
        bound.ensure_bound().unwrap();
        bound.validate().unwrap();
    }

    #[test]
    fn graph_register_width_mismatch_rejected() {
        let register = ising_register(4).unwrap();
        let graph = cycle(6);
        assert!(matches!(
            ising_cost_phase(&register, &graph, 0.1, 0),
            Err(QmlError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn wrong_register_kind_rejected() {
        let register = QuantumDataType::int_register("k", "k", 4).unwrap();
        let graph = cycle(4);
        assert!(qaoa_sequence(
            &register,
            &graph,
            &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])
        )
        .is_err());
    }

    #[test]
    fn zero_layers_rejected() {
        let graph = cycle(4);
        assert!(qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![])).is_err());
    }

    #[test]
    fn bundle_round_trips_through_json() {
        let graph = cycle(4);
        let bundle =
            qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap();
        let json = bundle.to_json().unwrap();
        let back = JobBundle::from_json(&json).unwrap();
        assert_eq!(back, bundle);
        assert!(json.contains("ISING_COST_PHASE"));
        assert!(json.contains("PREP_UNIFORM"));
        assert!(json.contains("MIXER_RX"));
    }

    #[test]
    fn weighted_graphs_carry_their_weights() {
        let graph = qml_graph::Graph::from_weighted_edges(3, &[(0, 1, 2.0), (1, 2, 0.5)]);
        let register = ising_register(3).unwrap();
        let cost = ising_cost_phase(&register, &graph, 0.4, 0).unwrap();
        let weights = cost.params.get("weights").unwrap().as_list().unwrap();
        assert_eq!(weights.len(), 2);
        assert_eq!(weights[0].as_f64(), Some(2.0));
        assert_eq!(weights[1].as_f64(), Some(0.5));
    }

    #[test]
    fn cost_hints_cover_the_whole_stack() {
        let graph = cycle(4);
        let bundle =
            qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap();
        // Every unitary operator carries a hint; only the measurement is free.
        for op in &bundle.operators {
            if op.rep_kind != RepKind::Measurement {
                assert!(op.cost_hint.is_some(), "{} lacks a cost hint", op.name);
            }
        }
    }
}
