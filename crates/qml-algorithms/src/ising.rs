//! The Ising-problem algorithmic library (annealing path of the paper's §5 /
//! Fig. 3).
//!
//! For annealer-style backends the library emits a **single**
//! `ISING_PROBLEM` descriptor declaring the energy
//! `E(s) = Σ_i h_i s_i + Σ_{i<j} J_ij s_i s_j` over the same typed register
//! the gate path uses — only the operator formulation differs, exactly the
//! portability the paper demonstrates.

use qml_graph::{maxcut_to_ising, Graph, IsingProblem};
use qml_types::{
    EncodingKind, JobBundle, OperatorDescriptor, ParamValue, QmlError, QuantumDataType, RepKind,
    Result, ResultSchema,
};

use crate::qaoa::ising_register;

/// Serialize linear fields as a descriptor parameter `[h_0, h_1, ...]`.
fn h_param(h: &[f64]) -> ParamValue {
    ParamValue::List(h.iter().map(|&x| ParamValue::Float(x)).collect())
}

/// Serialize couplings as a descriptor parameter `[[i, j, J_ij], ...]`.
fn j_param(j: &[(usize, usize, f64)]) -> ParamValue {
    ParamValue::List(
        j.iter()
            .map(|&(i, k, w)| {
                ParamValue::List(vec![
                    ParamValue::from(i),
                    ParamValue::from(k),
                    ParamValue::Float(w),
                ])
            })
            .collect(),
    )
}

/// Build the `ISING_PROBLEM` descriptor for an Ising problem over a typed
/// spin register.
pub fn ising_problem_operator(
    register: &QuantumDataType,
    problem: &IsingProblem,
) -> Result<OperatorDescriptor> {
    if register.encoding_kind != EncodingKind::IsingSpin {
        return Err(QmlError::Validation(format!(
            "ISING_PROBLEM requires an ISING_SPIN register, got {}",
            register.encoding_kind
        )));
    }
    if problem.num_spins() != register.width {
        return Err(QmlError::WidthMismatch {
            register: register.id.clone(),
            expected: register.width,
            found: problem.num_spins(),
        });
    }
    for &(i, j, _) in &problem.j {
        if i >= register.width || j >= register.width {
            return Err(QmlError::Validation(format!(
                "coupling ({i},{j}) exceeds register width {}",
                register.width
            )));
        }
    }
    OperatorDescriptor::builder("ising_problem", RepKind::IsingProblem, &register.id)
        .param("h", h_param(&problem.h))
        .param("j", j_param(&problem.j))
        .result_schema(ResultSchema::for_register(register))
        .build()
}

/// Parse the `h` / `j` parameters back out of an `ISING_PROBLEM` descriptor —
/// the inverse of [`ising_problem_operator`], used by annealing backends.
pub fn parse_ising_operator(op: &OperatorDescriptor, width: usize) -> Result<IsingProblem> {
    if op.rep_kind != RepKind::IsingProblem {
        return Err(QmlError::Validation(format!(
            "expected an ISING_PROBLEM descriptor, got {}",
            op.rep_kind
        )));
    }
    let h: Vec<f64> = match op.params.get("h") {
        Some(ParamValue::List(items)) => items
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| QmlError::Validation("non-numeric h entry".into()))
            })
            .collect::<Result<_>>()?,
        _ => vec![0.0; width],
    };
    if h.len() != width {
        return Err(QmlError::Validation(format!(
            "h has {} entries but the register is {} wide",
            h.len(),
            width
        )));
    }
    let j: Vec<(usize, usize, f64)> = match op.params.get("j") {
        Some(ParamValue::List(items)) => items
            .iter()
            .map(|entry| {
                let triple = entry
                    .as_list()
                    .ok_or_else(|| QmlError::Validation("malformed coupling entry".into()))?;
                if triple.len() != 3 {
                    return Err(QmlError::Validation(
                        "coupling entry must be [i, j, J]".into(),
                    ));
                }
                let i = triple[0]
                    .as_u64()
                    .ok_or_else(|| QmlError::Validation("bad coupling index".into()))?
                    as usize;
                let k = triple[1]
                    .as_u64()
                    .ok_or_else(|| QmlError::Validation("bad coupling index".into()))?
                    as usize;
                let w = triple[2]
                    .as_f64()
                    .ok_or_else(|| QmlError::Validation("bad coupling weight".into()))?;
                if i >= width || k >= width {
                    return Err(QmlError::Validation(format!(
                        "coupling ({i},{k}) exceeds register width {width}"
                    )));
                }
                Ok((i, k, w))
            })
            .collect::<Result<_>>()?,
        _ => Vec::new(),
    };
    Ok(IsingProblem { h, j })
}

/// Package the complete Max-Cut annealing job bundle of the paper's Fig. 3:
/// the same `ising_vars` register as the gate path, a single `ISING_PROBLEM`
/// descriptor with h = 0 and J carrying the edge weights.
pub fn maxcut_ising_program(graph: &Graph) -> Result<JobBundle> {
    let register = ising_register(graph.num_nodes())?;
    let problem = maxcut_to_ising(graph);
    let op = ising_problem_operator(&register, &problem)?;
    let bundle = JobBundle::new("maxcut-ising", vec![register], vec![op])
        .with_metadata("library", "qml-algorithms::ising")
        .with_metadata("problem", "maxcut");
    bundle.validate()?;
    Ok(bundle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qml_graph::cycle;

    #[test]
    fn fig3_single_descriptor_with_h_zero_and_unit_couplings() {
        let graph = cycle(4);
        let bundle = maxcut_ising_program(&graph).unwrap();
        assert_eq!(
            bundle.operators.len(),
            1,
            "the annealing path emits a single descriptor"
        );
        let op = &bundle.operators[0];
        assert_eq!(op.rep_kind, RepKind::IsingProblem);
        assert_eq!(op.domain_qdt, "ising_vars");

        let problem = parse_ising_operator(op, 4).unwrap();
        assert_eq!(problem.h, vec![0.0; 4], "h is the zero vector");
        assert_eq!(problem.j.len(), 4, "unit couplings on the four ring edges");
        assert!(problem.j.iter().all(|&(_, _, w)| w == 1.0));
    }

    #[test]
    fn both_paths_share_the_same_register() {
        // The portability claim: the QAOA bundle and the Ising bundle declare
        // bit-identical quantum data types.
        let graph = cycle(4);
        let gate = crate::qaoa::qaoa_maxcut_program(
            &graph,
            &crate::qaoa::QaoaSchedule::Fixed(vec![crate::qaoa::RING_P1_ANGLES]),
        )
        .unwrap();
        let anneal = maxcut_ising_program(&graph).unwrap();
        assert_eq!(gate.data_types, anneal.data_types);
    }

    #[test]
    fn operator_round_trips_through_parse() {
        let graph =
            qml_graph::Graph::from_weighted_edges(5, &[(0, 1, 1.5), (2, 4, -0.5), (1, 3, 2.0)]);
        let register = ising_register(5).unwrap();
        let problem = maxcut_to_ising(&graph);
        let op = ising_problem_operator(&register, &problem).unwrap();
        let parsed = parse_ising_operator(&op, 5).unwrap();
        assert_eq!(parsed.h, problem.h);
        assert_eq!(parsed.j, problem.j);
    }

    #[test]
    fn json_round_trip_preserves_couplings() {
        let bundle = maxcut_ising_program(&cycle(4)).unwrap();
        let json = bundle.to_json().unwrap();
        assert!(json.contains("ISING_PROBLEM"));
        let back = JobBundle::from_json(&json).unwrap();
        let parsed = parse_ising_operator(&back.operators[0], 4).unwrap();
        assert_eq!(parsed.j.len(), 4);
    }

    #[test]
    fn width_mismatch_rejected() {
        let register = ising_register(3).unwrap();
        let problem = maxcut_to_ising(&cycle(4));
        assert!(matches!(
            ising_problem_operator(&register, &problem),
            Err(QmlError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn wrong_register_kind_rejected() {
        let register = QuantumDataType::int_register("k", "k", 4).unwrap();
        let problem = maxcut_to_ising(&cycle(4));
        assert!(ising_problem_operator(&register, &problem).is_err());
    }

    #[test]
    fn parse_rejects_malformed_params() {
        let register = ising_register(4).unwrap();
        let problem = maxcut_to_ising(&cycle(4));
        let mut op = ising_problem_operator(&register, &problem).unwrap();
        op.params
            .insert("j", ParamValue::List(vec![ParamValue::Int(3)]));
        assert!(parse_ising_operator(&op, 4).is_err());

        let mut bad_h = ising_problem_operator(&register, &problem).unwrap();
        bad_h
            .params
            .insert("h", ParamValue::List(vec![ParamValue::Float(0.0); 2]));
        assert!(parse_ising_operator(&bad_h, 4).is_err());
    }

    #[test]
    fn parse_rejects_wrong_kind() {
        let register = ising_register(4).unwrap();
        let prep = crate::qaoa::prep_uniform(&register).unwrap();
        assert!(parse_ising_operator(&prep, 4).is_err());
    }
}
