//! Arithmetic operator descriptors: adders, modular adders, comparators.
//!
//! The paper's §4.4 lists arithmetic (addition, modular multiplication and
//! exponentiation, comparison) among the transformations an algorithmic
//! library provides, and §4.2 singles out the modular adder as "a main
//! component of the Shor algorithm". These constructors emit the
//! corresponding typed operator descriptors with cost hints; backends that
//! cannot realize them reject the bundle instead of silently guessing.

use qml_types::{EncodingKind, OperatorDescriptor, QmlError, QuantumDataType, RepKind, Result};

use crate::cost::{adder_cost, modular_adder_cost};

/// Require an integer-like register for arithmetic.
fn require_integer(register: &QuantumDataType, what: &str) -> Result<()> {
    match register.encoding_kind {
        EncodingKind::IntRegister | EncodingKind::SignedIntRegister => Ok(()),
        other => Err(QmlError::Validation(format!(
            "{what} requires an integer register, got {other} for `{}`",
            register.id
        ))),
    }
}

/// In-place addition `b ← a + b` over two equally wide integer registers.
pub fn adder(a: &QuantumDataType, b: &QuantumDataType) -> Result<OperatorDescriptor> {
    require_integer(a, "adder")?;
    require_integer(b, "adder")?;
    if a.width != b.width {
        return Err(QmlError::WidthMismatch {
            register: b.id.clone(),
            expected: a.width,
            found: b.width,
        });
    }
    OperatorDescriptor::builder("add", RepKind::AdderTemplate, &a.id)
        .codomain(&b.id)
        .param("width", a.width)
        .cost_hint(adder_cost(a.width))
        .build()
}

/// In-place constant addition `reg ← reg + constant (mod 2^width)`.
pub fn constant_adder(register: &QuantumDataType, constant: u64) -> Result<OperatorDescriptor> {
    require_integer(register, "constant adder")?;
    if register.width < 64 && constant >= (1u64 << register.width) {
        return Err(QmlError::Validation(format!(
            "constant {constant} does not fit in {} bits",
            register.width
        )));
    }
    OperatorDescriptor::builder("add_const", RepKind::AdderTemplate, &register.id)
        .param("constant", constant as i64)
        .param("width", register.width)
        .cost_hint(adder_cost(register.width))
        .build()
}

/// Modular addition `reg ← reg + constant (mod modulus)` — the Shor-algorithm
/// primitive the paper names in §4.2.
pub fn modular_adder(
    register: &QuantumDataType,
    constant: u64,
    modulus: u64,
) -> Result<OperatorDescriptor> {
    require_integer(register, "modular adder")?;
    if modulus < 2 {
        return Err(QmlError::Validation("modulus must be at least 2".into()));
    }
    if register.width < 64 && modulus > (1u64 << register.width) {
        return Err(QmlError::Validation(format!(
            "modulus {modulus} does not fit in {} bits",
            register.width
        )));
    }
    if constant >= modulus {
        return Err(QmlError::Validation(format!(
            "constant {constant} must be reduced modulo {modulus}"
        )));
    }
    OperatorDescriptor::builder("add_mod", RepKind::ModularAdderTemplate, &register.id)
        .param("constant", constant as i64)
        .param("modulus", modulus as i64)
        .param("width", register.width)
        .cost_hint(modular_adder_cost(register.width))
        .build()
}

/// Comparison of an integer register against a constant, writing the result
/// into a one-bit Boolean flag register.
pub fn comparator(
    register: &QuantumDataType,
    flag: &QuantumDataType,
    threshold: u64,
) -> Result<OperatorDescriptor> {
    require_integer(register, "comparator")?;
    if flag.encoding_kind != EncodingKind::BoolRegister || flag.width != 1 {
        return Err(QmlError::Validation(format!(
            "comparator flag `{}` must be a 1-bit Boolean register",
            flag.id
        )));
    }
    OperatorDescriptor::builder("compare_ge", RepKind::ComparatorTemplate, &register.id)
        .codomain(&flag.id)
        .param("threshold", threshold as i64)
        .cost_hint(adder_cost(register.width).with_ancillas(1))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_reg(id: &str, width: usize) -> QuantumDataType {
        QuantumDataType::int_register(id, id, width).unwrap()
    }

    #[test]
    fn adder_descriptor_structure() {
        let a = int_reg("a", 6);
        let b = int_reg("b", 6);
        let op = adder(&a, &b).unwrap();
        assert_eq!(op.rep_kind, RepKind::AdderTemplate);
        assert_eq!(op.domain_qdt, "a");
        assert_eq!(op.codomain_qdt, "b");
        assert!(!op.is_in_place());
        assert!(op.cost_hint.unwrap().twoq.unwrap() > 0);
    }

    #[test]
    fn adder_width_mismatch_rejected() {
        let a = int_reg("a", 6);
        let b = int_reg("b", 4);
        assert!(matches!(adder(&a, &b), Err(QmlError::WidthMismatch { .. })));
    }

    #[test]
    fn adder_requires_integer_registers() {
        let a = int_reg("a", 4);
        let s = QuantumDataType::ising_spins("s", "s", 4).unwrap();
        assert!(adder(&a, &s).is_err());
        assert!(adder(&s, &a).is_err());
    }

    #[test]
    fn constant_adder_range_check() {
        let reg = int_reg("x", 4);
        assert!(constant_adder(&reg, 15).is_ok());
        assert!(constant_adder(&reg, 16).is_err());
    }

    #[test]
    fn modular_adder_validation() {
        let reg = int_reg("x", 5);
        let op = modular_adder(&reg, 7, 21).unwrap();
        assert_eq!(op.rep_kind, RepKind::ModularAdderTemplate);
        assert_eq!(op.params.require_u64("modulus").unwrap(), 21);
        assert!(
            modular_adder(&reg, 25, 21).is_err(),
            "constant must be reduced"
        );
        assert!(modular_adder(&reg, 1, 1).is_err(), "modulus ≥ 2");
        assert!(
            modular_adder(&reg, 1, 64).is_err(),
            "modulus must fit the register"
        );
    }

    #[test]
    fn modular_adder_costs_more_than_plain_adder() {
        let reg = int_reg("x", 8);
        let plain = constant_adder(&reg, 3).unwrap();
        let modular = modular_adder(&reg, 3, 200).unwrap();
        assert!(modular.cost_hint.unwrap().twoq.unwrap() > plain.cost_hint.unwrap().twoq.unwrap());
    }

    #[test]
    fn comparator_needs_boolean_flag() {
        let reg = int_reg("x", 4);
        let flag = QuantumDataType::bool_register("flag", "f", 1).unwrap();
        let wide_flag = QuantumDataType::bool_register("wide", "w", 2).unwrap();
        assert!(comparator(&reg, &flag, 7).is_ok());
        assert!(comparator(&reg, &wide_flag, 7).is_err());
        assert!(comparator(&reg, &reg, 7).is_err());
    }
}
