//! The QFT algorithmic library: typed data in, operator descriptors out.
//!
//! This is the middle-layer counterpart of the paper's motivational example
//! (§2): instead of building a Qiskit circuit, the library consumes a typed
//! phase register and emits a `QFT_TEMPLATE` operator descriptor (Listing 3)
//! plus an explicit measurement, leaving realization to whichever backend the
//! context later selects.

use qml_types::{
    EncodingKind, JobBundle, OperatorDescriptor, QmlError, QuantumDataType, RepKind, Result,
    ResultSchema,
};

use crate::cost::qft_cost;

/// Parameters of a QFT request (the `params` block of Listing 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QftParams {
    /// 0 requests the exact transform; larger values drop the
    /// smallest-angle controlled rotations.
    pub approx_degree: usize,
    /// Apply the final wire-reversal swaps.
    pub do_swaps: bool,
    /// Build the inverse transform.
    pub inverse: bool,
}

impl Default for QftParams {
    fn default() -> Self {
        QftParams {
            approx_degree: 0,
            do_swaps: true,
            inverse: false,
        }
    }
}

/// Build the `QFT_TEMPLATE` operator descriptor for a typed register.
///
/// The register must be a `PHASE_REGISTER` or an `INT_REGISTER` — applying a
/// Fourier transform to, say, Ising decision variables is a type error the
/// library catches before anything reaches a backend.
pub fn qft_operator(register: &QuantumDataType, params: QftParams) -> Result<OperatorDescriptor> {
    if !matches!(
        register.encoding_kind,
        EncodingKind::PhaseRegister | EncodingKind::IntRegister | EncodingKind::SignedIntRegister
    ) {
        return Err(QmlError::Validation(format!(
            "QFT requires a phase or integer register, got {} for `{}`",
            register.encoding_kind, register.id
        )));
    }
    if params.approx_degree >= register.width {
        return Err(QmlError::Validation(format!(
            "approx_degree {} must be smaller than the register width {}",
            params.approx_degree, register.width
        )));
    }
    OperatorDescriptor::builder(
        if params.inverse { "IQFT" } else { "QFT" },
        RepKind::QftTemplate,
        &register.id,
    )
    .param("approx_degree", params.approx_degree)
    .param("do_swaps", params.do_swaps)
    .param("inverse", params.inverse)
    .cost_hint(qft_cost(
        register.width,
        params.approx_degree,
        params.do_swaps,
    ))
    .result_schema(ResultSchema::for_register(register))
    .build()
}

/// The explicit measurement descriptor that closes a QFT program.
pub fn qft_measurement(register: &QuantumDataType) -> Result<OperatorDescriptor> {
    OperatorDescriptor::builder("measure", RepKind::Measurement, &register.id)
        .result_schema(ResultSchema::for_register(register))
        .build()
}

/// A complete QFT program: the paper's Listing 1 use case re-expressed as
/// middle-layer intent — a typed phase register, the QFT template, and an
/// explicit measurement — packaged as an (uncontextualized) job bundle.
pub fn qft_program(width: usize, params: QftParams) -> Result<JobBundle> {
    let register = QuantumDataType::phase_register("reg_phase", "phase", width)?;
    let ops = vec![
        qft_operator(&register, params)?,
        qft_measurement(&register)?,
    ];
    let bundle = JobBundle::new(format!("qft-{width}"), vec![register], ops)
        .with_metadata("library", "qml-algorithms::qft");
    bundle.validate()?;
    Ok(bundle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qml_types::MeasurementSemantics;

    #[test]
    fn listing3_descriptor_matches_library_output() {
        let register = QuantumDataType::phase_register("reg_phase", "phase", 10).unwrap();
        let qod = qft_operator(&register, QftParams::default()).unwrap();
        assert_eq!(qod.name, "QFT");
        assert_eq!(qod.rep_kind, RepKind::QftTemplate);
        assert_eq!(qod.domain_qdt, "reg_phase");
        assert_eq!(qod.codomain_qdt, "reg_phase");
        assert_eq!(qod.params.require_u64("approx_degree").unwrap(), 0);
        assert!(qod.params.bool_or("do_swaps", false));
        assert!(!qod.params.bool_or("inverse", true));
        let schema = qod.result_schema.as_ref().unwrap();
        assert_eq!(schema.datatype, MeasurementSemantics::AsPhase);
        assert_eq!(schema.clbit_order.len(), 10);
        assert!(qod.cost_hint.unwrap().twoq.unwrap() > 0);
    }

    #[test]
    fn qft_program_bundle_validates() {
        let bundle = qft_program(10, QftParams::default()).unwrap();
        assert_eq!(bundle.data_types.len(), 1);
        assert_eq!(bundle.operators.len(), 2);
        assert_eq!(bundle.total_width(), 10);
        // Round-trip through the JSON interchange form.
        let json = bundle.to_json().unwrap();
        let back = JobBundle::from_json(&json).unwrap();
        assert_eq!(back, bundle);
    }

    #[test]
    fn inverse_qft_is_named_iqft() {
        let register = QuantumDataType::phase_register("p", "p", 4).unwrap();
        let qod = qft_operator(
            &register,
            QftParams {
                inverse: true,
                ..QftParams::default()
            },
        )
        .unwrap();
        assert_eq!(qod.name, "IQFT");
        assert!(qod.params.bool_or("inverse", false));
    }

    #[test]
    fn wrong_register_kind_rejected() {
        let spins = QuantumDataType::ising_spins("ising_vars", "s", 4).unwrap();
        assert!(qft_operator(&spins, QftParams::default()).is_err());
        let bools = QuantumDataType::bool_register("flags", "f", 4).unwrap();
        assert!(qft_operator(&bools, QftParams::default()).is_err());
    }

    #[test]
    fn int_register_is_accepted() {
        let ints = QuantumDataType::int_register("k", "k", 6).unwrap();
        let qod = qft_operator(&ints, QftParams::default()).unwrap();
        assert_eq!(
            qod.result_schema.unwrap().datatype,
            MeasurementSemantics::AsInt
        );
    }

    #[test]
    fn excessive_approximation_rejected() {
        let register = QuantumDataType::phase_register("p", "p", 4).unwrap();
        let params = QftParams {
            approx_degree: 4,
            ..QftParams::default()
        };
        assert!(qft_operator(&register, params).is_err());
    }

    #[test]
    fn approximation_lowers_the_cost_hint() {
        let register = QuantumDataType::phase_register("p", "p", 8).unwrap();
        let exact = qft_operator(&register, QftParams::default()).unwrap();
        let approx = qft_operator(
            &register,
            QftParams {
                approx_degree: 3,
                ..QftParams::default()
            },
        )
        .unwrap();
        assert!(approx.cost_hint.unwrap().twoq.unwrap() < exact.cost_hint.unwrap().twoq.unwrap());
    }
}
