//! # qml-algorithms — algorithmic libraries emitting operator descriptors
//!
//! The paper's §4.4: "reusable collections of logical transformations that
//! act on typed quantum data ... expose these transformations as Quantum
//! Operator Descriptors and remain agnostic to hardware." Every constructor
//! here consumes [`qml_types::QuantumDataType`]s and produces validated
//! [`qml_types::OperatorDescriptor`]s — never gates, pulses or circuits.
//!
//! * [`qft`] — the `QFT_TEMPLATE` library (Listing 3 / the Listing 1 use case).
//! * [`qaoa`] — the QAOA descriptor stack of Fig. 2 (`PREP_UNIFORM`,
//!   `ISING_COST_PHASE`, `MIXER_RX`, `MEASUREMENT`), with late-bound angles.
//! * [`ising`] — the single `ISING_PROBLEM` descriptor of Fig. 3.
//! * [`arithmetic`] — adders, modular adders (the Shor primitive), comparators.
//! * [`stateprep`] — Hadamard layers, amplitude and angle encodings.
//! * [`composition`] — composition, inversion, measurement and sequence
//!   validation helpers.
//! * [`cost`] — device-independent cost-hint estimators.
//! * [`closed_loop`] — a deterministic pattern-search driver for closed-loop
//!   variational workloads (submit an evaluation, await the objective,
//!   propose the next angles).

#![warn(missing_docs)]
#![warn(clippy::print_stdout, clippy::print_stderr)]
#![forbid(unsafe_code)]

pub mod arithmetic;
pub mod closed_loop;
pub mod composition;
pub mod cost;
pub mod ising;
pub mod qaoa;
pub mod qft;
pub mod stateprep;

pub use arithmetic::{adder, comparator, constant_adder, modular_adder};
pub use closed_loop::PatternSearch;
pub use composition::{
    compose, invert_operator, invert_sequence, validate_sequence, with_measurement,
};
pub use cost::{qaoa_cost_layer_cost, qaoa_mixer_cost, qft_cost, total_cost};
pub use ising::{ising_problem_operator, maxcut_ising_program, parse_ising_operator};
pub use qaoa::{
    ising_register, qaoa_maxcut_program, qaoa_sequence, QaoaAngles, QaoaSchedule, RING_P1_ANGLES,
};
pub use qft::{qft_program, QftParams};
pub use stateprep::{amplitude_encoding, angle_encoding, hadamard_layer};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use qml_graph::random_gnp;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Every QAOA bundle the library emits is valid, JSON-round-trips, and
        /// has the expected operator count.
        #[test]
        fn qaoa_bundles_always_validate(n in 3usize..8, p in 0.3f64..0.9, seed in 0u64..50, layers in 1usize..4) {
            let graph = random_gnp(n, p, seed);
            prop_assume!(!graph.is_empty());
            let schedule = QaoaSchedule::Fixed(vec![RING_P1_ANGLES; layers]);
            let bundle = qaoa_maxcut_program(&graph, &schedule).unwrap();
            prop_assert_eq!(bundle.operators.len(), 2 + 2 * layers);
            let back = qml_types::JobBundle::from_json(&bundle.to_json().unwrap()).unwrap();
            prop_assert_eq!(back, bundle);
        }

        /// Ising bundles round-trip and parse back to the original (h, J).
        #[test]
        fn ising_bundles_round_trip(n in 3usize..8, p in 0.3f64..0.9, seed in 0u64..50) {
            let graph = random_gnp(n, p, seed);
            prop_assume!(!graph.is_empty());
            let bundle = maxcut_ising_program(&graph).unwrap();
            let parsed = parse_ising_operator(&bundle.operators[0], n).unwrap();
            prop_assert_eq!(parsed.j.len(), graph.num_edges());
            prop_assert_eq!(parsed.h, vec![0.0; n]);
        }

        /// QFT cost hints are monotone in width and decrease with approximation.
        #[test]
        fn qft_cost_monotonicity(width in 2usize..14, approx in 0usize..4) {
            prop_assume!(approx < width);
            let base = qft_cost(width, 0, true);
            let wider = qft_cost(width + 1, 0, true);
            let approximated = qft_cost(width, approx, true);
            prop_assert!(wider.twoq.unwrap() > base.twoq.unwrap());
            prop_assert!(approximated.twoq.unwrap() <= base.twoq.unwrap());
        }
    }
}
