//! Composition and inversion helpers for operator descriptor sequences.
//!
//! The paper's algorithmic libraries provide "APIs for the construction of
//! quantum operator descriptions, helpers for their composition and
//! inversion, support for late-binding, and result-schema helpers" plus
//! validation ("quantum data types compatibility check, and non-interference
//! rules") (§4.4). Bundle-level validation lives in
//! [`qml_types::JobBundle::validate`]; this module adds sequence-level
//! helpers the libraries use before packaging.

use qml_types::{
    OperatorDescriptor, ParamValue, QmlError, QuantumDataType, RepKind, Result, ResultSchema,
};

/// Concatenate descriptor sequences (intent composition is just ordered
/// concatenation — the paper: "Composition is just a list of descriptors").
pub fn compose(sequences: &[&[OperatorDescriptor]]) -> Vec<OperatorDescriptor> {
    sequences.iter().flat_map(|s| s.iter().cloned()).collect()
}

/// Invert a single operator descriptor, if the representation kind has a
/// well-defined inverse at the logical level.
pub fn invert_operator(op: &OperatorDescriptor) -> Result<OperatorDescriptor> {
    match op.rep_kind {
        RepKind::QftTemplate => {
            let mut inverted = op.clone();
            let currently_inverse = op.params.bool_or("inverse", false);
            inverted.params.insert("inverse", !currently_inverse);
            inverted.name = if currently_inverse {
                "QFT".into()
            } else {
                "IQFT".into()
            };
            Ok(inverted)
        }
        RepKind::IsingCostPhase | RepKind::MixerRx | RepKind::ControlledPhase => {
            let key = match op.rep_kind {
                RepKind::IsingCostPhase => "gamma",
                RepKind::MixerRx => "beta",
                _ => "lambda",
            };
            let mut inverted = op.clone();
            match op.params.get(key) {
                Some(ParamValue::Float(angle)) => {
                    inverted.params.insert(key, ParamValue::Float(-angle));
                    Ok(inverted)
                }
                Some(ParamValue::Symbol(s)) => Err(QmlError::UnboundParameter(s.name.clone())),
                _ => Err(QmlError::Validation(format!(
                    "operator `{}` has no numeric `{key}` to invert",
                    op.name
                ))),
            }
        }
        RepKind::HadamardLayer | RepKind::PrepUniform => Ok(op.clone()),
        RepKind::AdderTemplate => {
            let mut inverted = op.clone();
            if let Some(c) = op.params.get("constant").and_then(ParamValue::as_i64) {
                inverted.params.insert("constant", -c);
            }
            inverted.name = format!("{}_inverse", op.name);
            Ok(inverted)
        }
        RepKind::Measurement | RepKind::IsingProblem => Err(QmlError::Unsupported(format!(
            "operator `{}` ({}) has no inverse",
            op.name, op.rep_kind
        ))),
        _ => Err(QmlError::Unsupported(format!(
            "no inversion rule for representation kind {}",
            op.rep_kind
        ))),
    }
}

/// Invert a whole unitary descriptor sequence: reverse the order and invert
/// each element. Fails if any element is not invertible.
pub fn invert_sequence(ops: &[OperatorDescriptor]) -> Result<Vec<OperatorDescriptor>> {
    ops.iter().rev().map(invert_operator).collect()
}

/// Append an explicit measurement of `register` to a sequence (result-schema
/// helper).
pub fn with_measurement(
    mut ops: Vec<OperatorDescriptor>,
    register: &QuantumDataType,
) -> Result<Vec<OperatorDescriptor>> {
    let meas = OperatorDescriptor::builder("measure", RepKind::Measurement, &register.id)
        .result_schema(ResultSchema::for_register(register))
        .build()?;
    ops.push(meas);
    Ok(ops)
}

/// Sequence-level validation: every operator must act on one of the declared
/// registers, and no operator may follow a measurement of the register it
/// touches (the non-interference rule), mirroring bundle validation for
/// not-yet-packaged sequences.
pub fn validate_sequence(registers: &[QuantumDataType], ops: &[OperatorDescriptor]) -> Result<()> {
    let mut measured: Vec<&str> = Vec::new();
    for op in ops {
        op.validate()?;
        for touched in [op.domain_qdt.as_str(), op.codomain_qdt.as_str()] {
            let register = registers
                .iter()
                .find(|r| r.id == touched)
                .ok_or_else(|| QmlError::UnknownRegister(touched.to_string()))?;
            if let Some(schema) = &op.result_schema {
                if op.codomain_qdt == register.id {
                    schema.validate_against(register)?;
                }
            }
            if measured.contains(&touched) {
                return Err(QmlError::Validation(format!(
                    "operator `{}` acts on `{touched}` after it was measured (non-interference)",
                    op.name
                )));
            }
        }
        if op.rep_kind.is_measurement() {
            measured.push(op.codomain_qdt.as_str());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qaoa::{
        ising_register, mixer_rx, prep_uniform, qaoa_sequence, QaoaSchedule, RING_P1_ANGLES,
    };
    use crate::qft::{qft_operator, QftParams};
    use qml_graph::cycle;
    use qml_types::QuantumDataType;

    #[test]
    fn compose_concatenates_in_order() {
        let reg = ising_register(4).unwrap();
        let a = vec![prep_uniform(&reg).unwrap()];
        let b = vec![mixer_rx(&reg, 0.3, 0).unwrap()];
        let composed = compose(&[&a, &b]);
        assert_eq!(composed.len(), 2);
        assert_eq!(composed[0].rep_kind, RepKind::PrepUniform);
        assert_eq!(composed[1].rep_kind, RepKind::MixerRx);
    }

    #[test]
    fn qft_inversion_flips_the_flag_and_name() {
        let reg = QuantumDataType::phase_register("p", "p", 6).unwrap();
        let qft = qft_operator(&reg, QftParams::default()).unwrap();
        let iqft = invert_operator(&qft).unwrap();
        assert!(iqft.params.bool_or("inverse", false));
        assert_eq!(iqft.name, "IQFT");
        let back = invert_operator(&iqft).unwrap();
        assert!(!back.params.bool_or("inverse", true));
        assert_eq!(back.name, "QFT");
    }

    #[test]
    fn angle_operators_negate_their_angles() {
        let reg = ising_register(4).unwrap();
        let mixer = mixer_rx(&reg, 0.7, 0).unwrap();
        let inv = invert_operator(&mixer).unwrap();
        assert!((inv.params.require_f64("beta").unwrap() + 0.7).abs() < 1e-12);
    }

    #[test]
    fn symbolic_angles_cannot_be_inverted_yet() {
        let reg = ising_register(4).unwrap();
        let mixer = mixer_rx(&reg, ParamValue::symbol("beta_0"), 0).unwrap();
        assert!(matches!(
            invert_operator(&mixer),
            Err(QmlError::UnboundParameter(_))
        ));
    }

    #[test]
    fn measurement_has_no_inverse() {
        let reg = ising_register(4).unwrap();
        let meas = crate::qaoa::measurement(&reg).unwrap();
        assert!(invert_operator(&meas).is_err());
    }

    #[test]
    fn sequence_inversion_reverses_order() {
        let reg = ising_register(4).unwrap();
        let graph = cycle(4);
        let seq = vec![
            prep_uniform(&reg).unwrap(),
            crate::qaoa::ising_cost_phase(&reg, &graph, 0.4, 0).unwrap(),
            mixer_rx(&reg, 0.2, 0).unwrap(),
        ];
        let inv = invert_sequence(&seq).unwrap();
        assert_eq!(inv.len(), 3);
        assert_eq!(inv[0].rep_kind, RepKind::MixerRx);
        assert_eq!(inv[2].rep_kind, RepKind::PrepUniform);
        assert!((inv[0].params.require_f64("beta").unwrap() + 0.2).abs() < 1e-12);
    }

    #[test]
    fn with_measurement_appends_schema() {
        let reg = ising_register(4).unwrap();
        let ops = with_measurement(vec![prep_uniform(&reg).unwrap()], &reg).unwrap();
        assert_eq!(ops.len(), 2);
        assert!(ops[1].result_schema.is_some());
    }

    #[test]
    fn validate_sequence_checks_registers_and_interference() {
        let reg = ising_register(4).unwrap();
        let graph = cycle(4);
        let good = qaoa_sequence(&reg, &graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap();
        validate_sequence(std::slice::from_ref(&reg), &good).unwrap();

        // Unknown register.
        let other = ising_register(4).unwrap();
        let mut renamed = other.clone();
        renamed.id = "other".into();
        assert!(matches!(
            validate_sequence(&[renamed], &good),
            Err(QmlError::UnknownRegister(_))
        ));

        // Operation after measurement.
        let mut bad = good.clone();
        bad.push(prep_uniform(&reg).unwrap());
        let err = validate_sequence(&[reg], &bad).unwrap_err();
        assert!(err.to_string().contains("non-interference"));
    }
}
