//! State-preparation operator descriptors.
//!
//! The paper's §4.4 lists "quantum state preparation (Hadamard gates,
//! amplitude encoding, angle encoding)" among the algorithmic-library
//! transformations. These constructors emit the corresponding descriptors,
//! validating the classical data against the typed register before anything
//! is handed to a backend.

use qml_types::{
    CostHint, EncodingKind, OperatorDescriptor, ParamValue, QmlError, QuantumDataType, RepKind,
    Result,
};

/// A bare Hadamard layer on every carrier of the register.
pub fn hadamard_layer(register: &QuantumDataType) -> Result<OperatorDescriptor> {
    OperatorDescriptor::builder("hadamard_layer", RepKind::HadamardLayer, &register.id)
        .cost_hint(CostHint::gates(0, 1).with_oneq(register.width as u64))
        .build()
}

/// Amplitude encoding of a real vector of length 2^width (normalized by the
/// backend at realization time).
pub fn amplitude_encoding(
    register: &QuantumDataType,
    amplitudes: &[f64],
) -> Result<OperatorDescriptor> {
    let expected = 1usize << register.width;
    if amplitudes.len() != expected {
        return Err(QmlError::Validation(format!(
            "amplitude encoding for a {}-carrier register needs {expected} amplitudes, got {}",
            register.width,
            amplitudes.len()
        )));
    }
    let norm: f64 = amplitudes.iter().map(|a| a * a).sum();
    if norm <= 0.0 {
        return Err(QmlError::Validation(
            "amplitude vector must not be identically zero".into(),
        ));
    }
    // Generic state preparation costs O(2^n) CX gates.
    let twoq = (expected.saturating_sub(register.width)) as u64 * 2;
    OperatorDescriptor::builder("amplitude_encode", RepKind::AmplitudeEncoding, &register.id)
        .param(
            "amplitudes",
            ParamValue::List(amplitudes.iter().map(|&a| ParamValue::Float(a)).collect()),
        )
        .cost_hint(CostHint::gates(twoq, expected as u64).with_oneq(expected as u64))
        .build()
}

/// Angle encoding: one rotation angle per carrier (RY(θ_i) on carrier i).
pub fn angle_encoding(register: &QuantumDataType, angles: &[f64]) -> Result<OperatorDescriptor> {
    if register.encoding_kind == EncodingKind::PhaseRegister {
        return Err(QmlError::Validation(
            "angle encoding writes computational amplitudes; use a non-phase register".into(),
        ));
    }
    if angles.len() != register.width {
        return Err(QmlError::Validation(format!(
            "angle encoding needs one angle per carrier ({}), got {}",
            register.width,
            angles.len()
        )));
    }
    OperatorDescriptor::builder("angle_encode", RepKind::AngleEncoding, &register.id)
        .param(
            "angles",
            ParamValue::List(angles.iter().map(|&a| ParamValue::Float(a)).collect()),
        )
        .cost_hint(CostHint::gates(0, 1).with_oneq(register.width as u64))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hadamard_layer_descriptor() {
        let reg = QuantumDataType::bool_register("b", "b", 5).unwrap();
        let op = hadamard_layer(&reg).unwrap();
        assert_eq!(op.rep_kind, RepKind::HadamardLayer);
        assert_eq!(op.cost_hint.unwrap().oneq, Some(5));
    }

    #[test]
    fn amplitude_encoding_length_check() {
        let reg = QuantumDataType::int_register("v", "v", 3).unwrap();
        assert!(amplitude_encoding(&reg, &[1.0; 8]).is_ok());
        assert!(amplitude_encoding(&reg, &[1.0; 7]).is_err());
        assert!(amplitude_encoding(&reg, &[0.0; 8]).is_err());
    }

    #[test]
    fn amplitude_encoding_preserves_data() {
        let reg = QuantumDataType::int_register("v", "v", 2).unwrap();
        let data = [0.5, 0.5, 0.5, 0.5];
        let op = amplitude_encoding(&reg, &data).unwrap();
        let stored = op.params.get("amplitudes").unwrap().as_list().unwrap();
        assert_eq!(stored.len(), 4);
        assert_eq!(stored[2].as_f64(), Some(0.5));
    }

    #[test]
    fn angle_encoding_validation() {
        let reg = QuantumDataType::int_register("f", "f", 3).unwrap();
        assert!(angle_encoding(&reg, &[0.1, 0.2, 0.3]).is_ok());
        assert!(angle_encoding(&reg, &[0.1, 0.2]).is_err());
        let phase = QuantumDataType::phase_register("p", "p", 3).unwrap();
        assert!(angle_encoding(&phase, &[0.1, 0.2, 0.3]).is_err());
    }

    #[test]
    fn amplitude_cost_grows_exponentially() {
        let small = QuantumDataType::int_register("a", "a", 2).unwrap();
        let large = QuantumDataType::int_register("b", "b", 5).unwrap();
        let c_small = amplitude_encoding(&small, &[1.0; 4])
            .unwrap()
            .cost_hint
            .unwrap();
        let c_large = amplitude_encoding(&large, &vec![1.0; 32])
            .unwrap()
            .cost_hint
            .unwrap();
        assert!(c_large.twoq.unwrap() > 4 * c_small.twoq.unwrap());
    }
}
