//! Optimization passes over circuits.
//!
//! These are the classical peephole optimizations behind the context
//! descriptor's `optimization_level` option (Listing 4 uses level 2):
//!
//! * level 0 — no optimization,
//! * level 1 — drop identity rotations, cancel adjacent inverse pairs,
//! * level 2 — level 1 plus rotation merging, iterated to a fixpoint,
//! * level 3 — level 2 plus resynthesis of single-qubit gate runs into
//!   canonical `RZ·SX·RZ·SX·RZ` sequences.
//!
//! Every pass preserves the circuit's unitary up to global phase, and hence
//! every measured distribution.

use qml_sim::{Circuit, Gate, ParamExpr};

use crate::basis::{decompose_1q_to_zsx, sequence_matrix, u_angles_from_matrix};

const ANGLE_EPS: f64 = 1e-12;

/// True if the rotation angle is an integer multiple of 2π (identity up to
/// global phase).
fn is_trivial_angle(theta: f64) -> bool {
    let reduced = theta.rem_euclid(std::f64::consts::TAU);
    reduced.abs() < ANGLE_EPS || (std::f64::consts::TAU - reduced).abs() < ANGLE_EPS
}

/// Constant-folding view of an angle expression: trivial only when the angle
/// is *known* to be an identity rotation. A symbolic angle is never trivial —
/// the pass must preserve it for late binding.
fn is_trivial_expr(theta: &ParamExpr) -> bool {
    theta.const_value().is_some_and(is_trivial_angle)
}

/// Remove rotations that are the identity (angle ≡ 0 mod 2π). Symbolic
/// rotations are always kept: their value is not known until binding.
pub fn drop_identity_rotations(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.num_qubits());
    for gate in circuit.gates() {
        let trivial = match gate {
            Gate::Rz(_, t) | Gate::Rx(_, t) | Gate::Ry(_, t) | Gate::Phase(_, t) => {
                is_trivial_expr(t)
            }
            Gate::Cp(_, _, t) | Gate::Rzz(_, _, t) => is_trivial_expr(t),
            _ => false,
        };
        if !trivial {
            out.push(*gate);
        }
    }
    out.measure(circuit.measured());
    out
}

/// Index of the last gate in `gates` that shares a qubit with `gate`.
fn last_overlapping(gates: &[Gate], gate: &Gate) -> Option<usize> {
    let qs = gate.qubits();
    gates
        .iter()
        .rposition(|g| g.qubits().iter().any(|q| qs.contains(q)))
}

/// True if `a` followed by `b` is the identity (up to global phase).
fn is_inverse_pair(a: &Gate, b: &Gate) -> bool {
    if a.qubits() != b.qubits() {
        return false;
    }
    match (a, b) {
        (Gate::H(_), Gate::H(_))
        | (Gate::X(_), Gate::X(_))
        | (Gate::Y(_), Gate::Y(_))
        | (Gate::Z(_), Gate::Z(_))
        | (Gate::Cx(_, _), Gate::Cx(_, _))
        | (Gate::Cz(_, _), Gate::Cz(_, _))
        | (Gate::Swap(_, _), Gate::Swap(_, _)) => true,
        (Gate::S(_), Gate::Sdg(_)) | (Gate::Sdg(_), Gate::S(_)) => true,
        (Gate::T(_), Gate::Tdg(_)) | (Gate::Tdg(_), Gate::T(_)) => true,
        // Two rotations cancel when their angle sum is provably trivial —
        // which covers the symbolic case Rθ(s)·Rθ(−s), whose affine sum
        // collapses to the constant 0.
        (Gate::Rz(_, t1), Gate::Rz(_, t2))
        | (Gate::Rx(_, t1), Gate::Rx(_, t2))
        | (Gate::Ry(_, t1), Gate::Ry(_, t2))
        | (Gate::Phase(_, t1), Gate::Phase(_, t2))
        | (Gate::Cp(_, _, t1), Gate::Cp(_, _, t2))
        | (Gate::Rzz(_, _, t1), Gate::Rzz(_, _, t2)) => {
            t1.try_add(t2).is_some_and(|sum| is_trivial_expr(&sum))
        }
        _ => false,
    }
}

/// Cancel adjacent gate/inverse pairs (adjacent in the per-qubit dependency
/// order, not merely in list order).
pub fn cancel_adjacent_inverses(circuit: &Circuit) -> Circuit {
    let mut gates: Vec<Gate> = Vec::with_capacity(circuit.len());
    for gate in circuit.gates() {
        if let Some(idx) = last_overlapping(&gates, gate) {
            if is_inverse_pair(&gates[idx], gate) {
                gates.remove(idx);
                continue;
            }
        }
        gates.push(*gate);
    }
    let mut out = Circuit::new(circuit.num_qubits());
    out.extend(&gates);
    out.measure(circuit.measured());
    out
}

/// Merge adjacent rotations of the same kind on the same qubits by summing
/// their angles.
///
/// The sum is an affine-expression sum, so `Sym + Sym` merges into one
/// affine rotation and `Const + Const` folds as before. A merge that would
/// exceed [`qml_sim::MAX_PARAM_TERMS`] distinct symbols is declined (both
/// gates are kept), which preserves semantics at a small size cost.
pub fn merge_rotations(circuit: &Circuit) -> Circuit {
    let mut gates: Vec<Gate> = Vec::with_capacity(circuit.len());
    for gate in circuit.gates() {
        if let Some(idx) = last_overlapping(&gates, gate) {
            let merged = match (&gates[idx], gate) {
                (Gate::Rz(q, a), Gate::Rz(_, b)) if gates[idx].qubits() == gate.qubits() => {
                    a.try_add(b).map(|sum| Gate::Rz(*q, sum))
                }
                (Gate::Rx(q, a), Gate::Rx(_, b)) if gates[idx].qubits() == gate.qubits() => {
                    a.try_add(b).map(|sum| Gate::Rx(*q, sum))
                }
                (Gate::Ry(q, a), Gate::Ry(_, b)) if gates[idx].qubits() == gate.qubits() => {
                    a.try_add(b).map(|sum| Gate::Ry(*q, sum))
                }
                (Gate::Phase(q, a), Gate::Phase(_, b)) if gates[idx].qubits() == gate.qubits() => {
                    a.try_add(b).map(|sum| Gate::Phase(*q, sum))
                }
                (Gate::Cp(c, t, a), Gate::Cp(_, _, b)) if gates[idx].qubits() == gate.qubits() => {
                    a.try_add(b).map(|sum| Gate::Cp(*c, *t, sum))
                }
                (Gate::Rzz(c, t, a), Gate::Rzz(_, _, b))
                    if gates[idx].qubits() == gate.qubits() =>
                {
                    a.try_add(b).map(|sum| Gate::Rzz(*c, *t, sum))
                }
                _ => None,
            };
            if let Some(m) = merged {
                gates[idx] = m;
                continue;
            }
        }
        gates.push(*gate);
    }
    let mut out = Circuit::new(circuit.num_qubits());
    out.extend(&gates);
    out.measure(circuit.measured());
    out
}

/// Resynthesize every maximal run of single-qubit gates on a qubit into the
/// canonical `RZ·SX·RZ·SX·RZ` form (or a single `RZ` when the run is
/// diagonal). Only emits `rz`/`sx`, so the result stays within the paper's
/// hardware basis.
pub fn resynthesize_1q_runs(circuit: &Circuit) -> Circuit {
    let n = circuit.num_qubits();
    let mut out_gates: Vec<Gate> = Vec::with_capacity(circuit.len());
    // Pending run of single-qubit gates per qubit.
    let mut pending: Vec<Vec<Gate>> = vec![Vec::new(); n];

    let flush = |pending: &mut Vec<Gate>, out: &mut Vec<Gate>| {
        if pending.is_empty() {
            return;
        }
        let q = pending[0].qubits()[0];
        let m = sequence_matrix(pending);
        let (theta, phi, lambda) = u_angles_from_matrix(&m);
        let resynth: Vec<Gate> =
            decompose_1q_to_zsx(&Gate::U(q, theta.into(), phi.into(), lambda.into()))
                .into_iter()
                .filter(|g| !matches!(g, Gate::Rz(_, t) if is_trivial_expr(t)))
                .collect();
        // Only adopt the canonical form when it is actually shorter; otherwise
        // keep the original run (it may already be optimal).
        if resynth.len() < pending.len() {
            out.extend_from_slice(&resynth);
        } else {
            out.extend_from_slice(pending);
        }
        pending.clear();
    };

    for gate in circuit.gates() {
        let qs = gate.qubits();
        // Symbolic rotations have no concrete matrix: they act as barriers,
        // flushing the pending run and passing through unchanged — so the
        // pass stays safe on parametric plans.
        if qs.len() == 1 && !gate.is_symbolic() && gate.single_qubit_matrix().is_some() {
            pending[qs[0]].push(*gate);
        } else {
            for &q in &qs {
                flush(&mut pending[q], &mut out_gates);
            }
            out_gates.push(*gate);
        }
    }
    for queue in pending.iter_mut().take(n) {
        flush(queue, &mut out_gates);
    }

    let mut out = Circuit::new(n);
    out.extend(&out_gates);
    out.measure(circuit.measured());
    out
}

/// Run the optimization pipeline for the given level (0–3).
pub fn optimize(circuit: &Circuit, level: u8) -> Circuit {
    if level == 0 {
        return circuit.clone();
    }
    let mut current = circuit.clone();
    let max_rounds = 8;
    for _ in 0..max_rounds {
        let mut next = drop_identity_rotations(&current);
        next = cancel_adjacent_inverses(&next);
        if level >= 2 {
            next = merge_rotations(&next);
            next = drop_identity_rotations(&next);
            next = cancel_adjacent_inverses(&next);
        }
        if next == current {
            break;
        }
        current = next;
    }
    if level >= 3 {
        current = resynthesize_1q_runs(&current);
        current = drop_identity_rotations(&current);
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use qml_sim::Simulator;

    fn assert_same_distribution(a: &Circuit, b: &Circuit) {
        let sim = Simulator::new();
        let da = sim.exact_distribution(a);
        let db = sim.exact_distribution(b);
        for (word, p) in &da {
            let q = db.get(word).copied().unwrap_or(0.0);
            assert!(
                (p - q).abs() < 1e-9,
                "distribution differs at {word}: {p} vs {q}"
            );
        }
    }

    fn probe_circuit() -> Circuit {
        let mut qc = Circuit::new(3);
        qc.extend(&[
            Gate::H(0),
            Gate::H(0), // cancels
            Gate::Rz(1, (0.4).into()),
            Gate::Rz(1, (-0.4).into()), // cancels via merge/drop
            Gate::Cx(0, 1),
            Gate::Cx(0, 1), // cancels
            Gate::Ry(2, (0.9).into()),
            Gate::Rz(2, (0.0).into()), // identity
            Gate::T(0),
            Gate::Tdg(0), // cancels
            Gate::Rzz(1, 2, (0.3).into()),
            Gate::Rzz(1, 2, (0.5).into()), // merges
            Gate::H(1),
        ]);
        qc.measure_all();
        qc
    }

    #[test]
    fn drop_identity_rotations_removes_trivial_angles() {
        let mut qc = Circuit::new(2);
        qc.extend(&[
            Gate::Rz(0, (0.0).into()),
            Gate::Rx(1, std::f64::consts::TAU.into()),
            Gate::Cp(0, 1, (0.0).into()),
            Gate::H(0),
        ]);
        qc.measure_all();
        let out = drop_identity_rotations(&qc);
        assert_eq!(out.len(), 1);
        assert_eq!(out.gates()[0], Gate::H(0));
    }

    #[test]
    fn cancel_handles_interleaved_qubits() {
        // The two H(0) gates are separated by a gate on qubit 1 only; they
        // must still cancel.
        let mut qc = Circuit::new(2);
        qc.extend(&[Gate::H(0), Gate::Rz(1, (0.3).into()), Gate::H(0)]);
        qc.measure_all();
        let out = cancel_adjacent_inverses(&qc);
        assert_eq!(out.gate_counts().get("h"), None);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn cancel_does_not_cross_blocking_gates() {
        // A CX on qubit 0 sits between the two H(0): must NOT cancel.
        let mut qc = Circuit::new(2);
        qc.extend(&[Gate::H(0), Gate::Cx(0, 1), Gate::H(0)]);
        qc.measure_all();
        let out = cancel_adjacent_inverses(&qc);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn merge_rotations_sums_angles() {
        let mut qc = Circuit::new(1);
        qc.extend(&[Gate::Rz(0, (0.25).into()), Gate::Rz(0, (0.5).into())]);
        qc.measure_all();
        let out = merge_rotations(&qc);
        assert_eq!(out.len(), 1);
        match out.gates()[0] {
            Gate::Rz(0, t) => assert!((t.value() - 0.75).abs() < 1e-12),
            ref g => panic!("unexpected gate {g:?}"),
        }
    }

    #[test]
    fn optimization_levels_monotonically_shrink_the_probe() {
        let qc = probe_circuit();
        let sizes: Vec<usize> = (0..=3).map(|l| optimize(&qc, l).len()).collect();
        assert_eq!(sizes[0], qc.len());
        assert!(sizes[1] < sizes[0]);
        assert!(sizes[2] <= sizes[1]);
        assert!(sizes[3] <= sizes[2]);
    }

    #[test]
    fn every_level_preserves_the_distribution() {
        let qc = probe_circuit();
        for level in 0..=3 {
            let out = optimize(&qc, level);
            assert_same_distribution(&qc, &out);
        }
    }

    #[test]
    fn resynthesis_compacts_long_1q_runs() {
        let mut qc = Circuit::new(1);
        qc.extend(&[
            Gate::H(0),
            Gate::T(0),
            Gate::Rx(0, (0.3).into()),
            Gate::S(0),
            Gate::Ry(0, (-0.8).into()),
            Gate::Rz(0, (1.1).into()),
            Gate::H(0),
        ]);
        qc.measure_all();
        let out = resynthesize_1q_runs(&qc);
        assert!(
            out.len() <= 5,
            "run of 7 gates should compress to ≤ 5, got {}",
            out.len()
        );
        assert_same_distribution(&qc, &out);
        let basis: Vec<String> = ["sx", "rz"].iter().map(|s| s.to_string()).collect();
        assert!(out.uses_only(&basis));
    }

    #[test]
    fn resynthesis_preserves_distribution_with_entanglers() {
        let mut qc = Circuit::new(2);
        qc.extend(&[
            Gate::H(0),
            Gate::T(0),
            Gate::Cx(0, 1),
            Gate::Rx(1, (0.7).into()),
            Gate::Ry(1, (0.2).into()),
            Gate::Cx(0, 1),
            Gate::H(1),
        ]);
        qc.measure_all();
        let out = optimize(&qc, 3);
        assert_same_distribution(&qc, &out);
    }

    #[test]
    fn optimize_level0_is_identity() {
        let qc = probe_circuit();
        assert_eq!(optimize(&qc, 0), qc);
    }

    #[test]
    fn fully_cancelling_circuit_reduces_to_nothing() {
        let mut qc = Circuit::new(2);
        qc.extend(&[Gate::Cx(0, 1), Gate::Cx(0, 1), Gate::H(0), Gate::H(0)]);
        qc.measure_all();
        let out = optimize(&qc, 2);
        assert!(out.is_empty());
        assert_eq!(out.num_clbits(), 2, "measurements survive optimization");
    }
}
