//! Transpilation targets: the hardware constraints a context descriptor's
//! `target` block imposes on compilation (basis gate set + coupling map).

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Connectivity of a device as an undirected coupling graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CouplingMap {
    num_qubits: usize,
    edges: BTreeSet<(usize, usize)>,
}

impl CouplingMap {
    /// Build from an edge list; the number of qubits is the largest index
    /// mentioned plus one (or `min_qubits` if larger).
    pub fn new(edges: &[(usize, usize)], min_qubits: usize) -> Self {
        let mut set = BTreeSet::new();
        let mut max = 0usize;
        for &(a, b) in edges {
            assert_ne!(a, b, "coupling map cannot contain self-loops");
            set.insert((a.min(b), a.max(b)));
            max = max.max(a.max(b) + 1);
        }
        CouplingMap {
            num_qubits: max.max(min_qubits),
            edges: set,
        }
    }

    /// A linear chain 0-1-...-(n-1).
    pub fn linear(n: usize) -> Self {
        let edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        CouplingMap::new(&edges, n)
    }

    /// A ring 0-1-...-(n-1)-0.
    pub fn ring(n: usize) -> Self {
        let mut edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        if n > 2 {
            edges.push((n - 1, 0));
        }
        CouplingMap::new(&edges, n)
    }

    /// Number of qubits covered by the map.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// True if qubits `a` and `b` are directly coupled.
    pub fn are_adjacent(&self, a: usize, b: usize) -> bool {
        self.edges.contains(&(a.min(b), a.max(b)))
    }

    /// Neighbors of a qubit.
    pub fn neighbors(&self, q: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == q {
                    Some(b)
                } else if b == q {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Shortest path between two qubits (BFS), inclusive of both endpoints.
    /// Returns `None` if they are disconnected.
    pub fn shortest_path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut prev = vec![usize::MAX; self.num_qubits];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(from);
        prev[from] = from;
        while let Some(u) = queue.pop_front() {
            for v in self.neighbors(u) {
                if prev[v] == usize::MAX {
                    prev[v] = u;
                    if v == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while cur != from {
                            cur = prev[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// Hop distance between two qubits, or `None` if disconnected.
    pub fn distance(&self, from: usize, to: usize) -> Option<usize> {
        self.shortest_path(from, to).map(|p| p.len() - 1)
    }

    /// All edges (normalized with a < b).
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }
}

/// The constraints transpilation must satisfy, mirroring the `target` block
/// of the paper's context descriptor (Listing 4).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TranspileTarget {
    /// Allowed gate names after transpilation; empty means "any gate".
    pub basis_gates: Vec<String>,
    /// Device connectivity; `None` means all-to-all.
    pub coupling_map: Option<CouplingMap>,
}

impl TranspileTarget {
    /// An unconstrained (ideal) target: any gate, all-to-all connectivity.
    pub fn ideal() -> Self {
        TranspileTarget::default()
    }

    /// The paper's hardware basis `{sx, rz, cx}` with the given coupling map.
    pub fn hardware(coupling_map: CouplingMap) -> Self {
        TranspileTarget {
            basis_gates: vec!["sx".into(), "rz".into(), "cx".into()],
            coupling_map: Some(coupling_map),
        }
    }

    /// The paper's hardware basis with all-to-all connectivity.
    pub fn hardware_all_to_all() -> Self {
        TranspileTarget {
            basis_gates: vec!["sx".into(), "rz".into(), "cx".into()],
            coupling_map: None,
        }
    }

    /// True if no basis restriction applies.
    pub fn any_basis(&self) -> bool {
        self.basis_gates.is_empty()
    }

    /// True if the named gate is allowed by the basis.
    pub fn allows(&self, name: &str) -> bool {
        self.any_basis() || self.basis_gates.iter().any(|b| b == name)
    }

    /// Stable 64-bit fingerprint of the target constraints (basis gates and
    /// coupling map, both in canonical order).
    ///
    /// Together with an `optimization_level` this is the device half of a
    /// transpilation cache key: equal fingerprints guarantee that transpiling
    /// the same logical circuit yields the same physical circuit, so repeated
    /// submissions against the same device can skip transpilation entirely.
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        // `basis_gates` order matters to neither transpilation nor the paper's
        // descriptors; canonicalize so permutations fingerprint identically.
        let mut basis = self.basis_gates.clone();
        basis.sort();
        for gate in &basis {
            fold(gate.as_bytes());
            fold(b"\x1f");
        }
        fold(b"\x1e");
        if let Some(cm) = &self.coupling_map {
            fold(&cm.num_qubits().to_le_bytes());
            for (a, b) in cm.edges() {
                fold(&a.to_le_bytes());
                fold(&b.to_le_bytes());
            }
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_map_adjacency_and_distance() {
        let cm = CouplingMap::linear(10);
        assert_eq!(cm.num_qubits(), 10);
        assert!(cm.are_adjacent(3, 4));
        assert!(!cm.are_adjacent(0, 9));
        assert_eq!(cm.distance(0, 9), Some(9));
        assert_eq!(cm.shortest_path(2, 5).unwrap(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn ring_map_wraps_around() {
        let cm = CouplingMap::ring(4);
        assert!(cm.are_adjacent(3, 0));
        assert_eq!(cm.distance(0, 2), Some(2));
        assert_eq!(cm.distance(1, 3), Some(2));
        assert_eq!(cm.distance(0, 3), Some(1));
    }

    #[test]
    fn disconnected_qubits_have_no_path() {
        let cm = CouplingMap::new(&[(0, 1)], 4);
        assert_eq!(cm.distance(0, 3), None);
        assert_eq!(cm.shortest_path(2, 3), None);
    }

    #[test]
    fn path_to_self_is_trivial() {
        let cm = CouplingMap::linear(3);
        assert_eq!(cm.shortest_path(1, 1).unwrap(), vec![1]);
        assert_eq!(cm.distance(1, 1), Some(0));
    }

    #[test]
    fn neighbors_are_symmetric() {
        let cm = CouplingMap::ring(5);
        for a in 0..5 {
            for b in cm.neighbors(a) {
                assert!(cm.neighbors(b).contains(&a));
            }
        }
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        CouplingMap::new(&[(1, 1)], 2);
    }

    #[test]
    fn target_allows_checks() {
        let t = TranspileTarget::hardware(CouplingMap::linear(4));
        assert!(t.allows("sx"));
        assert!(t.allows("cx"));
        assert!(!t.allows("h"));
        assert!(TranspileTarget::ideal().allows("h"));
        assert!(TranspileTarget::ideal().any_basis());
    }

    #[test]
    fn min_qubits_respected() {
        let cm = CouplingMap::new(&[(0, 1)], 6);
        assert_eq!(cm.num_qubits(), 6);
    }

    #[test]
    fn fingerprint_is_stable_and_canonical() {
        let a = TranspileTarget::hardware(CouplingMap::ring(5));
        let b = TranspileTarget {
            basis_gates: vec!["cx".into(), "rz".into(), "sx".into()], // permuted
            coupling_map: Some(CouplingMap::ring(5)),
        };
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_targets() {
        let ring = TranspileTarget::hardware(CouplingMap::ring(5));
        let line = TranspileTarget::hardware(CouplingMap::linear(5));
        let ideal = TranspileTarget::ideal();
        assert_ne!(ring.fingerprint(), line.fingerprint());
        assert_ne!(ring.fingerprint(), ideal.fingerprint());
        assert_ne!(line.fingerprint(), ideal.fingerprint());
    }
}
