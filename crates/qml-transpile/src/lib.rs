//! # qml-transpile — basis translation, routing, and optimization
//!
//! The repository's substitute for the Qiskit transpiler invoked by the
//! paper's gate path: it honours the context descriptor's `target` block
//! (basis gates + coupling map) and `optimization_level` option, producing
//! circuits a constrained device could execute and the realized cost metrics
//! that descriptor-level cost hints are validated against.
//!
//! Pipeline: [`routing::route`] → [`basis::decompose_to_basis`] →
//! [`passes::optimize`], driven by [`transpile`].

#![warn(missing_docs)]
#![warn(clippy::print_stdout, clippy::print_stderr)]
#![forbid(unsafe_code)]

pub mod basis;
pub mod error;
pub mod passes;
pub mod routing;
pub mod target;
pub mod transpiler;

pub use basis::{decompose_gate, decompose_to_basis, u_angles_from_matrix};
pub use error::TranspileError;
pub use passes::optimize;
pub use routing::{route, RoutedCircuit};
pub use target::{CouplingMap, TranspileTarget};
pub use transpiler::{transpile, CircuitMetrics, TranspileResult};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use qml_sim::{Circuit, Gate, Simulator};

    fn arb_gate(n: usize) -> impl Strategy<Value = Gate> {
        (0..n, 0..n, -3.2f64..3.2, 0u8..10).prop_map(move |(a, b, t, kind)| {
            let b = if a == b { (b + 1) % n } else { b };
            match kind {
                0 => Gate::H(a),
                1 => Gate::T(a),
                2 => Gate::Rx(a, t.into()),
                3 => Gate::Ry(a, t.into()),
                4 => Gate::Rz(a, t.into()),
                5 => Gate::Cx(a, b),
                6 => Gate::Cz(a, b),
                7 => Gate::Cp(a, b, t.into()),
                8 => Gate::Rzz(a, b, t.into()),
                _ => Gate::Swap(a, b),
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The full pipeline (routing to a line + hardware basis + any
        /// optimization level) never changes the measured distribution.
        #[test]
        fn transpilation_preserves_distribution(
            gates in proptest::collection::vec(arb_gate(4), 1..20),
            level in 0u8..4,
        ) {
            let mut qc = Circuit::new(4);
            qc.extend(&gates);
            qc.measure_all();
            let target = TranspileTarget::hardware(CouplingMap::linear(4));
            let result = transpile(&qc, &target, level).unwrap();

            let sim = Simulator::new();
            let original = sim.exact_distribution(&qc);
            let transpiled = sim.exact_distribution(&result.circuit);
            for (word, p) in &original {
                let q = transpiled.get(word).copied().unwrap_or(0.0);
                prop_assert!((p - q).abs() < 1e-7, "word {} differs: {} vs {}", word, p, q);
            }
        }

        /// Transpiled circuits only contain basis gates and coupled 2q pairs.
        #[test]
        fn transpilation_respects_constraints(
            gates in proptest::collection::vec(arb_gate(5), 1..15),
        ) {
            let mut qc = Circuit::new(5);
            qc.extend(&gates);
            qc.measure_all();
            let cm = CouplingMap::ring(5);
            let target = TranspileTarget::hardware(cm.clone());
            let result = transpile(&qc, &target, 2).unwrap();
            let basis: Vec<String> = ["sx", "rz", "cx"].iter().map(|s| s.to_string()).collect();
            prop_assert!(result.circuit.uses_only(&basis));
            for g in result.circuit.gates() {
                if g.is_two_qubit() {
                    let q = g.qubits();
                    prop_assert!(cm.are_adjacent(q[0], q[1]));
                }
            }
        }
    }
}
