//! Basis translation: rewriting gates into a target's native gate set.
//!
//! The paper's context descriptor constrains compilation to the gate set
//! `[sx, rz, cx]` (Listing 4), "which forces realistic routing and basis
//! decompositions". This module performs those decompositions: every
//! single-qubit gate is rewritten as a ZXZXZ sequence (RZ·SX·RZ·SX·RZ), and
//! every two-qubit gate is expanded over CX plus single-qubit gates. All
//! rewrites are exact up to a global phase, which is irrelevant to any
//! measurement statistics the middle layer exposes.

use qml_sim::{matmul2, Circuit, Complex64, Gate, ParamExpr};

use crate::target::TranspileTarget;

/// Extract OpenQASM `U(θ, φ, λ)` angles (and the global phase) from an
/// arbitrary single-qubit unitary.
pub fn u_angles_from_matrix(m: &[Complex64; 4]) -> (f64, f64, f64) {
    let eps = 1e-12;
    let theta = 2.0 * m[2].abs().atan2(m[0].abs());
    if m[0].abs() < eps {
        // θ = π: cos(θ/2) = 0; choose λ = 0.
        let g = (-m[1]).arg();
        let phi = m[2].arg() - g;
        (theta, phi, 0.0)
    } else if m[2].abs() < eps {
        // θ = 0: sin(θ/2) = 0; choose φ = 0.
        let g = m[0].arg();
        let lambda = m[3].arg() - g;
        (theta, 0.0, lambda)
    } else {
        let g = m[0].arg();
        let phi = m[2].arg() - g;
        let lambda = (-m[1]).arg() - g;
        (theta, phi, lambda)
    }
}

/// The analytic ZXZXZ realization of `U(θ, φ, λ)` in application order:
/// `RZ(λ) · SX · RZ(θ+π) · SX · RZ(φ+π)`, exact up to a global phase for any
/// angle expressions — including **symbolic** ones, since θ, φ, λ enter the
/// sequence only through affine shifts.
fn zsx_sequence(q: usize, theta: ParamExpr, phi: ParamExpr, lambda: ParamExpr) -> Vec<Gate> {
    vec![
        Gate::Rz(q, lambda),
        Gate::Sx(q),
        Gate::Rz(q, theta.shift(std::f64::consts::PI)),
        Gate::Sx(q),
        Gate::Rz(q, phi.shift(std::f64::consts::PI)),
    ]
}

/// Rewrite any single-qubit gate as the ZXZXZ sequence
/// `RZ(λ) · SX · RZ(θ+π) · SX · RZ(φ+π)` (listed in application order),
/// exact up to a global phase.
///
/// Symbolic rotations decompose **without evaluating their angle**: the
/// identities `RX(θ) = U(θ, −π/2, π/2)` and `RY(θ) = U(θ, 0, 0)` place the
/// symbolic θ directly into one RZ of the sequence, so a parametric circuit
/// reaches the hardware basis with its symbols intact.
pub fn decompose_1q_to_zsx(gate: &Gate) -> Vec<Gate> {
    let q = gate.qubits()[0];
    // Diagonal gates need only a single RZ (symbolic or not).
    match *gate {
        Gate::Rz(_, t) => return vec![Gate::Rz(q, t)],
        Gate::Z(_) => return vec![Gate::Rz(q, (std::f64::consts::PI).into())],
        Gate::S(_) => return vec![Gate::Rz(q, (std::f64::consts::FRAC_PI_2).into())],
        Gate::Sdg(_) => return vec![Gate::Rz(q, (-std::f64::consts::FRAC_PI_2).into())],
        Gate::T(_) => return vec![Gate::Rz(q, (std::f64::consts::FRAC_PI_4).into())],
        Gate::Tdg(_) => return vec![Gate::Rz(q, (-std::f64::consts::FRAC_PI_4).into())],
        Gate::Phase(_, l) => return vec![Gate::Rz(q, l)],
        Gate::Sx(_) => return vec![Gate::Sx(q)],
        _ => {}
    }
    if gate.is_symbolic() {
        return match *gate {
            Gate::Rx(_, t) => zsx_sequence(
                q,
                t,
                (-std::f64::consts::FRAC_PI_2).into(),
                std::f64::consts::FRAC_PI_2.into(),
            ),
            Gate::Ry(_, t) => zsx_sequence(q, t, 0.0.into(), 0.0.into()),
            Gate::U(_, theta, phi, lambda) => zsx_sequence(q, theta, phi, lambda),
            _ => unreachable!("only rotation gates carry symbolic angles"),
        };
    }
    let m = gate
        .single_qubit_matrix()
        .expect("decompose_1q_to_zsx requires a single-qubit gate");
    let (theta, phi, lambda) = u_angles_from_matrix(&m);
    zsx_sequence(q, theta.into(), phi.into(), lambda.into())
}

/// Expand a two-qubit gate over `{cx, single-qubit}` gates. Single-qubit
/// helpers emitted here may themselves need a further ZXZXZ pass. Angle
/// halving is an affine scale, so symbolic CP/RZZ decompose symbolically.
pub fn decompose_2q_to_cx(gate: &Gate) -> Vec<Gate> {
    match *gate {
        Gate::Cx(c, t) => vec![Gate::Cx(c, t)],
        Gate::Cz(c, t) => vec![Gate::H(t), Gate::Cx(c, t), Gate::H(t)],
        Gate::Cp(c, t, l) => vec![
            Gate::Phase(c, l.scale(0.5)),
            Gate::Cx(c, t),
            Gate::Phase(t, l.scale(-0.5)),
            Gate::Cx(c, t),
            Gate::Phase(t, l.scale(0.5)),
        ],
        Gate::Swap(a, b) => vec![Gate::Cx(a, b), Gate::Cx(b, a), Gate::Cx(a, b)],
        Gate::Rzz(a, b, t) => vec![Gate::Cx(a, b), Gate::Rz(b, t), Gate::Cx(a, b)],
        _ => panic!(
            "decompose_2q_to_cx called on non-two-qubit gate {}",
            gate.name()
        ),
    }
}

/// Rewrite a single gate into gates allowed by the target. Gates already in
/// the basis pass through unchanged.
pub fn decompose_gate(gate: &Gate, target: &TranspileTarget) -> Vec<Gate> {
    if target.allows(gate.name()) {
        return vec![*gate];
    }
    if gate.is_two_qubit() {
        decompose_2q_to_cx(gate)
            .into_iter()
            .flat_map(|g| decompose_gate(&g, target))
            .collect()
    } else {
        decompose_1q_to_zsx(gate)
            .into_iter()
            .filter(
                |g| !matches!(g, Gate::Rz(_, t) if t.const_value().is_some_and(|v| v.abs() < 1e-15)),
            )
            .collect()
    }
}

/// Rewrite every gate of a circuit into the target basis, preserving the
/// measurement map.
pub fn decompose_to_basis(circuit: &Circuit, target: &TranspileTarget) -> Circuit {
    let mut out = Circuit::new(circuit.num_qubits());
    for gate in circuit.gates() {
        for g in decompose_gate(gate, target) {
            out.push(g);
        }
    }
    out.measure(circuit.measured());
    out
}

/// Compare two single-qubit gate sequences as matrices, up to global phase.
/// Exposed for tests and the optimization passes.
pub fn sequences_equal_up_to_phase(a: &[Gate], b: &[Gate], eps: f64) -> bool {
    let ma = sequence_matrix(a);
    let mb = sequence_matrix(b);
    matrices_equal_up_to_phase(&ma, &mb, eps)
}

/// Product matrix of a single-qubit gate sequence (applied left to right).
pub fn sequence_matrix(gates: &[Gate]) -> [Complex64; 4] {
    let mut m = [
        Complex64::ONE,
        Complex64::ZERO,
        Complex64::ZERO,
        Complex64::ONE,
    ];
    for g in gates {
        let gm = g
            .single_qubit_matrix()
            .expect("sequence_matrix requires single-qubit gates");
        m = matmul2(&gm, &m);
    }
    m
}

/// True if two 2×2 matrices are equal up to a global phase.
pub fn matrices_equal_up_to_phase(a: &[Complex64; 4], b: &[Complex64; 4], eps: f64) -> bool {
    // Find the largest entry of a to normalize the phase against.
    let (idx, _) = a
        .iter()
        .enumerate()
        .max_by(|x, y| x.1.norm_sqr().partial_cmp(&y.1.norm_sqr()).unwrap())
        .unwrap();
    if b[idx].abs() < eps {
        return false;
    }
    // phase = a[idx] / b[idx]
    let denom = b[idx].norm_sqr();
    let phase = a[idx] * b[idx].conj() * (1.0 / denom);
    (0..4).all(|i| (b[i] * phase).approx_eq(a[i], eps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qml_sim::{qft_circuit, Simulator, StateVector};

    const EPS: f64 = 1e-9;

    fn all_1q_gates() -> Vec<Gate> {
        vec![
            Gate::H(0),
            Gate::X(0),
            Gate::Y(0),
            Gate::Z(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::T(0),
            Gate::Tdg(0),
            Gate::Sx(0),
            Gate::Rx(0, (0.37).into()),
            Gate::Ry(0, (-2.2).into()),
            Gate::Rz(0, (1.9).into()),
            Gate::Phase(0, (0.55).into()),
            Gate::U(0, 1.2.into(), 0.4.into(), (-0.9).into()),
        ]
    }

    #[test]
    fn u_angle_extraction_round_trips() {
        for gate in all_1q_gates() {
            let m = gate.single_qubit_matrix().unwrap();
            let (theta, phi, lambda) = u_angles_from_matrix(&m);
            let rebuilt = Gate::U(0, theta.into(), phi.into(), lambda.into())
                .single_qubit_matrix()
                .unwrap();
            assert!(
                matrices_equal_up_to_phase(&m, &rebuilt, EPS),
                "angle extraction failed for {}",
                gate.name()
            );
        }
    }

    #[test]
    fn zsx_decomposition_is_exact_up_to_phase() {
        for gate in all_1q_gates() {
            let seq = decompose_1q_to_zsx(&gate);
            assert!(
                sequences_equal_up_to_phase(&[gate], &seq, EPS),
                "ZXZXZ decomposition failed for {}",
                gate.name()
            );
            assert!(seq
                .iter()
                .all(|g| matches!(g, Gate::Rz(_, _) | Gate::Sx(_))));
        }
    }

    #[test]
    fn diagonal_gates_become_single_rz() {
        for gate in [
            Gate::Z(0),
            Gate::S(0),
            Gate::T(0),
            Gate::Phase(0, (0.3).into()),
            Gate::Rz(0, (1.0).into()),
        ] {
            let seq = decompose_1q_to_zsx(&gate);
            assert_eq!(seq.len(), 1, "{} should lower to one rz", gate.name());
        }
    }

    #[test]
    fn two_qubit_decompositions_preserve_statevector() {
        // Verify on a 2-qubit probe state with non-trivial single-qubit prep.
        let prep = [
            Gate::Ry(0, (0.63).into()),
            Gate::Rx(1, (-1.1).into()),
            Gate::Rz(0, (0.2).into()),
        ];
        for gate in [
            Gate::Cz(0, 1),
            Gate::Cp(0, 1, (0.77).into()),
            Gate::Swap(0, 1),
            Gate::Rzz(0, 1, (1.3).into()),
            Gate::Cx(1, 0),
        ] {
            let mut direct = StateVector::zero_state(2);
            direct.apply_all(&prep);
            direct.apply(&gate);

            let mut decomposed = StateVector::zero_state(2);
            decomposed.apply_all(&prep);
            decomposed.apply_all(&decompose_2q_to_cx(&gate));

            assert!(
                (direct.fidelity(&decomposed) - 1.0).abs() < EPS,
                "{} decomposition changed the state",
                gate.name()
            );
        }
    }

    #[test]
    fn decompose_to_hardware_basis_only_emits_basis_gates() {
        let mut qc = qft_circuit(5, 0, true, false);
        qc.measure_all();
        let target = TranspileTarget::hardware_all_to_all();
        let lowered = decompose_to_basis(&qc, &target);
        let basis: Vec<String> = ["sx", "rz", "cx"].iter().map(|s| s.to_string()).collect();
        assert!(lowered.uses_only(&basis));
        assert_eq!(lowered.measured(), qc.measured());
    }

    #[test]
    fn hardware_basis_circuit_preserves_distribution() {
        let n = 4;
        let mut qc = qft_circuit(n, 0, true, false);
        qc.measure_all();
        let lowered = decompose_to_basis(&qc, &TranspileTarget::hardware_all_to_all());

        let sim = Simulator::new();
        let a = sim.exact_distribution(&qc);
        let b = sim.exact_distribution(&lowered);
        for (word, p) in &a {
            let q = b.get(word).copied().unwrap_or(0.0);
            assert!((p - q).abs() < 1e-9, "distribution differs at {word}");
        }
    }

    #[test]
    fn ideal_target_is_a_no_op() {
        let mut qc = Circuit::new(2);
        qc.extend(&[Gate::H(0), Gate::Cp(0, 1, (0.4).into())]);
        qc.measure_all();
        let out = decompose_to_basis(&qc, &TranspileTarget::ideal());
        assert_eq!(out.gates(), qc.gates());
    }

    #[test]
    fn gates_already_in_basis_pass_through() {
        let target = TranspileTarget::hardware_all_to_all();
        assert_eq!(
            decompose_gate(&Gate::Cx(0, 1), &target),
            vec![Gate::Cx(0, 1)]
        );
        assert_eq!(decompose_gate(&Gate::Sx(2), &target), vec![Gate::Sx(2)]);
        assert_eq!(
            decompose_gate(&Gate::Rz(1, (0.5).into()), &target),
            vec![Gate::Rz(1, (0.5).into())]
        );
    }

    #[test]
    fn matrices_equal_up_to_phase_detects_difference() {
        let h = Gate::H(0).single_qubit_matrix().unwrap();
        let x = Gate::X(0).single_qubit_matrix().unwrap();
        assert!(!matrices_equal_up_to_phase(&h, &x, 1e-9));
        assert!(matrices_equal_up_to_phase(&h, &h, 1e-9));
    }
}
