//! The transpilation pipeline: routing → basis translation → optimization.
//!
//! This is the repository's substitute for Qiskit's `transpile(...)` call in
//! the paper's Listing 1 / Listing 4 context: given a logical circuit and a
//! [`TranspileTarget`] it produces a circuit that (i) only touches coupled
//! qubit pairs, (ii) only uses basis gates, and (iii) has been peephole
//! optimized at the requested level — and reports the cost metrics the
//! middle layer's `cost_hint`s are validated against.

use serde::{Deserialize, Serialize};

use qml_sim::Circuit;

use crate::basis::decompose_to_basis;
use crate::error::TranspileError;
use crate::passes::optimize;
use crate::routing::route;
use crate::target::TranspileTarget;

/// Cost metrics of a (transpiled) circuit — the realized counterpart of the
/// descriptor-level [`CostHint`](https://docs.rs) the scheduler consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CircuitMetrics {
    /// Circuit depth.
    pub depth: usize,
    /// Two-qubit gate count.
    pub two_qubit_gates: usize,
    /// Single-qubit gate count.
    pub single_qubit_gates: usize,
    /// Total gate count.
    pub total_gates: usize,
    /// SWAPs inserted by routing (already included in the gate counts).
    pub swaps_inserted: usize,
}

impl CircuitMetrics {
    /// Measure a circuit.
    pub fn of(circuit: &Circuit, swaps_inserted: usize) -> Self {
        CircuitMetrics {
            depth: circuit.depth(),
            two_qubit_gates: circuit.count_two_qubit(),
            single_qubit_gates: circuit.count_single_qubit(),
            total_gates: circuit.len(),
            swaps_inserted,
        }
    }
}

/// Result of a transpilation run.
#[derive(Debug, Clone, PartialEq)]
pub struct TranspileResult {
    /// The transpiled circuit (over physical qubits if a coupling map was
    /// given).
    pub circuit: Circuit,
    /// Layout before the first gate: `initial_layout[logical] = physical`.
    pub initial_layout: Vec<usize>,
    /// Layout after the last gate.
    pub final_layout: Vec<usize>,
    /// Cost metrics of the transpiled circuit.
    pub metrics: CircuitMetrics,
}

/// Transpile a circuit for a target at the given optimization level (0–3).
pub fn transpile(
    circuit: &Circuit,
    target: &TranspileTarget,
    optimization_level: u8,
) -> Result<TranspileResult, TranspileError> {
    // A basis without an entangling gate cannot express two-qubit circuits.
    if !target.any_basis()
        && circuit.count_two_qubit() > 0
        && !["cx", "cz"].iter().any(|g| target.allows(g))
    {
        return Err(TranspileError::UnsupportedBasis(format!(
            "basis {:?} has no entangling gate",
            target.basis_gates
        )));
    }

    // 1. Routing (identity when no coupling map is given).
    let (routed, initial_layout, final_layout, swaps) = match &target.coupling_map {
        Some(cm) => {
            let r = route(circuit, cm)?;
            (
                r.circuit,
                r.initial_layout,
                r.final_layout,
                r.swaps_inserted,
            )
        }
        None => {
            let layout: Vec<usize> = (0..circuit.num_qubits()).collect();
            (circuit.clone(), layout.clone(), layout, 0)
        }
    };

    // 2. Basis translation.
    let lowered = decompose_to_basis(&routed, target);

    // 3. Peephole optimization.
    let optimized = optimize(&lowered, optimization_level);

    let metrics = CircuitMetrics::of(&optimized, swaps);
    Ok(TranspileResult {
        circuit: optimized,
        initial_layout,
        final_layout,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::CouplingMap;
    use qml_sim::{qft_circuit, Circuit, Gate, Simulator};

    fn assert_same_distribution(a: &Circuit, b: &Circuit) {
        let sim = Simulator::new();
        let da = sim.exact_distribution(a);
        let db = sim.exact_distribution(b);
        for (word, p) in &da {
            let q = db.get(word).copied().unwrap_or(0.0);
            assert!(
                (p - q).abs() < 1e-9,
                "distribution differs at {word}: {p} vs {q}"
            );
        }
    }

    fn qft10() -> Circuit {
        let mut qc = qft_circuit(10, 0, true, false);
        qc.measure_all();
        qc
    }

    #[test]
    fn listing4_pipeline_basis_and_connectivity_respected() {
        // The exact context of Listing 4: basis [sx, rz, cx], linear 10-qubit
        // coupling, optimization_level 2.
        let target = TranspileTarget::hardware(CouplingMap::linear(10));
        let result = transpile(&qft10(), &target, 2).unwrap();
        let basis: Vec<String> = ["sx", "rz", "cx"].iter().map(|s| s.to_string()).collect();
        assert!(result.circuit.uses_only(&basis));
        // Every cx must act on coupled qubits.
        let cm = CouplingMap::linear(10);
        for g in result.circuit.gates() {
            if g.is_two_qubit() {
                let q = g.qubits();
                assert!(cm.are_adjacent(q[0], q[1]), "{:?} not adjacent", q);
            }
        }
        assert!(
            result.metrics.swaps_inserted > 0,
            "linear QFT needs routing"
        );
        assert!(
            result.metrics.two_qubit_gates >= 45,
            "exact QFT(10) has ≥ 45 2q gates"
        );
    }

    #[test]
    fn small_qft_distribution_preserved_through_full_pipeline() {
        let mut qc = qft_circuit(4, 0, true, false);
        // Prepare a non-trivial input before the QFT so the test is sharp.
        let mut full = Circuit::new(4);
        full.extend(&[Gate::X(0), Gate::X(2)]);
        full.compose(&qc);
        qc = full;
        qc.measure_all();

        for level in 0..=3 {
            let target = TranspileTarget::hardware(CouplingMap::linear(4));
            let result = transpile(&qc, &target, level).unwrap();
            assert_same_distribution(&qc, &result.circuit);
        }
    }

    #[test]
    fn higher_optimization_levels_do_not_increase_gate_count() {
        let target = TranspileTarget::hardware(CouplingMap::linear(10));
        let counts: Vec<usize> = (0..=3)
            .map(|l| transpile(&qft10(), &target, l).unwrap().metrics.total_gates)
            .collect();
        assert!(counts[1] <= counts[0]);
        assert!(counts[2] <= counts[1]);
        assert!(counts[3] <= counts[2]);
    }

    #[test]
    fn all_to_all_avoids_swaps() {
        let constrained = TranspileTarget::hardware(CouplingMap::linear(10));
        let ideal_coupling = TranspileTarget::hardware_all_to_all();
        let with_map = transpile(&qft10(), &constrained, 2).unwrap();
        let without_map = transpile(&qft10(), &ideal_coupling, 2).unwrap();
        assert_eq!(without_map.metrics.swaps_inserted, 0);
        assert!(
            with_map.metrics.two_qubit_gates > without_map.metrics.two_qubit_gates,
            "routing must add entangling gates on a line"
        );
    }

    #[test]
    fn ideal_target_only_optimizes() {
        let mut qc = Circuit::new(2);
        qc.extend(&[Gate::H(0), Gate::H(0), Gate::Cx(0, 1)]);
        qc.measure_all();
        let result = transpile(&qc, &TranspileTarget::ideal(), 2).unwrap();
        assert_eq!(result.metrics.total_gates, 1);
        assert_eq!(result.initial_layout, vec![0, 1]);
        assert_eq!(result.final_layout, vec![0, 1]);
    }

    #[test]
    fn basis_without_entangler_rejected() {
        let mut qc = Circuit::new(2);
        qc.push(Gate::Cx(0, 1));
        qc.measure_all();
        let target = TranspileTarget {
            basis_gates: vec!["sx".into(), "rz".into()],
            coupling_map: None,
        };
        assert!(matches!(
            transpile(&qc, &target, 1),
            Err(TranspileError::UnsupportedBasis(_))
        ));
    }

    #[test]
    fn metrics_match_circuit() {
        let target = TranspileTarget::hardware(CouplingMap::ring(4));
        let mut qc = Circuit::new(4);
        for q in 0..4 {
            qc.push(Gate::H(q));
        }
        for &(a, b) in &[(0usize, 1usize), (1, 2), (2, 3), (3, 0)] {
            qc.push(Gate::Rzz(a, b, (0.7).into()));
        }
        qc.measure_all();
        let result = transpile(&qc, &target, 2).unwrap();
        assert_eq!(result.metrics.depth, result.circuit.depth());
        assert_eq!(
            result.metrics.two_qubit_gates,
            result.circuit.count_two_qubit()
        );
        assert_eq!(result.metrics.total_gates, result.circuit.len());
        // QAOA cost layer on a ring: 4 RZZ → 8 CX, no swaps needed.
        assert_eq!(result.metrics.swaps_inserted, 0);
        assert_eq!(result.metrics.two_qubit_gates, 8);
    }

    #[test]
    fn too_small_target_propagates_error() {
        let target = TranspileTarget::hardware(CouplingMap::linear(3));
        assert!(matches!(
            transpile(&qft10(), &target, 1),
            Err(TranspileError::TooFewQubits { .. })
        ));
    }
}
