//! Transpilation errors.

use std::fmt;

/// Errors produced by routing and transpilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranspileError {
    /// The coupling map has fewer qubits than the circuit needs.
    TooFewQubits {
        /// Qubits required by the circuit.
        needed: usize,
        /// Qubits available on the device.
        available: usize,
    },
    /// Two qubits that must interact lie in disconnected components of the
    /// coupling map.
    Disconnected(usize, usize),
    /// The requested basis cannot express the circuit (e.g. no entangling
    /// gate in the basis).
    UnsupportedBasis(String),
}

impl fmt::Display for TranspileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranspileError::TooFewQubits { needed, available } => write!(
                f,
                "circuit needs {needed} qubits but the coupling map only provides {available}"
            ),
            TranspileError::Disconnected(a, b) => {
                write!(f, "physical qubits {a} and {b} are not connected")
            }
            TranspileError::UnsupportedBasis(msg) => write!(f, "unsupported basis: {msg}"),
        }
    }
}

impl std::error::Error for TranspileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(TranspileError::TooFewQubits {
            needed: 5,
            available: 3
        }
        .to_string()
        .contains("5"));
        assert!(TranspileError::Disconnected(1, 4)
            .to_string()
            .contains("not connected"));
        assert!(TranspileError::UnsupportedBasis("no cx".into())
            .to_string()
            .contains("no cx"));
    }
}
