//! Coupling-map routing: SWAP insertion so every two-qubit gate acts on
//! adjacent physical qubits.
//!
//! The paper's context target block "forces realistic routing" (Listing 4).
//! The router keeps a live layout (logical qubit → physical qubit); whenever a
//! two-qubit gate spans non-adjacent physical qubits it walks the shortest
//! path in the coupling graph, inserting SWAPs and updating the layout, then
//! applies the gate. Measurement maps are rewritten through the final layout
//! so decoding stays correct.

use qml_sim::{Circuit, Gate};

use crate::error::TranspileError;
use crate::target::CouplingMap;

/// Result of routing a circuit onto a coupling map.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedCircuit {
    /// The routed circuit over physical qubits.
    pub circuit: Circuit,
    /// Layout before the first gate: `initial_layout[logical] = physical`.
    pub initial_layout: Vec<usize>,
    /// Layout after the last gate (SWAPs permute it).
    pub final_layout: Vec<usize>,
    /// Number of SWAP gates inserted.
    pub swaps_inserted: usize,
}

/// Route `circuit` onto `coupling`, starting from the trivial layout
/// (logical i ↦ physical i).
pub fn route(circuit: &Circuit, coupling: &CouplingMap) -> Result<RoutedCircuit, TranspileError> {
    let logical = circuit.num_qubits();
    let physical = coupling.num_qubits().max(logical);
    if coupling.num_qubits() < logical {
        return Err(TranspileError::TooFewQubits {
            needed: logical,
            available: coupling.num_qubits(),
        });
    }

    // layout[logical] = physical; phys2log[physical] = logical (or usize::MAX).
    let mut layout: Vec<usize> = (0..logical).collect();
    let mut phys2log: Vec<usize> = (0..physical)
        .map(|p| if p < logical { p } else { usize::MAX })
        .collect();
    let initial_layout = layout.clone();

    let mut routed = Circuit::new(physical);
    let mut swaps_inserted = 0usize;

    for gate in circuit.gates() {
        let qubits = gate.qubits();
        if qubits.len() == 1 {
            routed.push(gate.remap(&layout));
            continue;
        }
        let (la, lb) = (qubits[0], qubits[1]);
        let (mut pa, pb) = (layout[la], layout[lb]);
        if !coupling.are_adjacent(pa, pb) {
            let path = coupling
                .shortest_path(pa, pb)
                .ok_or(TranspileError::Disconnected(pa, pb))?;
            // Walk logical qubit `la` along the path until adjacent to pb.
            for window in path.windows(2).take(path.len().saturating_sub(2)) {
                let (from, to) = (window[0], window[1]);
                routed.push(Gate::Swap(from, to));
                swaps_inserted += 1;
                // Swap the logical occupants of the two physical qubits.
                let (lf, lt) = (phys2log[from], phys2log[to]);
                phys2log[from] = lt;
                phys2log[to] = lf;
                if lf != usize::MAX {
                    layout[lf] = to;
                }
                if lt != usize::MAX {
                    layout[lt] = from;
                }
            }
            pa = layout[la];
            debug_assert!(coupling.are_adjacent(pa, layout[lb]));
        }
        routed.push(gate.remap(&layout));
    }

    // Measurements read the physical qubit currently holding each logical one.
    let measured: Vec<usize> = circuit.measured().iter().map(|&l| layout[l]).collect();
    routed.measure(&measured);

    Ok(RoutedCircuit {
        circuit: routed,
        initial_layout,
        final_layout: layout,
        swaps_inserted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qml_sim::Simulator;

    /// Routing must never change the measured distribution (SWAPs permute the
    /// state but the measurement map is rewritten accordingly).
    fn assert_same_distribution(original: &Circuit, routed: &Circuit) {
        let sim = Simulator::new();
        let a = sim.exact_distribution(original);
        let b = sim.exact_distribution(routed);
        for (word, p) in &a {
            let q = b.get(word).copied().unwrap_or(0.0);
            assert!(
                (p - q).abs() < 1e-9,
                "distribution differs at {word}: {p} vs {q}"
            );
        }
        for (word, q) in &b {
            assert!(
                a.contains_key(word) || *q < 1e-9,
                "unexpected outcome {word}"
            );
        }
    }

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let mut qc = Circuit::new(3);
        qc.extend(&[Gate::H(0), Gate::Cx(0, 1), Gate::Cx(1, 2)]);
        qc.measure_all();
        let routed = route(&qc, &CouplingMap::linear(3)).unwrap();
        assert_eq!(routed.swaps_inserted, 0);
        assert_eq!(routed.final_layout, vec![0, 1, 2]);
        assert_same_distribution(&qc, &routed.circuit);
    }

    #[test]
    fn distant_gate_inserts_swaps() {
        let mut qc = Circuit::new(4);
        qc.extend(&[Gate::H(0), Gate::Cx(0, 3)]);
        qc.measure_all();
        let routed = route(&qc, &CouplingMap::linear(4)).unwrap();
        assert!(routed.swaps_inserted >= 2, "0→3 on a line needs ≥ 2 swaps");
        assert_same_distribution(&qc, &routed.circuit);
    }

    #[test]
    fn ring_reduces_swaps_relative_to_line() {
        let mut qc = Circuit::new(4);
        qc.extend(&[Gate::H(0), Gate::Cx(0, 3)]);
        qc.measure_all();
        let line = route(&qc, &CouplingMap::linear(4)).unwrap();
        let ring = route(&qc, &CouplingMap::ring(4)).unwrap();
        assert_eq!(ring.swaps_inserted, 0, "0 and 3 are adjacent on the ring");
        assert!(line.swaps_inserted > ring.swaps_inserted);
        assert_same_distribution(&qc, &ring.circuit);
    }

    #[test]
    fn qaoa_ring_circuit_routes_on_ring_without_swaps() {
        // The paper's Max-Cut QAOA circuit only couples ring neighbours, so on
        // the ring coupling map of its context no SWAPs are needed.
        let mut qc = Circuit::new(4);
        for q in 0..4 {
            qc.push(Gate::H(q));
        }
        for &(a, b) in &[(0usize, 1usize), (1, 2), (2, 3), (3, 0)] {
            qc.push(Gate::Rzz(a, b, (0.7).into()));
        }
        for q in 0..4 {
            qc.push(Gate::Rx(q, (0.4).into()));
        }
        qc.measure_all();
        let routed = route(&qc, &CouplingMap::ring(4)).unwrap();
        assert_eq!(routed.swaps_inserted, 0);
        assert_same_distribution(&qc, &routed.circuit);
    }

    #[test]
    fn layout_tracks_multiple_swaps_correctly() {
        // A sequence of distant two-qubit gates: correctness is checked by
        // comparing distributions (the strongest possible oracle).
        let mut qc = Circuit::new(5);
        qc.extend(&[
            Gate::H(0),
            Gate::Ry(2, (0.9).into()),
            Gate::Cx(0, 4),
            Gate::Cx(4, 1),
            Gate::Cp(2, 0, (0.6).into()),
            Gate::Rzz(3, 1, (1.1).into()),
        ]);
        qc.measure_all();
        let routed = route(&qc, &CouplingMap::linear(5)).unwrap();
        assert!(routed.swaps_inserted > 0);
        assert_same_distribution(&qc, &routed.circuit);
    }

    #[test]
    fn partial_measurement_maps_through_layout() {
        let mut qc = Circuit::new(4);
        qc.extend(&[Gate::X(0), Gate::Cx(0, 3)]);
        qc.measure(&[3, 0]);
        let routed = route(&qc, &CouplingMap::linear(4)).unwrap();
        assert_same_distribution(&qc, &routed.circuit);
        assert_eq!(routed.circuit.num_clbits(), 2);
    }

    #[test]
    fn too_small_device_rejected() {
        let mut qc = Circuit::new(5);
        qc.push(Gate::H(0));
        qc.measure_all();
        let err = route(&qc, &CouplingMap::linear(3)).unwrap_err();
        assert!(matches!(err, TranspileError::TooFewQubits { .. }));
    }

    #[test]
    fn disconnected_device_rejected() {
        let mut qc = Circuit::new(4);
        qc.push(Gate::Cx(0, 3));
        qc.measure_all();
        // Two disconnected 2-qubit islands.
        let cm = CouplingMap::new(&[(0, 1), (2, 3)], 4);
        let err = route(&qc, &cm).unwrap_err();
        assert!(matches!(err, TranspileError::Disconnected(_, _)));
    }

    #[test]
    fn wider_device_than_circuit_is_fine() {
        let mut qc = Circuit::new(2);
        qc.extend(&[Gate::H(0), Gate::Cx(0, 1)]);
        qc.measure_all();
        let routed = route(&qc, &CouplingMap::linear(6)).unwrap();
        assert_eq!(routed.circuit.num_qubits(), 6);
        assert_same_distribution(&qc, &routed.circuit);
    }
}
