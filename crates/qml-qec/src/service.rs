//! The orthogonal QEC context service.
//!
//! This is the component the paper's §4.3.1/§4.3.2 describe: a service that
//! consumes the `qec` block of a context descriptor — without the operator
//! descriptors ever changing — and answers the questions a backend or
//! scheduler asks at realization time: How many physical qubits does this
//! logical register need? Are the requested logical gates in the policy's
//! fault-tolerant gate set? What failure probability should be expected?

use serde::{Deserialize, Serialize};

use qml_types::{CostHint, QecConfig, QmlError, Result};

use crate::repetition::RepetitionCode;
use crate::surface::{ResourceEstimate, SurfaceCode};

/// Code families understood by the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CodeFamily {
    /// Rotated surface code (resource model).
    Surface,
    /// Bit-flip repetition code (executable demonstrator).
    Repetition,
}

/// Default physical error rate assumed when the context does not specify one.
pub const DEFAULT_PHYSICAL_ERROR_RATE: f64 = 1e-3;

/// The orthogonal QEC service: interprets a [`QecConfig`] and produces
/// resource estimates for logical workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QecService {
    /// Which code family the policy selected.
    pub family: CodeFamily,
    /// Code distance requested by the policy.
    pub distance: usize,
    /// Physical error rate assumed for estimates.
    pub physical_error_rate: f64,
    /// Fault-tolerant gate set synthesis is constrained to (upper-case names);
    /// empty means unconstrained.
    pub logical_gate_set: Vec<String>,
}

impl QecService {
    /// Interpret a context's QEC policy. Unknown code families are rejected —
    /// silently ignoring an error-correction request would violate the
    /// "no hidden side effects" principle.
    pub fn from_config(config: &QecConfig) -> Result<Self> {
        config.validate()?;
        let family = match config.code_family.to_ascii_lowercase().as_str() {
            "surface" => CodeFamily::Surface,
            "repetition" | "bit-flip" | "bitflip" => CodeFamily::Repetition,
            other => {
                return Err(QmlError::Unsupported(format!(
                    "unknown QEC code family `{other}`"
                )))
            }
        };
        Ok(QecService {
            family,
            distance: config.distance,
            physical_error_rate: config
                .physical_error_rate
                .unwrap_or(DEFAULT_PHYSICAL_ERROR_RATE),
            logical_gate_set: config
                .logical_gate_set
                .iter()
                .map(|g| g.to_ascii_uppercase())
                .collect(),
        })
    }

    /// True if the named logical gate is allowed by the policy's gate set.
    pub fn allows_logical_gate(&self, gate: &str) -> bool {
        self.logical_gate_set.is_empty()
            || self
                .logical_gate_set
                .iter()
                .any(|g| g.eq_ignore_ascii_case(gate))
    }

    /// Verify that every gate in `gates` is allowed; reports the first
    /// offender otherwise.
    pub fn check_logical_gates(&self, gates: &[&str]) -> Result<()> {
        for gate in gates {
            if !self.allows_logical_gate(gate) {
                return Err(QmlError::Unsupported(format!(
                    "logical gate `{gate}` is outside the policy's fault-tolerant gate set {:?}",
                    self.logical_gate_set
                )));
            }
        }
        Ok(())
    }

    /// Physical qubits required per logical qubit under this policy.
    pub fn physical_qubits_per_logical(&self) -> usize {
        match self.family {
            CodeFamily::Surface => SurfaceCode::new(self.distance, self.physical_error_rate)
                .physical_qubits_per_logical(),
            CodeFamily::Repetition => self.distance,
        }
    }

    /// Logical error rate per logical operation under this policy.
    pub fn logical_error_rate(&self) -> f64 {
        match self.family {
            CodeFamily::Surface => {
                SurfaceCode::new(self.distance, self.physical_error_rate).logical_error_rate()
            }
            CodeFamily::Repetition => RepetitionCode::new(self.distance)
                .analytic_logical_error_rate(self.physical_error_rate),
        }
    }

    /// Estimate the physical resources for a logical workload described by a
    /// register width and an (optional) cost hint. Unknown cost fields fall
    /// back to a width-proportional default so the estimate stays
    /// conservative rather than absent.
    pub fn estimate(&self, logical_qubits: usize, cost: Option<&CostHint>) -> ResourceEstimate {
        let logical_ops = cost
            .and_then(|c| match (c.depth, c.twoq, c.oneq) {
                (Some(d), _, _) => Some(d * logical_qubits as u64),
                (None, Some(twoq), oneq) => Some(twoq + oneq.unwrap_or(0)),
                _ => None,
            })
            .unwrap_or(10 * logical_qubits as u64) as usize;
        match self.family {
            CodeFamily::Surface => SurfaceCode::new(self.distance, self.physical_error_rate)
                .estimate(logical_qubits, logical_ops),
            CodeFamily::Repetition => {
                let per_patch = self.distance;
                let p_l = self.logical_error_rate();
                ResourceEstimate {
                    logical_qubits,
                    physical_qubits: logical_qubits * per_patch,
                    syndrome_rounds: logical_ops * self.distance,
                    workload_failure_probability: 1.0 - (1.0 - p_l).powi(logical_ops as i32),
                    time_overhead_factor: self.distance as f64,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing5_policy_round_trip() {
        let config = QecConfig::surface(7);
        let service = QecService::from_config(&config).unwrap();
        assert_eq!(service.family, CodeFamily::Surface);
        assert_eq!(service.distance, 7);
        assert_eq!(service.physical_qubits_per_logical(), 97);
        assert!(service.allows_logical_gate("H"));
        assert!(service.allows_logical_gate("cnot"));
        assert!(!service.allows_logical_gate("SQRT_ISWAP"));
        service
            .check_logical_gates(&["H", "CNOT", "T", "MEASURE_Z"])
            .unwrap();
        assert!(service.check_logical_gates(&["H", "CCZ"]).is_err());
    }

    #[test]
    fn unknown_code_family_rejected() {
        let mut config = QecConfig::surface(7);
        config.code_family = "bacon-shor".into();
        assert!(matches!(
            QecService::from_config(&config),
            Err(QmlError::Unsupported(_))
        ));
    }

    #[test]
    fn invalid_distance_rejected_through_config_validation() {
        let mut config = QecConfig::surface(7);
        config.distance = 4;
        assert!(QecService::from_config(&config).is_err());
    }

    #[test]
    fn repetition_family_supported() {
        let mut config = QecConfig::surface(5);
        config.code_family = "repetition".into();
        config.logical_gate_set.clear();
        let service = QecService::from_config(&config).unwrap();
        assert_eq!(service.family, CodeFamily::Repetition);
        assert_eq!(service.physical_qubits_per_logical(), 5);
        assert!(
            service.allows_logical_gate("ANYTHING"),
            "empty gate set is unconstrained"
        );
    }

    #[test]
    fn estimates_scale_with_distance_but_semantics_do_not_change() {
        // The composability claim: swapping only the QEC context changes the
        // resource estimate, nothing else is touched.
        let cost = CostHint::gates(45, 100);
        let small = QecService::from_config(&QecConfig::surface(3))
            .unwrap()
            .estimate(10, Some(&cost));
        let large = QecService::from_config(&QecConfig::surface(11))
            .unwrap()
            .estimate(10, Some(&cost));
        assert_eq!(small.logical_qubits, large.logical_qubits);
        assert!(large.physical_qubits > small.physical_qubits);
        assert!(large.syndrome_rounds > small.syndrome_rounds);
        assert!(large.workload_failure_probability < small.workload_failure_probability);
    }

    #[test]
    fn estimate_without_cost_hint_uses_default_workload() {
        let service = QecService::from_config(&QecConfig::surface(5)).unwrap();
        let est = service.estimate(4, None);
        assert_eq!(est.logical_qubits, 4);
        assert!(est.syndrome_rounds > 0);
    }

    #[test]
    fn physical_error_rate_from_config_is_used() {
        let mut config = QecConfig::surface(7);
        config.physical_error_rate = Some(5e-3);
        let noisy = QecService::from_config(&config).unwrap();
        let clean = QecService::from_config(&QecConfig::surface(7)).unwrap();
        assert!(noisy.logical_error_rate() > clean.logical_error_rate());
    }
}
