//! Bit-flip repetition code: an executable error-correction demonstrator.
//!
//! The surface-code module provides analytic resource estimates; this module
//! provides a code we can actually *run*: the distance-d bit-flip repetition
//! code with a majority-vote decoder, simulated under i.i.d. bit-flip noise.
//! It demonstrates the paper's QEC-as-context claim end to end — the same
//! logical bit survives better when the context requests a larger distance —
//! and its Monte-Carlo estimate can be cross-checked against the exact
//! binomial formula.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A distance-d bit-flip repetition code with majority decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepetitionCode {
    /// Code distance (number of physical copies, odd).
    pub distance: usize,
}

impl RepetitionCode {
    /// Create a repetition code of odd distance `d`.
    pub fn new(distance: usize) -> Self {
        assert!(
            distance >= 1 && distance % 2 == 1,
            "distance must be odd and ≥ 1"
        );
        RepetitionCode { distance }
    }

    /// Encode a logical bit into `distance` physical bits.
    pub fn encode(&self, logical: bool) -> Vec<bool> {
        vec![logical; self.distance]
    }

    /// Majority-vote decoding of a physical word.
    pub fn decode(&self, physical: &[bool]) -> bool {
        assert_eq!(physical.len(), self.distance, "wrong codeword length");
        let ones = physical.iter().filter(|&&b| b).count();
        ones * 2 > self.distance
    }

    /// Syndrome of a physical word: pairwise parities of adjacent bits
    /// (length d−1). All-zero syndrome means "no detected error".
    pub fn syndrome(&self, physical: &[bool]) -> Vec<bool> {
        assert_eq!(physical.len(), self.distance, "wrong codeword length");
        physical.windows(2).map(|w| w[0] != w[1]).collect()
    }

    /// Exact logical error probability under i.i.d. bit-flip noise of
    /// strength `p`: the probability that more than half the bits flip.
    pub fn analytic_logical_error_rate(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "p must lie in [0, 1]");
        let d = self.distance;
        let mut total = 0.0;
        for k in (d / 2 + 1)..=d {
            total += binomial(d, k) * p.powi(k as i32) * (1.0 - p).powi((d - k) as i32);
        }
        total
    }

    /// Monte-Carlo estimate of the logical error rate: encode, apply i.i.d.
    /// bit-flip noise, decode, count logical failures.
    pub fn simulate_logical_error_rate(&self, p: f64, trials: u64, seed: u64) -> f64 {
        assert!(trials > 0, "need at least one trial");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut failures = 0u64;
        for _ in 0..trials {
            let logical = rng.gen::<bool>();
            let mut word = self.encode(logical);
            for bit in word.iter_mut() {
                if rng.gen::<f64>() < p {
                    *bit = !*bit;
                }
            }
            if self.decode(&word) != logical {
                failures += 1;
            }
        }
        failures as f64 / trials as f64
    }
}

/// Binomial coefficient as f64 (distances are small, no overflow concerns).
fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut result = 1.0f64;
    for i in 0..k {
        result = result * (n - i) as f64 / (i + 1) as f64;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip_without_noise() {
        for d in [1, 3, 5, 7] {
            let code = RepetitionCode::new(d);
            for logical in [false, true] {
                let word = code.encode(logical);
                assert_eq!(word.len(), d);
                assert_eq!(code.decode(&word), logical);
                assert!(code.syndrome(&word).iter().all(|&s| !s));
            }
        }
    }

    #[test]
    fn single_error_is_corrected_for_d3() {
        let code = RepetitionCode::new(3);
        for flip in 0..3 {
            let mut word = code.encode(true);
            word[flip] = !word[flip];
            assert!(
                code.decode(&word),
                "single flip at {flip} must be corrected"
            );
            assert!(
                code.syndrome(&word).iter().any(|&s| s),
                "error must be detected"
            );
        }
    }

    #[test]
    fn two_errors_defeat_d3() {
        let code = RepetitionCode::new(3);
        let mut word = code.encode(true);
        word[0] = false;
        word[1] = false;
        assert!(!code.decode(&word));
    }

    #[test]
    fn analytic_formula_known_values() {
        let code = RepetitionCode::new(3);
        // p_L = 3p²(1−p) + p³ at d = 3.
        let p = 0.1;
        let expected = 3.0 * p * p * (1.0 - p) + p * p * p;
        assert!((code.analytic_logical_error_rate(p) - expected).abs() < 1e-12);
        // d = 1 gives no protection.
        assert!((RepetitionCode::new(1).analytic_logical_error_rate(p) - p).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_matches_analytic() {
        let code = RepetitionCode::new(5);
        let p = 0.08;
        let analytic = code.analytic_logical_error_rate(p);
        let simulated = code.simulate_logical_error_rate(p, 200_000, 42);
        assert!(
            (simulated - analytic).abs() < 5e-3,
            "simulated {simulated} vs analytic {analytic}"
        );
    }

    #[test]
    fn below_threshold_distance_suppresses_errors() {
        // The repetition code's "threshold" against bit-flip noise is 50 %.
        let p = 0.05;
        let rates: Vec<f64> = [1, 3, 5, 7, 9]
            .iter()
            .map(|&d| RepetitionCode::new(d).analytic_logical_error_rate(p))
            .collect();
        assert!(rates.windows(2).all(|w| w[1] < w[0]), "{rates:?}");
    }

    #[test]
    fn above_threshold_distance_does_not_help() {
        let p = 0.6;
        let d3 = RepetitionCode::new(3).analytic_logical_error_rate(p);
        let d7 = RepetitionCode::new(7).analytic_logical_error_rate(p);
        assert!(d7 > d3);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(7, 4), 35.0);
        assert_eq!(binomial(3, 5), 0.0);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_distance_panics() {
        RepetitionCode::new(2);
    }
}
