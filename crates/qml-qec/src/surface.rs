//! Surface-code resource estimation.
//!
//! The paper treats error correction as execution context (§4.3.2): the
//! context's `qec` block requests e.g. a distance-7 surface code, and an
//! orthogonal QEC service "binds logical registers (one logical qubit may
//! span dozens of physical qubits under QEC) to patches, inserts
//! syndrome-extraction rounds ... and chooses a decoder". This module
//! provides the quantitative side of that service: how many physical qubits a
//! logical register needs, how many syndrome rounds a logical operation
//! takes, and the logical error rate the standard Λ-scaling model predicts.

use serde::{Deserialize, Serialize};

/// Default threshold of the surface code under circuit-level noise.
pub const SURFACE_CODE_THRESHOLD: f64 = 0.01;

/// Resource model of a rotated surface code of a given distance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurfaceCode {
    /// Code distance (odd).
    pub distance: usize,
    /// Physical error rate per operation assumed by the model.
    pub physical_error_rate: f64,
    /// Threshold error rate of the code family.
    pub threshold: f64,
}

impl SurfaceCode {
    /// A surface code of distance `d` at the given physical error rate, using
    /// the standard threshold.
    pub fn new(distance: usize, physical_error_rate: f64) -> Self {
        assert!(
            distance >= 1 && distance % 2 == 1,
            "distance must be odd and ≥ 1"
        );
        assert!(
            (0.0..1.0).contains(&physical_error_rate),
            "physical error rate must lie in [0, 1)"
        );
        SurfaceCode {
            distance,
            physical_error_rate,
            threshold: SURFACE_CODE_THRESHOLD,
        }
    }

    /// Physical qubits per logical qubit for the rotated surface code:
    /// d² data qubits plus d²−1 measurement ancillas.
    pub fn physical_qubits_per_logical(&self) -> usize {
        2 * self.distance * self.distance - 1
    }

    /// Syndrome-extraction rounds needed per logical operation (one round per
    /// unit of code distance).
    pub fn rounds_per_logical_op(&self) -> usize {
        self.distance
    }

    /// Logical error rate per logical operation under the standard Λ-scaling
    /// model: `p_L ≈ A · (p/p_th)^((d+1)/2)` with A = 0.1.
    pub fn logical_error_rate(&self) -> f64 {
        let ratio = self.physical_error_rate / self.threshold;
        0.1 * ratio.powf((self.distance as f64 + 1.0) / 2.0)
    }

    /// Error-suppression factor Λ = p_L(d) / p_L(d+2): how much the logical
    /// error rate drops when the distance grows by two.
    pub fn lambda(&self) -> f64 {
        let next = SurfaceCode {
            distance: self.distance + 2,
            ..*self
        };
        self.logical_error_rate() / next.logical_error_rate()
    }

    /// Smallest odd distance whose logical error rate is below `target`
    /// at physical error rate `p`. Returns `None` when `p` is at or above
    /// threshold (no distance helps).
    pub fn required_distance(p: f64, target: f64) -> Option<usize> {
        if p >= SURFACE_CODE_THRESHOLD || target <= 0.0 {
            return None;
        }
        let mut d = 3usize;
        loop {
            let code = SurfaceCode::new(d, p);
            if code.logical_error_rate() <= target {
                return Some(d);
            }
            d += 2;
            if d > 101 {
                return None;
            }
        }
    }
}

/// Aggregate physical resources for running a logical workload under a
/// surface-code policy — what the paper's orthogonal QEC service reports back
/// to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceEstimate {
    /// Logical qubits requested by the program.
    pub logical_qubits: usize,
    /// Total physical qubits (patches + routing overhead).
    pub physical_qubits: usize,
    /// Total syndrome-extraction rounds for the whole workload.
    pub syndrome_rounds: usize,
    /// Probability that at least one logical operation fails.
    pub workload_failure_probability: f64,
    /// Multiplicative wall-clock overhead relative to the bare circuit.
    pub time_overhead_factor: f64,
}

impl SurfaceCode {
    /// Estimate resources for a workload of `logical_qubits` qubits and
    /// `logical_ops` logical operations (circuit depth × width is a good
    /// proxy). A 50 % routing-space overhead is added for lattice surgery.
    pub fn estimate(&self, logical_qubits: usize, logical_ops: usize) -> ResourceEstimate {
        let per_patch = self.physical_qubits_per_logical();
        let physical_qubits = (logical_qubits * per_patch * 3) / 2;
        let syndrome_rounds = logical_ops * self.rounds_per_logical_op();
        let p_l = self.logical_error_rate();
        let workload_failure_probability = 1.0 - (1.0 - p_l).powi(logical_ops as i32);
        ResourceEstimate {
            logical_qubits,
            physical_qubits,
            syndrome_rounds,
            workload_failure_probability,
            time_overhead_factor: self.rounds_per_logical_op() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing5_distance7_patch_size() {
        // The paper's Listing 5 policy: distance-7 surface code. One logical
        // qubit then spans 2·49−1 = 97 physical qubits — "one logical qubit
        // may span dozens of physical qubits".
        let code = SurfaceCode::new(7, 1e-3);
        assert_eq!(code.physical_qubits_per_logical(), 97);
        assert_eq!(code.rounds_per_logical_op(), 7);
    }

    #[test]
    fn logical_error_rate_decreases_with_distance() {
        let p = 1e-3;
        let rates: Vec<f64> = [3, 5, 7, 9, 11]
            .iter()
            .map(|&d| SurfaceCode::new(d, p).logical_error_rate())
            .collect();
        assert!(rates.windows(2).all(|w| w[1] < w[0]), "{rates:?}");
        // Below threshold, each +2 in distance suppresses by Λ = p_th/p = 10.
        let code = SurfaceCode::new(7, p);
        assert!((code.lambda() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn above_threshold_distance_hurts() {
        let p = 0.05; // above the 1 % threshold
        let d3 = SurfaceCode::new(3, p).logical_error_rate();
        let d9 = SurfaceCode::new(9, p).logical_error_rate();
        assert!(d9 > d3, "above threshold, more distance makes things worse");
    }

    #[test]
    fn required_distance_monotone_in_target() {
        let p = 1e-3;
        let loose = SurfaceCode::required_distance(p, 1e-6).unwrap();
        let tight = SurfaceCode::required_distance(p, 1e-12).unwrap();
        assert!(tight > loose);
        assert!(SurfaceCode::required_distance(0.02, 1e-6).is_none());
        assert!(SurfaceCode::required_distance(p, 0.0).is_none());
    }

    #[test]
    fn required_distance_actually_meets_target() {
        let p = 2e-3;
        let target = 1e-9;
        let d = SurfaceCode::required_distance(p, target).unwrap();
        assert!(SurfaceCode::new(d, p).logical_error_rate() <= target);
        if d > 3 {
            assert!(SurfaceCode::new(d - 2, p).logical_error_rate() > target);
        }
    }

    #[test]
    fn estimate_scales_with_workload() {
        let code = SurfaceCode::new(7, 1e-3);
        let small = code.estimate(4, 100);
        let large = code.estimate(10, 1000);
        assert_eq!(small.logical_qubits, 4);
        assert_eq!(small.physical_qubits, 4 * 97 * 3 / 2);
        assert_eq!(small.syndrome_rounds, 700);
        assert!(large.physical_qubits > small.physical_qubits);
        assert!(large.workload_failure_probability > small.workload_failure_probability);
        assert!(
            small.workload_failure_probability > 0.0 && small.workload_failure_probability < 1.0
        );
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_distance_panics() {
        SurfaceCode::new(4, 1e-3);
    }

    #[test]
    #[should_panic(expected = "error rate")]
    fn bad_error_rate_panics() {
        SurfaceCode::new(3, 1.5);
    }
}
