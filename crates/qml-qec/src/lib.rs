//! # qml-qec — error correction as an orthogonal context service
//!
//! The paper treats quantum error correction purely as *execution context*
//! (§4.3.2): a `qec` block in the context descriptor names a code family,
//! distance and logical gate set, and an orthogonal service consumes it at
//! realization time — the operator descriptors never change. This crate is
//! that service:
//!
//! * [`SurfaceCode`] — rotated-surface-code resource model (physical qubits
//!   per patch, syndrome rounds, Λ-scaling logical error rates, required
//!   distance for a target error budget).
//! * [`RepetitionCode`] — an executable bit-flip code with majority decoding
//!   and a Monte-Carlo simulator, cross-checked against the exact binomial
//!   logical error rate.
//! * [`QecService`] — interprets a [`qml_types::QecConfig`], enforces the
//!   logical gate set, and produces [`ResourceEstimate`]s for workloads.

#![warn(missing_docs)]
#![warn(clippy::print_stdout, clippy::print_stderr)]
#![forbid(unsafe_code)]

pub mod repetition;
pub mod service;
pub mod surface;

pub use repetition::RepetitionCode;
pub use service::{CodeFamily, QecService, DEFAULT_PHYSICAL_ERROR_RATE};
pub use surface::{ResourceEstimate, SurfaceCode, SURFACE_CODE_THRESHOLD};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Majority decoding always recovers the logical bit when fewer than
        /// half of the physical bits are flipped.
        #[test]
        fn repetition_corrects_below_half(dist_idx in 0usize..4, logical in any::<bool>(), flips in proptest::collection::vec(any::<bool>(), 9)) {
            let d = [3, 5, 7, 9][dist_idx];
            let code = RepetitionCode::new(d);
            let mut word = code.encode(logical);
            let mut flipped = 0usize;
            for (i, &f) in flips.iter().take(d).enumerate() {
                if f && flipped < d / 2 {
                    word[i] = !word[i];
                    flipped += 1;
                }
            }
            prop_assert_eq!(code.decode(&word), logical);
        }

        /// The analytic logical error rate is a probability and is monotone
        /// in the physical error rate.
        #[test]
        fn analytic_rate_is_probability(dist_idx in 0usize..5, p in 0.0f64..1.0) {
            let d = [1, 3, 5, 7, 9][dist_idx];
            let code = RepetitionCode::new(d);
            let rate = code.analytic_logical_error_rate(p);
            prop_assert!((0.0..=1.0).contains(&rate));
            let rate_higher = code.analytic_logical_error_rate((p + 0.05).min(1.0));
            prop_assert!(rate_higher + 1e-12 >= rate);
        }

        /// Surface-code estimates are monotone in workload size.
        #[test]
        fn surface_estimates_monotone(d_idx in 0usize..4, qubits in 1usize..30, ops in 1usize..500) {
            let d = [3, 5, 7, 9][d_idx];
            let code = SurfaceCode::new(d, 1e-3);
            let small = code.estimate(qubits, ops);
            let large = code.estimate(qubits + 1, ops * 2);
            prop_assert!(large.physical_qubits > small.physical_qubits);
            prop_assert!(large.syndrome_rounds > small.syndrome_rounds);
            prop_assert!(small.workload_failure_probability <= 1.0);
        }
    }
}
