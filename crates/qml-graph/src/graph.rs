//! Undirected weighted graphs — the problem substrate for the paper's
//! Max-Cut proof of concept (§5).

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An undirected weighted graph G = (V, E, w) with vertices `0..num_nodes`.
///
/// Parallel edges are merged by summing weights; self-loops are rejected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    num_nodes: usize,
    /// Edges stored as (u, v, w) with u < v.
    edges: Vec<(usize, usize, f64)>,
}

impl Graph {
    /// An edgeless graph on `num_nodes` vertices.
    pub fn new(num_nodes: usize) -> Self {
        Graph {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Build a graph from an edge list with uniform weight 1.
    pub fn from_edges(num_nodes: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Graph::new(num_nodes);
        for &(u, v) in edges {
            g.add_edge(u, v, 1.0);
        }
        g
    }

    /// Build a graph from a weighted edge list.
    pub fn from_weighted_edges(num_nodes: usize, edges: &[(usize, usize, f64)]) -> Self {
        let mut g = Graph::new(num_nodes);
        for &(u, v, w) in edges {
            g.add_edge(u, v, w);
        }
        g
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of (merged) edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add an undirected edge; weights of repeated edges accumulate.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range vertices — these indicate
    /// programming errors in workload generators, not runtime conditions.
    pub fn add_edge(&mut self, u: usize, v: usize, w: f64) {
        assert!(u != v, "self-loop ({u},{v}) not allowed");
        assert!(
            u < self.num_nodes && v < self.num_nodes,
            "edge ({u},{v}) out of range for {} nodes",
            self.num_nodes
        );
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        if let Some(edge) = self.edges.iter_mut().find(|(x, y, _)| *x == a && *y == b) {
            edge.2 += w;
        } else {
            self.edges.push((a, b, w));
        }
    }

    /// Iterate over edges as (u, v, w) with u < v.
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }

    /// Unweighted edge list (u, v) with u < v.
    pub fn edge_list(&self) -> Vec<(usize, usize)> {
        self.edges.iter().map(|&(u, v, _)| (u, v)).collect()
    }

    /// Total edge weight Σ w_ij.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|&(_, _, w)| w).sum()
    }

    /// Weight of the edge (u, v) if present.
    pub fn weight(&self, u: usize, v: usize) -> Option<f64> {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges
            .iter()
            .find(|&&(x, y, _)| x == a && y == b)
            .map(|&(_, _, w)| w)
    }

    /// Neighbors of vertex `v`.
    pub fn neighbors(&self, v: usize) -> Vec<usize> {
        let mut out: BTreeSet<usize> = BTreeSet::new();
        for &(a, b, _) in &self.edges {
            if a == v {
                out.insert(b);
            } else if b == v {
                out.insert(a);
            }
        }
        out.into_iter().collect()
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.neighbors(v).len()
    }

    /// Maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// True if the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.total_weight(), 4.0);
        assert_eq!(g.neighbors(0), vec![1, 3]);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.weight(3, 0), Some(1.0));
        assert_eq!(g.weight(0, 2), None);
    }

    #[test]
    fn edge_direction_normalized() {
        let mut g = Graph::new(3);
        g.add_edge(2, 0, 1.5);
        assert_eq!(g.edges(), &[(0, 2, 1.5)]);
        assert_eq!(g.weight(0, 2), Some(1.5));
        assert_eq!(g.weight(2, 0), Some(1.5));
    }

    #[test]
    fn parallel_edges_merge_weights() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 0, 2.0);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.weight(0, 1), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5, 1.0);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(3);
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.total_weight(), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 0.5), (1, 2, 2.0)]);
        let json = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
    }
}
