//! The Max-Cut problem and classical baselines.
//!
//! For an undirected weighted graph G = (V, E, w), Max-Cut asks for the
//! partition V = S ∪ S̄ maximizing the total weight of edges crossing the cut
//! (paper §5). Assignments are represented as `&[bool]`, where `true` means
//! "vertex is in S" — the same {0, 1} labels the middle layer's `AS_BOOL`
//! readout produces.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::Graph;

/// Weight of the cut induced by `assignment` (vertex i in S iff
/// `assignment[i]`).
pub fn cut_value(graph: &Graph, assignment: &[bool]) -> f64 {
    assert_eq!(
        assignment.len(),
        graph.num_nodes(),
        "assignment length must equal the number of vertices"
    );
    graph
        .edges()
        .iter()
        .map(|&(u, v, w)| {
            if assignment[u] != assignment[v] {
                w
            } else {
                0.0
            }
        })
        .sum()
}

/// Cut value of a bitstring written with character i = vertex i ('1' ⇒ in S).
pub fn cut_value_of_bitstring(graph: &Graph, bits: &str) -> f64 {
    let assignment: Vec<bool> = bits.chars().map(|c| c == '1').collect();
    cut_value(graph, &assignment)
}

/// Result of a Max-Cut solver: the best assignment found and its value.
#[derive(Debug, Clone, PartialEq)]
pub struct CutSolution {
    /// Best assignment found (vertex i in S iff `assignment[i]`).
    pub assignment: Vec<bool>,
    /// Cut weight of that assignment.
    pub value: f64,
}

impl CutSolution {
    /// The assignment as a bitstring (character i = vertex i).
    pub fn bitstring(&self) -> String {
        self.assignment
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect()
    }
}

/// Exact Max-Cut by exhaustive enumeration. Intended for the small instances
/// of the paper's PoC and for validating heuristics; O(2^n · |E|).
pub fn brute_force(graph: &Graph) -> CutSolution {
    let n = graph.num_nodes();
    assert!(n <= 24, "brute force is limited to 24 vertices");
    let mut best = CutSolution {
        assignment: vec![false; n],
        value: 0.0,
    };
    for mask in 0u64..(1u64 << n) {
        let assignment: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 == 1).collect();
        let value = cut_value(graph, &assignment);
        if value > best.value {
            best = CutSolution { assignment, value };
        }
    }
    best
}

/// All optimal assignments (as bitstrings) found by exhaustive enumeration.
pub fn all_optimal_bitstrings(graph: &Graph) -> (f64, Vec<String>) {
    let n = graph.num_nodes();
    assert!(n <= 24, "brute force is limited to 24 vertices");
    let mut best = f64::NEG_INFINITY;
    let mut winners = Vec::new();
    for mask in 0u64..(1u64 << n) {
        let assignment: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 == 1).collect();
        let value = cut_value(graph, &assignment);
        if value > best + 1e-12 {
            best = value;
            winners.clear();
        }
        if (value - best).abs() <= 1e-12 {
            winners.push(
                assignment
                    .iter()
                    .map(|&b| if b { '1' } else { '0' })
                    .collect(),
            );
        }
    }
    (best, winners)
}

/// Greedy baseline: place each vertex (in index order) on the side that
/// currently maximizes the cut.
pub fn greedy(graph: &Graph) -> CutSolution {
    let n = graph.num_nodes();
    let mut assignment = vec![false; n];
    for v in 0..n {
        assignment[v] = false;
        let off = cut_value_prefix(graph, &assignment, v + 1);
        assignment[v] = true;
        let on = cut_value_prefix(graph, &assignment, v + 1);
        assignment[v] = on > off;
    }
    let value = cut_value(graph, &assignment);
    CutSolution { assignment, value }
}

/// Cut weight counting only edges with both endpoints among the first
/// `placed` vertices.
fn cut_value_prefix(graph: &Graph, assignment: &[bool], placed: usize) -> f64 {
    graph
        .edges()
        .iter()
        .filter(|&&(u, v, _)| u < placed && v < placed)
        .map(|&(u, v, w)| {
            if assignment[u] != assignment[v] {
                w
            } else {
                0.0
            }
        })
        .sum()
}

/// Single-flip local search from a random start: repeatedly flip the vertex
/// that most improves the cut until no single flip improves it.
pub fn local_search(graph: &Graph, seed: u64) -> CutSolution {
    let n = graph.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut assignment: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
    let mut value = cut_value(graph, &assignment);
    loop {
        let mut best_gain = 0.0;
        let mut best_vertex = None;
        for v in 0..n {
            let gain = flip_gain(graph, &assignment, v);
            if gain > best_gain + 1e-12 {
                best_gain = gain;
                best_vertex = Some(v);
            }
        }
        match best_vertex {
            Some(v) => {
                assignment[v] = !assignment[v];
                value += best_gain;
            }
            None => break,
        }
    }
    CutSolution { assignment, value }
}

/// Change in cut weight if vertex `v` flips sides.
fn flip_gain(graph: &Graph, assignment: &[bool], v: usize) -> f64 {
    graph
        .edges()
        .iter()
        .filter(|&&(a, b, _)| a == v || b == v)
        .map(|&(a, b, w)| {
            let other = if a == v { b } else { a };
            if assignment[v] != assignment[other] {
                -w
            } else {
                w
            }
        })
        .sum()
}

/// Best of `restarts` local searches (the strongest cheap classical baseline
/// used in the ablation benches).
pub fn multi_start_local_search(graph: &Graph, restarts: usize, seed: u64) -> CutSolution {
    (0..restarts)
        .map(|i| local_search(graph, seed.wrapping_add(i as u64)))
        .max_by(|a, b| a.value.partial_cmp(&b.value).unwrap())
        .unwrap_or(CutSolution {
            assignment: vec![false; graph.num_nodes()],
            value: 0.0,
        })
}

/// Expected cut of uniformly random assignments (analytically W/2) —
/// the floor any quantum heuristic has to beat.
pub fn random_baseline_expectation(graph: &Graph) -> f64 {
    graph.total_weight() / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, cycle, random_gnp};

    #[test]
    fn c4_optimum_is_four_with_alternating_cuts() {
        // The paper's instance: optimal cut assignments 1010 and 0101, value 4.
        let g = cycle(4);
        let (best, winners) = all_optimal_bitstrings(&g);
        assert_eq!(best, 4.0);
        assert!(winners.contains(&"1010".to_string()));
        assert!(winners.contains(&"0101".to_string()));
        assert_eq!(winners.len(), 2);
    }

    #[test]
    fn cut_value_matches_manual_count() {
        let g = cycle(4);
        assert_eq!(cut_value_of_bitstring(&g, "1010"), 4.0);
        assert_eq!(cut_value_of_bitstring(&g, "0101"), 4.0);
        assert_eq!(cut_value_of_bitstring(&g, "1100"), 2.0);
        assert_eq!(cut_value_of_bitstring(&g, "0000"), 0.0);
        assert_eq!(cut_value_of_bitstring(&g, "1111"), 0.0);
    }

    #[test]
    fn odd_cycle_optimum() {
        // C5 max cut is 4 (one edge uncut).
        let g = cycle(5);
        assert_eq!(brute_force(&g).value, 4.0);
    }

    #[test]
    fn complete_graph_optimum() {
        // K4: best bipartition 2+2 cuts 4 edges.
        let g = complete(4);
        assert_eq!(brute_force(&g).value, 4.0);
    }

    #[test]
    fn greedy_reaches_optimum_on_c4() {
        let g = cycle(4);
        assert_eq!(greedy(&g).value, 4.0);
    }

    #[test]
    fn local_search_reaches_optimum_on_c4() {
        // Single-flip local search can legitimately stall on C4's zero-gain
        // plateaus (e.g. 0011), so assert the multi-start guarantee instead
        // of betting on any one random start.
        let g = cycle(4);
        for seed in 0..5 {
            assert_eq!(multi_start_local_search(&g, 8, seed).value, 4.0);
        }
    }

    #[test]
    fn local_search_never_beats_brute_force() {
        for seed in 0..3 {
            let g = random_gnp(10, 0.5, seed);
            let exact = brute_force(&g).value;
            let heuristic = multi_start_local_search(&g, 8, seed).value;
            assert!(heuristic <= exact + 1e-9);
            // Multi-start local search is strong on 10 nodes; expect ≥ 90 %.
            if exact > 0.0 {
                assert!(
                    heuristic >= 0.9 * exact,
                    "seed {seed}: {heuristic} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn random_baseline_is_half_total_weight() {
        let g = cycle(4);
        assert_eq!(random_baseline_expectation(&g), 2.0);
    }

    #[test]
    fn solution_bitstring_format() {
        let sol = CutSolution {
            assignment: vec![true, false, true, false],
            value: 4.0,
        };
        assert_eq!(sol.bitstring(), "1010");
    }

    #[test]
    #[should_panic(expected = "assignment length")]
    fn wrong_assignment_length_panics() {
        cut_value(&cycle(4), &[true, false]);
    }

    #[test]
    fn flip_gain_consistency() {
        let g = random_gnp(8, 0.6, 11);
        let assignment: Vec<bool> = (0..8).map(|i| i % 3 == 0).collect();
        let before = cut_value(&g, &assignment);
        for v in 0..8 {
            let gain = flip_gain(&g, &assignment, v);
            let mut flipped = assignment.clone();
            flipped[v] = !flipped[v];
            let after = cut_value(&g, &flipped);
            assert!((after - before - gain).abs() < 1e-9);
        }
    }
}
