//! Ising and QUBO formulations of Max-Cut.
//!
//! The paper's annealing path (§5) emits "a single ISING_PROBLEM descriptor
//! (equivalently a QUBO/BQM) specifying (h, J)": for Max-Cut with uniform
//! weights, h is the zero vector and J carries the edge weights. This module
//! produces exactly that formulation and provides the energy/cut conversions
//! used when decoding samples.
//!
//! # Conventions
//!
//! * Spins s_i ∈ {−1, +1}; Boolean readout `0 ↦ +1`, `1 ↦ −1` (paper §5).
//! * Ising energy E(s) = Σ_i h_i s_i + Σ_{i<j} J_ij s_i s_j.
//! * For Max-Cut, J_ij = w_ij and h = 0, so
//!   cut(s) = (W_total − E(s)) / 2 and the optimal cut minimizes the energy.

use serde::{Deserialize, Serialize};

use crate::graph::Graph;

/// An Ising problem (h, J) over n spins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsingProblem {
    /// Linear fields h_i, one per spin.
    pub h: Vec<f64>,
    /// Pairwise couplings as (i, j, J_ij) with i < j.
    pub j: Vec<(usize, usize, f64)>,
}

impl IsingProblem {
    /// Number of spins.
    pub fn num_spins(&self) -> usize {
        self.h.len()
    }

    /// Ising energy of a spin assignment (each entry ±1).
    pub fn energy(&self, spins: &[i8]) -> f64 {
        assert_eq!(
            spins.len(),
            self.h.len(),
            "spin vector has the wrong length"
        );
        let linear: f64 = self
            .h
            .iter()
            .zip(spins)
            .map(|(h, &s)| h * f64::from(s))
            .sum();
        let quadratic: f64 = self
            .j
            .iter()
            .map(|&(i, k, j)| j * f64::from(spins[i]) * f64::from(spins[k]))
            .sum();
        linear + quadratic
    }

    /// The ground-state energy by exhaustive enumeration (≤ 24 spins).
    pub fn brute_force_ground_energy(&self) -> f64 {
        let n = self.num_spins();
        assert!(n <= 24, "brute force is limited to 24 spins");
        let mut best = f64::INFINITY;
        for mask in 0u64..(1u64 << n) {
            let spins: Vec<i8> = (0..n)
                .map(|i| if (mask >> i) & 1 == 1 { -1 } else { 1 })
                .collect();
            best = best.min(self.energy(&spins));
        }
        best
    }
}

/// Max-Cut → Ising: h = 0, J_ij = w_ij. Minimizing the Ising energy maximizes
/// the cut.
pub fn maxcut_to_ising(graph: &Graph) -> IsingProblem {
    IsingProblem {
        h: vec![0.0; graph.num_nodes()],
        j: graph.edges().to_vec(),
    }
}

/// Cut weight corresponding to an Ising energy for a Max-Cut-derived problem:
/// cut = (W_total − E) / 2.
pub fn energy_to_cut(graph: &Graph, energy: f64) -> f64 {
    (graph.total_weight() - energy) / 2.0
}

/// Cut weight of a spin assignment for a Max-Cut-derived problem.
pub fn spins_to_cut(graph: &Graph, spins: &[i8]) -> f64 {
    let ising = maxcut_to_ising(graph);
    energy_to_cut(graph, ising.energy(spins))
}

/// Convert Boolean labels (the middle layer's AS_BOOL readout) to spins using
/// the paper's convention 0 ↦ +1, 1 ↦ −1.
pub fn bools_to_spins(bits: &[bool]) -> Vec<i8> {
    bits.iter().map(|&b| if b { -1 } else { 1 }).collect()
}

/// A QUBO problem: minimize xᵀ Q x over x ∈ {0,1}ⁿ, with Q upper-triangular
/// (diagonal = linear terms).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuboProblem {
    /// Number of binary variables.
    pub num_vars: usize,
    /// Q entries as (i, j, q_ij) with i ≤ j; i == j are linear terms.
    pub q: Vec<(usize, usize, f64)>,
    /// Constant offset added to every objective value.
    pub offset: f64,
}

impl QuboProblem {
    /// Objective value of a binary assignment.
    pub fn objective(&self, x: &[bool]) -> f64 {
        assert_eq!(x.len(), self.num_vars, "assignment has the wrong length");
        self.offset
            + self
                .q
                .iter()
                .map(|&(i, j, q)| if x[i] && x[j] { q } else { 0.0 })
                .sum::<f64>()
    }
}

/// Max-Cut → QUBO (minimization form): minimizing
/// Σ_(i,j) w_ij (2 x_i x_j − x_i − x_j) is equivalent to maximizing the cut;
/// the objective value equals −cut(x).
pub fn maxcut_to_qubo(graph: &Graph) -> QuboProblem {
    let mut q = Vec::new();
    let mut linear = vec![0.0; graph.num_nodes()];
    for &(i, j, w) in graph.edges() {
        q.push((i, j, 2.0 * w));
        linear[i] -= w;
        linear[j] -= w;
    }
    for (i, &l) in linear.iter().enumerate() {
        if l != 0.0 {
            q.push((i, i, l));
        }
    }
    q.sort_by_key(|&(i, j, _)| (i, j));
    QuboProblem {
        num_vars: graph.num_nodes(),
        q,
        offset: 0.0,
    }
}

/// Ising ↔ QUBO equivalence: convert an Ising problem to the QUBO over
/// x_i = (1 − s_i)/2 with the same ordering of optima.
pub fn ising_to_qubo(ising: &IsingProblem) -> QuboProblem {
    // s_i = 1 − 2 x_i. Substitute into E(s) = Σ h_i s_i + Σ J_ij s_i s_j.
    let n = ising.num_spins();
    let mut linear = vec![0.0; n];
    let mut quadratic = Vec::new();
    let mut offset = 0.0;

    for (i, &h) in ising.h.iter().enumerate() {
        // h_i s_i = h_i (1 − 2 x_i)
        offset += h;
        linear[i] += -2.0 * h;
    }
    for &(i, j, jij) in &ising.j {
        // J s_i s_j = J (1 − 2x_i)(1 − 2x_j) = J (1 − 2x_i − 2x_j + 4x_i x_j)
        offset += jij;
        linear[i] += -2.0 * jij;
        linear[j] += -2.0 * jij;
        quadratic.push((i, j, 4.0 * jij));
    }

    let mut q = quadratic;
    for (i, &l) in linear.iter().enumerate() {
        if l != 0.0 {
            q.push((i, i, l));
        }
    }
    q.sort_by_key(|&(i, j, _)| (i, j));
    QuboProblem {
        num_vars: n,
        q,
        offset,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle, random_weighted_gnp};
    use crate::maxcut::{brute_force, cut_value};

    #[test]
    fn c4_ising_matches_paper_description() {
        // "h is the zero vector and J is a symmetric 4×4 matrix with unit
        // couplings on edges (0,1),(1,2),(2,3),(3,0)".
        let ising = maxcut_to_ising(&cycle(4));
        assert_eq!(ising.h, vec![0.0; 4]);
        let mut edges: Vec<(usize, usize)> = ising.j.iter().map(|&(i, j, _)| (i, j)).collect();
        edges.sort();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
        assert!(ising.j.iter().all(|&(_, _, w)| w == 1.0));
    }

    #[test]
    fn optimal_cut_minimizes_energy() {
        let g = cycle(4);
        let ising = maxcut_to_ising(&g);
        // 1010 ⇒ spins (-1, +1, -1, +1): every edge anti-aligned, E = -4.
        let spins = bools_to_spins(&[true, false, true, false]);
        assert_eq!(ising.energy(&spins), -4.0);
        assert_eq!(energy_to_cut(&g, -4.0), 4.0);
        assert_eq!(ising.brute_force_ground_energy(), -4.0);
    }

    #[test]
    fn energy_cut_relation_holds_for_all_assignments() {
        let g = cycle(5);
        let ising = maxcut_to_ising(&g);
        for mask in 0u32..32 {
            let bits: Vec<bool> = (0..5).map(|i| (mask >> i) & 1 == 1).collect();
            let spins = bools_to_spins(&bits);
            let via_energy = energy_to_cut(&g, ising.energy(&spins));
            let direct = cut_value(&g, &bits);
            assert!((via_energy - direct).abs() < 1e-9, "mask {mask}");
        }
    }

    #[test]
    fn qubo_objective_is_negative_cut() {
        let g = cycle(4);
        let qubo = maxcut_to_qubo(&g);
        for mask in 0u32..16 {
            let bits: Vec<bool> = (0..4).map(|i| (mask >> i) & 1 == 1).collect();
            let obj = qubo.objective(&bits);
            let cut = cut_value(&g, &bits);
            assert!((obj + cut).abs() < 1e-9, "mask {mask}: {obj} vs -{cut}");
        }
    }

    #[test]
    fn ising_to_qubo_preserves_objective_up_to_transform() {
        let g = random_weighted_gnp(6, 0.7, 0.5, 2.0, 9);
        let ising = maxcut_to_ising(&g);
        let qubo = ising_to_qubo(&ising);
        for mask in 0u32..64 {
            let bits: Vec<bool> = (0..6).map(|i| (mask >> i) & 1 == 1).collect();
            let spins = bools_to_spins(&bits);
            let e_ising = ising.energy(&spins);
            let e_qubo = qubo.objective(&bits);
            assert!((e_ising - e_qubo).abs() < 1e-9, "mask {mask}");
        }
    }

    #[test]
    fn ground_energy_matches_brute_force_cut() {
        let g = random_weighted_gnp(8, 0.6, 0.5, 1.5, 21);
        let ising = maxcut_to_ising(&g);
        let ground = ising.brute_force_ground_energy();
        let best_cut = brute_force(&g).value;
        assert!((energy_to_cut(&g, ground) - best_cut).abs() < 1e-9);
    }

    #[test]
    fn spins_to_cut_helper() {
        let g = cycle(4);
        assert_eq!(spins_to_cut(&g, &[-1, 1, -1, 1]), 4.0);
        assert_eq!(spins_to_cut(&g, &[1, 1, 1, 1]), 0.0);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn wrong_spin_length_panics() {
        maxcut_to_ising(&cycle(4)).energy(&[1, -1]);
    }
}
