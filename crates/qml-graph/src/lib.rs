//! # qml-graph — graphs, Max-Cut, and classical baselines
//!
//! Problem substrate for the middle layer's proof-of-concept workloads
//! (paper §5): undirected weighted graphs, workload generators (the 4-node
//! cycle of Figs. 2–3 and the larger families used in the ablation benches),
//! the Max-Cut objective with exact and heuristic classical baselines, and the
//! Ising/QUBO formulations consumed by the annealing path.

#![warn(missing_docs)]
#![warn(clippy::print_stdout, clippy::print_stderr)]
#![forbid(unsafe_code)]

pub mod generators;
pub mod graph;
pub mod ising;
pub mod maxcut;

pub use generators::{complete, cycle, grid, path, random_gnp, random_weighted_gnp};
pub use graph::Graph;
pub use ising::{
    bools_to_spins, energy_to_cut, ising_to_qubo, maxcut_to_ising, maxcut_to_qubo, spins_to_cut,
    IsingProblem, QuboProblem,
};
pub use maxcut::{
    all_optimal_bitstrings, brute_force, cut_value, cut_value_of_bitstring, greedy, local_search,
    multi_start_local_search, random_baseline_expectation, CutSolution,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The cut value of any assignment never exceeds the total weight and
        /// is symmetric under complementing the assignment.
        #[test]
        fn cut_bounds_and_symmetry(n in 3usize..10, p in 0.1f64..0.9, seed in 0u64..50, mask in 0u64..1024) {
            let g = random_gnp(n, p, seed);
            let bits: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 == 1).collect();
            let complement: Vec<bool> = bits.iter().map(|b| !b).collect();
            let cut = cut_value(&g, &bits);
            prop_assert!(cut >= 0.0);
            prop_assert!(cut <= g.total_weight() + 1e-9);
            prop_assert!((cut - cut_value(&g, &complement)).abs() < 1e-9);
        }

        /// Ising energy and cut value always satisfy cut = (W − E)/2.
        #[test]
        fn ising_energy_cut_duality(n in 3usize..9, p in 0.2f64..0.9, seed in 0u64..50, mask in 0u64..512) {
            let g = random_gnp(n, p, seed);
            let ising = maxcut_to_ising(&g);
            let bits: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 == 1).collect();
            let spins = bools_to_spins(&bits);
            let via_energy = energy_to_cut(&g, ising.energy(&spins));
            prop_assert!((via_energy - cut_value(&g, &bits)).abs() < 1e-9);
        }

        /// Heuristics never beat the exact optimum and greedy is at least half
        /// of it (classical guarantee for Max-Cut).
        #[test]
        fn heuristics_bounded_by_optimum(n in 4usize..10, seed in 0u64..30) {
            let g = random_gnp(n, 0.5, seed);
            let exact = brute_force(&g).value;
            let greedy_value = greedy(&g).value;
            let ls_value = local_search(&g, seed).value;
            prop_assert!(greedy_value <= exact + 1e-9);
            prop_assert!(ls_value <= exact + 1e-9);
            prop_assert!(greedy_value + 1e-9 >= exact / 2.0);
        }
    }
}
