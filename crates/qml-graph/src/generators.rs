//! Workload generators: the graph families used by the paper's proof of
//! concept and by the extended benchmark sweeps.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::Graph;

/// The paper's §5 instance: the n-node cycle C_n with uniform weight 1.
/// `cycle(4)` is the exact Max-Cut instance of Figs. 2 and 3.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    edges.push((n - 1, 0));
    Graph::from_edges(n, &edges)
}

/// A simple path 0-1-...-(n-1) with uniform weight 1.
pub fn path(n: usize) -> Graph {
    assert!(n >= 2, "a path needs at least 2 vertices");
    let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    Graph::from_edges(n, &edges)
}

/// The complete graph K_n with uniform weight 1.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v, 1.0);
        }
    }
    g
}

/// A rows×cols grid graph with uniform weight 1.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let idx = |r: usize, c: usize| r * cols + c;
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(idx(r, c), idx(r, c + 1), 1.0);
            }
            if r + 1 < rows {
                g.add_edge(idx(r, c), idx(r + 1, c), 1.0);
            }
        }
    }
    g
}

/// Erdős–Rényi G(n, p) with uniform weight 1 and a deterministic seed.
pub fn random_gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!(
        (0.0..=1.0).contains(&p),
        "edge probability must lie in [0,1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen::<f64>() < p {
                g.add_edge(u, v, 1.0);
            }
        }
    }
    g
}

/// Erdős–Rényi G(n, p) with uniformly random weights in `[w_min, w_max]`.
pub fn random_weighted_gnp(n: usize, p: f64, w_min: f64, w_max: f64, seed: u64) -> Graph {
    assert!(w_min <= w_max, "weight range must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen::<f64>() < p {
                let w = rng.gen_range(w_min..=w_max);
                g.add_edge(u, v, w);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle4_is_the_paper_instance() {
        let g = cycle(4);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.edge_list(), vec![(0, 1), (1, 2), (2, 3), (0, 3)]);
        assert!(g.edges().iter().all(|&(_, _, w)| w == 1.0));
    }

    #[test]
    fn cycle_degrees_are_two() {
        let g = cycle(7);
        for v in 0..7 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn path_has_n_minus_one_edges() {
        let g = path(6);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(3), 2);
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 6 * 5 / 2);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn grid_edge_count() {
        let g = grid(3, 4);
        // 3 rows × 3 horizontal + 2×4 vertical = 9 + 8 = 17
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
    }

    #[test]
    fn gnp_extremes() {
        assert!(random_gnp(10, 0.0, 1).is_empty());
        assert_eq!(random_gnp(10, 1.0, 1).num_edges(), 45);
    }

    #[test]
    fn gnp_is_deterministic_per_seed() {
        let a = random_gnp(12, 0.4, 7);
        let b = random_gnp(12, 0.4, 7);
        let c = random_gnp(12, 0.4, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn weighted_gnp_weights_in_range() {
        let g = random_weighted_gnp(10, 0.8, 0.5, 2.5, 3);
        assert!(!g.is_empty());
        for &(_, _, w) in g.edges() {
            assert!((0.5..=2.5).contains(&w));
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_panics() {
        cycle(2);
    }
}
