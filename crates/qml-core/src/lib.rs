//! # qml — an HPC-inspired, technology-agnostic quantum middle layer
//!
//! `qml-core` is the facade crate of the workspace reproducing *"An
//! HPC-Inspired Blueprint for a Technology-Agnostic Quantum Middle Layer"*
//! (Markidis, Netzer, Pennati, Peng — SC Workshops '25). It re-exports every
//! layer of the stack so applications can depend on a single crate:
//!
//! | Layer | Crate | Paper section |
//! |-------|-------|---------------|
//! | Typed data / operator / context descriptors, job bundles | [`types`] | §4.1–§4.4 |
//! | Algorithmic libraries (QFT, QAOA, Ising, arithmetic, state prep) | [`algorithms`] | §4.4 |
//! | Graphs, Max-Cut, classical baselines | [`graph`] | §5 |
//! | State-vector simulator (Aer substitute) | [`sim`] | §5 |
//! | Transpiler: basis, routing, optimization | [`transpile`] | §4.3 |
//! | BQM + simulated annealer (Ocean substitute) | [`anneal`] | §5 |
//! | QEC context service | [`qec`] | §4.3.2 |
//! | Gate + annealing backends | [`backends`] | §5 |
//! | Registry, scheduler, job runtime, context services | [`runtime`] | §2, §4.3.1 |
//! | Batch service: sweeps, work stealing, transpile cache | [`service`] | §2 |
//!
//! ## Quickstart
//!
//! ```
//! use qml_core::prelude::*;
//!
//! // 1. Intent: the paper's Max-Cut instance as a typed QAOA program.
//! let graph = qml_core::graph::cycle(4);
//! let bundle = qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))?;
//!
//! // 2. Policy: a gate-simulator context (swap this to re-target the program).
//! let job = bundle.with_context(ContextDescriptor::for_gate(
//!     ExecConfig::new("gate.aer_simulator").with_samples(1024).with_seed(42),
//! ));
//!
//! // 3. Execution through the runtime's scheduler.
//! let runtime = Runtime::with_default_backends();
//! let id = runtime.submit(job)?;
//! let result = runtime.run_job(id)?;
//! assert_eq!(result.shots, 1024);
//! # Ok::<(), qml_core::types::QmlError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::print_stdout, clippy::print_stderr)]
#![forbid(unsafe_code)]

/// Algorithmic libraries emitting operator descriptor sequences.
pub use qml_algorithms as algorithms;
/// Binary quadratic models and the simulated annealer (the Ocean substitute).
pub use qml_anneal as anneal;
/// Gate-model and annealing backends.
pub use qml_backends as backends;
/// Graphs, Max-Cut, and classical baselines.
pub use qml_graph as graph;
/// Error correction as an orthogonal context service.
pub use qml_qec as qec;
/// Backend registry, scheduler, job runtime, and context services.
pub use qml_runtime as runtime;
/// Multi-tenant batch-execution service: sweeps, work-stealing pool, caches.
pub use qml_service as service;
/// Dense state-vector simulator (the Qiskit Aer substitute).
pub use qml_sim as sim;
/// Basis translation, routing, and optimization passes.
pub use qml_transpile as transpile;
/// Typed descriptors: quantum data types, operators, contexts, job bundles.
pub use qml_types as types;

/// One-stop prelude for applications.
pub mod prelude {
    pub use qml_algorithms::{
        ising_register, maxcut_ising_program, qaoa_maxcut_program, qft_program, QaoaAngles,
        QaoaSchedule, QftParams, RING_P1_ANGLES,
    };
    pub use qml_backends::{AnnealBackend, Backend, ExecutionResult, GateBackend};
    pub use qml_runtime::{BackendRegistry, Runtime, Scheduler};
    pub use qml_service::{QmlService, SweepRequest};
    pub use qml_types::prelude::*;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_the_full_pipeline() {
        let graph = qml_graph::cycle(4);
        let bundle =
            qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap();
        let runtime = Runtime::with_default_backends();
        let id = runtime
            .submit(
                bundle.with_context(ContextDescriptor::for_gate(
                    ExecConfig::new("gate.aer_simulator")
                        .with_samples(256)
                        .with_seed(7),
                )),
            )
            .unwrap();
        let result = runtime.run_job(id).unwrap();
        assert_eq!(result.shots, 256);
    }
}
