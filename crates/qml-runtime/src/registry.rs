//! Backend registry and cost-hint based scheduling.
//!
//! The paper's motivational example argues that without cost metadata "a
//! scheduler cannot choose an appropriate backend and topology" (§2). The
//! [`BackendRegistry`] holds every available backend; the [`Scheduler`] picks
//! one for a bundle — honouring an explicit engine request from the context
//! when present, and otherwise ranking candidate backends by the bundle's
//! aggregated cost hints (the HPC-scheduler analogy).

use std::sync::Arc;

use qml_backends::Backend;
use qml_types::{JobBundle, QmlError, RepKind, Result};

/// A shared, thread-safe collection of registered backends.
#[derive(Clone, Default)]
pub struct BackendRegistry {
    backends: Vec<Arc<dyn Backend>>,
}

impl std::fmt::Debug for BackendRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendRegistry")
            .field("backends", &self.names())
            .finish()
    }
}

impl BackendRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        BackendRegistry::default()
    }

    /// A registry with the two built-in backends (gate simulator + annealer).
    pub fn with_default_backends() -> Self {
        let mut registry = BackendRegistry::new();
        registry.register(Arc::new(qml_backends::GateBackend::new()));
        registry.register(Arc::new(qml_backends::AnnealBackend::new()));
        registry
    }

    /// Register a backend.
    pub fn register(&mut self, backend: Arc<dyn Backend>) {
        self.backends.push(backend);
    }

    /// Names of all registered backends, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.backends.iter().map(|b| b.name().to_string()).collect()
    }

    /// Number of registered backends.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// True if no backend is registered.
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// All registered backends.
    pub fn backends(&self) -> &[Arc<dyn Backend>] {
        &self.backends
    }

    /// The first backend that serves the given engine identifier.
    pub fn find_for_engine(&self, engine: &str) -> Option<Arc<dyn Backend>> {
        self.backends
            .iter()
            .find(|b| b.supports_engine(engine))
            .cloned()
    }
}

/// Cost-hint based backend selection.
#[derive(Clone, Debug, Default)]
pub struct Scheduler {
    registry: BackendRegistry,
}

/// The scheduling decision: which backend will run the bundle and why.
#[derive(Clone)]
pub struct Placement {
    /// The selected backend.
    pub backend: Arc<dyn Backend>,
    /// The engine the bundle will run under.
    pub engine: String,
    /// The scheduler's cost estimate for this placement.
    pub estimated_cost: f64,
}

impl std::fmt::Debug for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Placement")
            .field("backend", &self.backend.name())
            .field("engine", &self.engine)
            .field("estimated_cost", &self.estimated_cost)
            .finish()
    }
}

impl Scheduler {
    /// A scheduler over the given registry.
    pub fn new(registry: BackendRegistry) -> Self {
        Scheduler { registry }
    }

    /// The registry this scheduler draws from.
    pub fn registry(&self) -> &BackendRegistry {
        &self.registry
    }

    /// Does a bundle's operator mix match what a backend family can realize?
    /// Annealing backends only realize `ISING_PROBLEM`; gate backends realize
    /// everything except it.
    fn family_matches(bundle: &JobBundle, backend: &Arc<dyn Backend>) -> bool {
        let has_problem = bundle
            .operators
            .iter()
            .any(|op| op.rep_kind == RepKind::IsingProblem);
        let family = backend.default_engine().split('.').next().unwrap_or("");
        match family {
            "anneal" => has_problem,
            "gate" => !has_problem,
            _ => true,
        }
    }

    /// Choose a backend for a bundle.
    ///
    /// * If the context names an engine, the first backend supporting it wins
    ///   (the user's policy is explicit; the scheduler does not second-guess).
    /// * Otherwise every family-compatible backend is ranked by
    ///   [`Backend::estimate_cost`] — the descriptor cost hints — and the
    ///   cheapest placement wins.
    pub fn place(&self, bundle: &JobBundle) -> Result<Placement> {
        if self.registry.is_empty() {
            return Err(QmlError::Unsupported("no backends registered".into()));
        }
        if let Some(engine) = bundle.context.as_ref().and_then(|c| c.engine()) {
            let backend = self.registry.find_for_engine(engine).ok_or_else(|| {
                QmlError::Unsupported(format!("no registered backend serves engine `{engine}`"))
            })?;
            let estimated_cost = backend.estimate_cost(bundle);
            return Ok(Placement {
                backend,
                engine: engine.to_string(),
                estimated_cost,
            });
        }

        let mut candidates: Vec<Placement> = self
            .registry
            .backends()
            .iter()
            .filter(|b| Self::family_matches(bundle, b))
            .map(|b| Placement {
                backend: b.clone(),
                engine: b.default_engine().to_string(),
                estimated_cost: b.estimate_cost(bundle),
            })
            .collect();
        candidates.sort_by(|a, b| a.estimated_cost.partial_cmp(&b.estimated_cost).unwrap());
        candidates.into_iter().next().ok_or_else(|| {
            QmlError::Unsupported("no registered backend can realize this bundle".into())
        })
    }

    /// Place and immediately execute a bundle.
    pub fn execute(&self, bundle: &JobBundle) -> Result<qml_backends::ExecutionResult> {
        let placement = self.place(bundle)?;
        placement.backend.execute(bundle)
    }

    /// Place and execute a bundle through a shared transpilation/lowering
    /// cache: repeated `(program, target)` submissions skip realization on
    /// cache-aware backends.
    pub fn execute_cached(
        &self,
        bundle: &JobBundle,
        cache: &qml_backends::TranspileCache,
    ) -> Result<qml_backends::ExecutionResult> {
        let placement = self.place(bundle)?;
        placement.backend.execute_cached(bundle, cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qml_algorithms::{maxcut_ising_program, qaoa_maxcut_program, QaoaSchedule, RING_P1_ANGLES};
    use qml_graph::cycle;
    use qml_types::{AnnealConfig, ContextDescriptor, ExecConfig};

    fn scheduler() -> Scheduler {
        Scheduler::new(BackendRegistry::with_default_backends())
    }

    #[test]
    fn registry_lists_default_backends() {
        let registry = BackendRegistry::with_default_backends();
        assert_eq!(registry.len(), 2);
        assert!(registry.find_for_engine("gate.aer_simulator").is_some());
        assert!(registry.find_for_engine("anneal.neal_simulator").is_some());
        assert!(registry.find_for_engine("pulse.qblox").is_none());
    }

    #[test]
    fn explicit_engine_wins() {
        let bundle = qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))
            .unwrap()
            .with_context(ContextDescriptor::for_gate(
                ExecConfig::new("gate.aer_simulator")
                    .with_samples(128)
                    .with_seed(1),
            ));
        let placement = scheduler().place(&bundle).unwrap();
        assert_eq!(placement.engine, "gate.aer_simulator");
        assert_eq!(placement.backend.name(), "qml-gate-simulator");
    }

    #[test]
    fn unknown_engine_is_an_error() {
        let bundle = qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))
            .unwrap()
            .with_context(ContextDescriptor::for_gate(ExecConfig::new("cv.gaussian")));
        assert!(matches!(
            scheduler().place(&bundle),
            Err(QmlError::Unsupported(_))
        ));
    }

    #[test]
    fn contextless_qaoa_bundle_goes_to_the_gate_backend() {
        let bundle =
            qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap();
        let placement = scheduler().place(&bundle).unwrap();
        assert_eq!(placement.backend.name(), "qml-gate-simulator");
        assert!(placement.estimated_cost > 0.0);
    }

    #[test]
    fn contextless_ising_bundle_goes_to_the_annealer() {
        let bundle = maxcut_ising_program(&cycle(4)).unwrap();
        let placement = scheduler().place(&bundle).unwrap();
        assert_eq!(placement.backend.name(), "qml-simulated-annealer");
    }

    #[test]
    fn execute_via_scheduler_round_trips() {
        let bundle =
            maxcut_ising_program(&cycle(4))
                .unwrap()
                .with_context(ContextDescriptor::for_anneal(
                    "anneal.neal_simulator",
                    AnnealConfig::with_reads(100),
                ));
        let result = scheduler().execute(&bundle).unwrap();
        assert_eq!(result.shots, 100);
        assert_eq!(result.backend, "qml-simulated-annealer");
    }

    #[test]
    fn empty_registry_rejected() {
        let empty = Scheduler::new(BackendRegistry::new());
        let bundle = maxcut_ising_program(&cycle(4)).unwrap();
        assert!(empty.place(&bundle).is_err());
    }
}
