//! A feed-while-running worker pool over a shared job source.
//!
//! [`Runtime::run_all_detailed`](crate::Runtime::run_all_detailed) is a
//! *one-shot* drain: it snapshots the queue, deals the snapshot onto
//! per-worker deques, and exits when the snapshot is exhausted — work
//! submitted mid-drain waits for the next drain. A long-running service needs
//! the opposite shape: workers that live as long as the service does and ask
//! a shared **injector** for the next job each time they go idle, so new
//! submissions are picked up immediately.
//!
//! This module provides that shape without fixing a queueing policy. The
//! injector is any [`JobSource`]: each worker repeatedly calls
//! [`JobSource::next_job`], which either hands out a queued [`JobId`]
//! ([`Feed::Job`]), asks the worker to back off briefly ([`Feed::Idle`]), or
//! tells it to exit ([`Feed::Shutdown`]). The policy — FIFO, cost-ranked,
//! deficit-round-robin across tenants — lives entirely in the source; the
//! serving tier (`qml-service`) implements fairness there.
//!
//! Executed jobs flow through the runtime's usual claim/execute path (shared
//! transpilation cache included) and are reported to an outcome sink as they
//! finish, so callers can update metrics live rather than waiting for a
//! drain to return.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crate::executor::{JobId, JobOutcome, Runtime};
use crate::registry::Placement;

/// Shortest idle back-off; doubles per consecutive idle poll up to
/// [`MAX_IDLE_BACKOFF`], so a service with no queued work converges to a
/// few source polls per worker per hundred milliseconds instead of a
/// sustained busy-spin on the source's lock.
const IDLE_BACKOFF: Duration = Duration::from_micros(500);

/// Longest idle back-off (also the worst-case extra dispatch latency a
/// long-idle service adds to the next submission).
const MAX_IDLE_BACKOFF: Duration = Duration::from_millis(10);

/// One dispatched job: its id plus the placement the source already
/// computed for it, if any (sources that rank jobs by placement cost pass
/// it along so the worker does not place the bundle a second time).
#[derive(Debug, Clone)]
pub struct JobDispatch {
    /// The job to execute.
    pub id: JobId,
    /// A placement computed at admission time, reused for execution.
    pub placement: Option<Placement>,
}

impl JobDispatch {
    /// A dispatch with no precomputed placement (the worker places).
    pub fn new(id: JobId) -> Self {
        JobDispatch {
            id,
            placement: None,
        }
    }
}

/// What a [`JobSource`] hands a worker that asked for work.
#[derive(Debug, Clone)]
pub enum Feed {
    /// Execute this queued job next.
    Job(JobDispatch),
    /// Nothing dispatchable right now; back off briefly and ask again.
    Idle,
    /// No more work will ever be dispatched; the worker should exit.
    Shutdown,
}

/// A shared injector feeding a [`WorkerPool`].
///
/// Implementations own the queueing policy: which job runs next, which
/// tenant's turn it is, whether a rate limit applies, and when the pool
/// should shut down. `next_job` is called concurrently from every worker
/// thread, so implementations synchronize internally.
pub trait JobSource: Send + Sync {
    /// Hand the calling worker its next instruction.
    fn next_job(&self, worker: usize) -> Feed;

    /// Called when a dispatched job could not be claimed (it was already
    /// executed by another path, e.g. a concurrent one-shot drain). Sources
    /// tracking in-flight counts use this to release the slot.
    fn job_skipped(&self, _id: JobId) {}
}

/// The outcome sink a pool reports finished jobs to, in completion order.
pub type OutcomeSink = dyn Fn(JobOutcome) + Send + Sync;

/// A long-lived pool of worker threads draining a shared [`JobSource`].
///
/// Workers run until the source answers [`Feed::Shutdown`]; dropping the
/// pool without [`WorkerPool::join`] detaches the threads (they still exit
/// on the next `Shutdown` answer).
pub struct WorkerPool {
    handles: Vec<thread::JoinHandle<usize>>,
}

impl WorkerPool {
    /// Spawn `workers` threads executing jobs from `source` on `runtime`,
    /// reporting each finished job to `sink`.
    ///
    /// Every dispatched job goes through the runtime's atomic claim, so a
    /// pool can coexist with one-shot drains and manual
    /// [`Runtime::run_job`] calls without double-executing anything.
    pub fn spawn(
        runtime: &Arc<Runtime>,
        workers: usize,
        source: Arc<dyn JobSource>,
        sink: Arc<OutcomeSink>,
    ) -> WorkerPool {
        let handles = (0..workers.max(1))
            .map(|worker| {
                let runtime = Arc::clone(runtime);
                let source = Arc::clone(&source);
                let sink = Arc::clone(&sink);
                thread::Builder::new()
                    .name(format!("qml-worker-{worker}"))
                    .spawn(move || worker_loop(worker, &runtime, &source, &sink))
                    .expect("failed to spawn pool worker thread")
            })
            .collect();
        WorkerPool { handles }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Wait for every worker to exit (the source must answer
    /// [`Feed::Shutdown`] eventually). Returns the total number of jobs the
    /// pool executed.
    pub fn join(self) -> usize {
        self.handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .sum()
    }
}

fn worker_loop(
    worker: usize,
    runtime: &Arc<Runtime>,
    source: &Arc<dyn JobSource>,
    sink: &Arc<OutcomeSink>,
) -> usize {
    let mut executed = 0usize;
    let mut idle_backoff = IDLE_BACKOFF;
    loop {
        match source.next_job(worker) {
            Feed::Shutdown => break,
            Feed::Idle => {
                thread::sleep(idle_backoff);
                idle_backoff = (idle_backoff * 2).min(MAX_IDLE_BACKOFF);
            }
            Feed::Job(JobDispatch { id, placement }) => {
                idle_backoff = IDLE_BACKOFF;
                // A concurrent drain may have raced us to this job; a lost
                // claim releases the source's in-flight slot and moves on.
                let Ok(Some(bundle)) = runtime.claim(id) else {
                    source.job_skipped(id);
                    continue;
                };
                let placement = placement.or_else(|| runtime.scheduler().place(&bundle).ok());
                let started = Instant::now();
                let result = runtime.execute_claimed(id, bundle, placement.as_ref());
                let duration = started.elapsed();
                // Attribute the job to its placed backend even when the
                // execution itself failed.
                let backend = result
                    .as_ref()
                    .ok()
                    .map(|r| r.backend.clone())
                    .or_else(|| placement.as_ref().map(|p| p.backend.name().to_string()));
                executed += 1;
                sink(JobOutcome {
                    id,
                    result,
                    backend,
                    duration,
                    worker,
                    stolen: false,
                });
            }
        }
    }
    executed
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use qml_algorithms::{qaoa_maxcut_program, QaoaSchedule, RING_P1_ANGLES};
    use qml_graph::cycle;
    use qml_types::{ContextDescriptor, ExecConfig, JobBundle};
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn gate_bundle(seed: u64) -> JobBundle {
        qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))
            .unwrap()
            .with_context(ContextDescriptor::for_gate(
                ExecConfig::new("gate.aer_simulator")
                    .with_samples(32)
                    .with_seed(seed),
            ))
    }

    /// A FIFO source that keeps feeding until told to stop, then shuts the
    /// pool down once its queue is empty.
    struct FifoSource {
        queue: Mutex<VecDeque<JobId>>,
        stopping: AtomicBool,
    }

    impl FifoSource {
        fn new() -> Self {
            FifoSource {
                queue: Mutex::new(VecDeque::new()),
                stopping: AtomicBool::new(false),
            }
        }

        fn push(&self, id: JobId) {
            self.queue.lock().push_back(id);
        }
    }

    impl JobSource for FifoSource {
        fn next_job(&self, _worker: usize) -> Feed {
            if let Some(id) = self.queue.lock().pop_front() {
                return Feed::Job(JobDispatch::new(id));
            }
            if self.stopping.load(Ordering::SeqCst) {
                Feed::Shutdown
            } else {
                Feed::Idle
            }
        }
    }

    #[test]
    fn pool_executes_jobs_fed_while_running() {
        let runtime = Arc::new(Runtime::with_default_backends());
        let source = Arc::new(FifoSource::new());
        let completed = Arc::new(Mutex::new(Vec::new()));
        let sink = {
            let completed = Arc::clone(&completed);
            Arc::new(move |outcome: JobOutcome| {
                completed.lock().push((outcome.id, outcome.result.is_ok()));
            })
        };
        let pool = WorkerPool::spawn(&runtime, 2, source.clone(), sink);

        // Feed jobs *after* the pool is already running.
        let mut ids = Vec::new();
        for seed in 0..6 {
            let id = runtime.submit(gate_bundle(seed)).unwrap();
            source.push(id);
            ids.push(id);
        }
        source.stopping.store(true, Ordering::SeqCst);
        let executed = pool.join();

        assert_eq!(executed, 6);
        let mut seen: Vec<JobId> = completed.lock().iter().map(|(id, _)| *id).collect();
        seen.sort();
        assert_eq!(seen, ids);
        assert!(completed.lock().iter().all(|(_, ok)| *ok));
    }

    #[test]
    fn already_executed_jobs_are_skipped_not_failed() {
        let runtime = Arc::new(Runtime::with_default_backends());
        let source = Arc::new(FifoSource::new());
        let id = runtime.submit(gate_bundle(1)).unwrap();
        // Execute through the one-shot path first; the pool must then skip.
        runtime.run_job(id).unwrap();
        source.push(id);
        source.stopping.store(true, Ordering::SeqCst);
        let sink = Arc::new(|_outcome: JobOutcome| {});
        let executed = WorkerPool::spawn(&runtime, 1, source, sink).join();
        assert_eq!(executed, 0, "stale dispatch is skipped, not re-run");
    }

    #[test]
    fn shutdown_with_empty_source_exits_immediately() {
        let runtime = Arc::new(Runtime::with_default_backends());
        let source = Arc::new(FifoSource::new());
        source.stopping.store(true, Ordering::SeqCst);
        let pool = WorkerPool::spawn(&runtime, 3, source, Arc::new(|_| {}));
        assert_eq!(pool.workers(), 3);
        assert_eq!(pool.join(), 0);
    }
}
