//! A feed-while-running worker pool over a shared job source.
//!
//! [`Runtime::run_all_detailed`](crate::Runtime::run_all_detailed) is a
//! *one-shot* drain: it snapshots the queue, deals the snapshot onto
//! per-worker deques, and exits when the snapshot is exhausted — work
//! submitted mid-drain waits for the next drain. A long-running service needs
//! the opposite shape: workers that live as long as the service does and ask
//! a shared **injector** for the next job each time they go idle, so new
//! submissions are picked up immediately.
//!
//! This module provides that shape without fixing a queueing policy. The
//! injector is any [`JobSource`]: each worker repeatedly calls
//! [`JobSource::next_job`], which either hands out a queued [`JobId`]
//! ([`Feed::Job`]), asks the worker to back off briefly ([`Feed::Idle`]), or
//! tells it to exit ([`Feed::Shutdown`]). The policy — FIFO, cost-ranked,
//! deficit-round-robin across tenants — lives entirely in the source; the
//! serving tier (`qml-service`) implements fairness there.
//!
//! Executed jobs flow through the runtime's usual claim/execute path (shared
//! transpilation cache included) and are reported to an outcome sink as they
//! finish, so callers can update metrics live rather than waiting for a
//! drain to return.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use qml_types::ServiceClass;

use crate::executor::{JobId, JobOutcome, Runtime};
use crate::registry::Placement;

/// Shortest idle back-off; doubles per consecutive idle poll up to
/// [`MAX_IDLE_BACKOFF`], so a service with no queued work converges to a
/// few source polls per worker per hundred milliseconds instead of a
/// sustained busy-spin on the source's lock.
const IDLE_BACKOFF: Duration = Duration::from_micros(500);

/// Longest idle back-off (also the worst-case extra dispatch latency a
/// long-idle service adds to the next submission).
const MAX_IDLE_BACKOFF: Duration = Duration::from_millis(10);

/// One dispatched unit of work: a head job, optionally coalesced with
/// further plan-compatible jobs (a **micro-batch**), plus the placement the
/// source already computed for it, if any (sources that rank jobs by
/// placement cost pass it along so the worker does not place the bundle a
/// second time).
#[derive(Debug, Clone)]
pub struct JobDispatch {
    /// The (head) job to execute.
    pub id: JobId,
    /// Additional jobs coalesced into this dispatch by the source. All
    /// members share the head's backend and realization-plan key, so the
    /// worker executes `[id, rest...]` through one
    /// [`Backend::execute_batch`](qml_backends::Backend::execute_batch)
    /// call; outcomes reach the sink per member, in this order.
    pub rest: Vec<JobId>,
    /// A placement computed at admission time, reused for execution (and
    /// shared by every batched member).
    pub placement: Option<Placement>,
    /// The fleet device this dispatch was routed to, if the source routes at
    /// device granularity. Echoed back on every member's [`JobOutcome`] so
    /// the source can settle the right device's health and gauges; the
    /// runtime itself is device-blind.
    pub device: Option<Arc<str>>,
    /// The service class the source dispatched this batch under. The batch
    /// was already formed under that class's cap — the field lets workers
    /// and backends attribute the work (e.g. prioritized draining) without
    /// re-deriving policy.
    pub class: ServiceClass,
}

impl JobDispatch {
    /// A solo dispatch with no precomputed placement (the worker places).
    pub fn new(id: JobId) -> Self {
        JobDispatch {
            id,
            rest: Vec::new(),
            placement: None,
            device: None,
            class: ServiceClass::Throughput,
        }
    }

    /// Every job in this dispatch: the head, then the coalesced members.
    pub fn ids(&self) -> impl Iterator<Item = JobId> + '_ {
        std::iter::once(self.id).chain(self.rest.iter().copied())
    }

    /// Number of jobs in this dispatch (head + coalesced members).
    pub fn len(&self) -> usize {
        1 + self.rest.len()
    }

    /// Always false: a dispatch carries at least its head job. Provided for
    /// `len`/`is_empty` symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// What a [`JobSource`] hands a worker that asked for work.
#[derive(Debug, Clone)]
pub enum Feed {
    /// Execute this queued job next.
    Job(JobDispatch),
    /// Nothing dispatchable right now; back off briefly and ask again.
    Idle,
    /// No more work will ever be dispatched; the worker should exit.
    Shutdown,
}

/// A shared injector feeding a [`WorkerPool`].
///
/// Implementations own the queueing policy: which job runs next, which
/// tenant's turn it is, whether a rate limit applies, and when the pool
/// should shut down. `next_job` is called concurrently from every worker
/// thread, so implementations synchronize internally.
pub trait JobSource: Send + Sync {
    /// Hand the calling worker its next instruction.
    fn next_job(&self, worker: usize) -> Feed;

    /// Called when a dispatched job could not be claimed (it was already
    /// executed by another path, e.g. a concurrent one-shot drain). Sources
    /// tracking in-flight counts use this to release the slot.
    fn job_skipped(&self, _id: JobId) {}
}

/// The outcome sink a pool reports finished jobs to, in completion order.
pub type OutcomeSink = dyn Fn(JobOutcome) + Send + Sync;

/// A long-lived pool of worker threads draining a shared [`JobSource`].
///
/// Workers run until the source answers [`Feed::Shutdown`]; dropping the
/// pool without [`WorkerPool::join`] detaches the threads (they still exit
/// on the next `Shutdown` answer).
pub struct WorkerPool {
    handles: Vec<thread::JoinHandle<usize>>,
}

impl WorkerPool {
    /// Spawn `workers` threads executing jobs from `source` on `runtime`,
    /// reporting each finished job to `sink`.
    ///
    /// Every dispatched job goes through the runtime's atomic claim, so a
    /// pool can coexist with one-shot drains and manual
    /// [`Runtime::run_job`] calls without double-executing anything.
    pub fn spawn(
        runtime: &Arc<Runtime>,
        workers: usize,
        source: Arc<dyn JobSource>,
        sink: Arc<OutcomeSink>,
    ) -> WorkerPool {
        let handles = (0..workers.max(1))
            .map(|worker| {
                let runtime = Arc::clone(runtime);
                let source = Arc::clone(&source);
                let sink = Arc::clone(&sink);
                thread::Builder::new()
                    .name(format!("qml-worker-{worker}"))
                    .spawn(move || worker_loop(worker, &runtime, &source, &sink))
                    .expect("failed to spawn pool worker thread")
            })
            .collect();
        WorkerPool { handles }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Wait for every worker to exit (the source must answer
    /// [`Feed::Shutdown`] eventually). Returns the total number of jobs the
    /// pool executed.
    pub fn join(self) -> usize {
        self.handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .sum()
    }
}

fn worker_loop(
    worker: usize,
    runtime: &Arc<Runtime>,
    source: &Arc<dyn JobSource>,
    sink: &Arc<OutcomeSink>,
) -> usize {
    let mut executed = 0usize;
    let mut idle_backoff = IDLE_BACKOFF;
    loop {
        match source.next_job(worker) {
            Feed::Shutdown => break,
            Feed::Idle => {
                thread::sleep(idle_backoff);
                idle_backoff = (idle_backoff * 2).min(MAX_IDLE_BACKOFF);
            }
            Feed::Job(dispatch) => {
                // Solo dispatch or micro-batch — one path: claim every
                // member in order (a concurrent drain may have raced us to a
                // job; lost claims release the source's in-flight slot and
                // are skipped individually), execute the survivors through
                // the backend's device-level batch path, and stream
                // per-member outcomes to the sink in dispatch order.
                idle_backoff = IDLE_BACKOFF;
                let mut claimed = Vec::with_capacity(dispatch.len());
                for id in dispatch.ids() {
                    match runtime.claim(id) {
                        Ok(Some(bundle)) => claimed.push((id, bundle)),
                        _ => source.job_skipped(id),
                    }
                }
                if claimed.is_empty() {
                    continue;
                }
                let placement = dispatch
                    .placement
                    .or_else(|| runtime.scheduler().place(&claimed[0].1).ok());
                // The batch executes as one backend call, but each member's
                // duration is measured individually (bind + sample, plus a
                // proportional share of the group's one plan realization) —
                // an even split would misreport per-job cost and per-backend
                // busy-seconds whenever members differ, e.g. a shot ladder.
                let outcomes = runtime.execute_claimed_batch(claimed, placement.as_ref());
                for (id, result, duration) in outcomes {
                    let backend = result
                        .as_ref()
                        .ok()
                        .map(|r| r.backend.clone())
                        .or_else(|| placement.as_ref().map(|p| p.backend.name().to_string()));
                    executed += 1;
                    sink(JobOutcome {
                        id,
                        result,
                        backend,
                        device: dispatch.device.clone(),
                        duration,
                        worker,
                        stolen: false,
                    });
                }
            }
        }
    }
    executed
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use qml_algorithms::{qaoa_maxcut_program, QaoaSchedule, RING_P1_ANGLES};
    use qml_graph::cycle;
    use qml_types::{ContextDescriptor, ExecConfig, JobBundle};
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn gate_bundle(seed: u64) -> JobBundle {
        qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))
            .unwrap()
            .with_context(ContextDescriptor::for_gate(
                ExecConfig::new("gate.aer_simulator")
                    .with_samples(32)
                    .with_seed(seed),
            ))
    }

    /// A FIFO source that keeps feeding until told to stop, then shuts the
    /// pool down once its queue is empty.
    struct FifoSource {
        queue: Mutex<VecDeque<JobId>>,
        stopping: AtomicBool,
    }

    impl FifoSource {
        fn new() -> Self {
            FifoSource {
                queue: Mutex::new(VecDeque::new()),
                stopping: AtomicBool::new(false),
            }
        }

        fn push(&self, id: JobId) {
            self.queue.lock().push_back(id);
        }
    }

    impl JobSource for FifoSource {
        fn next_job(&self, _worker: usize) -> Feed {
            if let Some(id) = self.queue.lock().pop_front() {
                return Feed::Job(JobDispatch::new(id));
            }
            if self.stopping.load(Ordering::SeqCst) {
                Feed::Shutdown
            } else {
                Feed::Idle
            }
        }
    }

    #[test]
    fn pool_executes_jobs_fed_while_running() {
        let runtime = Arc::new(Runtime::with_default_backends());
        let source = Arc::new(FifoSource::new());
        let completed = Arc::new(Mutex::new(Vec::new()));
        let sink = {
            let completed = Arc::clone(&completed);
            Arc::new(move |outcome: JobOutcome| {
                completed.lock().push((outcome.id, outcome.result.is_ok()));
            })
        };
        let pool = WorkerPool::spawn(&runtime, 2, source.clone(), sink);

        // Feed jobs *after* the pool is already running.
        let mut ids = Vec::new();
        for seed in 0..6 {
            let id = runtime.submit(gate_bundle(seed)).unwrap();
            source.push(id);
            ids.push(id);
        }
        source.stopping.store(true, Ordering::SeqCst);
        let executed = pool.join();

        assert_eq!(executed, 6);
        let mut seen: Vec<JobId> = completed.lock().iter().map(|(id, _)| *id).collect();
        seen.sort();
        assert_eq!(seen, ids);
        assert!(completed.lock().iter().all(|(_, ok)| *ok));
    }

    #[test]
    fn already_executed_jobs_are_skipped_not_failed() {
        let runtime = Arc::new(Runtime::with_default_backends());
        let source = Arc::new(FifoSource::new());
        let id = runtime.submit(gate_bundle(1)).unwrap();
        // Execute through the one-shot path first; the pool must then skip.
        runtime.run_job(id).unwrap();
        source.push(id);
        source.stopping.store(true, Ordering::SeqCst);
        let sink = Arc::new(|_outcome: JobOutcome| {});
        let executed = WorkerPool::spawn(&runtime, 1, source, sink).join();
        assert_eq!(executed, 0, "stale dispatch is skipped, not re-run");
    }

    /// A source that hands out its whole queue as one micro-batch.
    struct OneBatchSource {
        ids: Mutex<Vec<JobId>>,
    }

    impl JobSource for OneBatchSource {
        fn next_job(&self, _worker: usize) -> Feed {
            let mut ids = self.ids.lock();
            if ids.is_empty() {
                return Feed::Shutdown;
            }
            let id = ids.remove(0);
            let rest = ids.drain(..).collect();
            Feed::Job(JobDispatch {
                id,
                rest,
                placement: None,
                device: None,
                class: ServiceClass::Throughput,
            })
        }
    }

    #[test]
    fn batched_dispatch_streams_every_member_in_order() {
        let runtime = Arc::new(Runtime::with_default_backends());
        let ids: Vec<JobId> = (0..4)
            .map(|seed| runtime.submit(gate_bundle(seed)).unwrap())
            .collect();
        let source = Arc::new(OneBatchSource {
            ids: Mutex::new(ids.clone()),
        });
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = {
            let seen = Arc::clone(&seen);
            Arc::new(move |outcome: JobOutcome| {
                seen.lock().push((outcome.id, outcome.result.is_ok()));
            })
        };
        let executed = WorkerPool::spawn(&runtime, 1, source, sink).join();
        assert_eq!(executed, 4);
        let seen = seen.lock();
        assert_eq!(
            seen.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            ids,
            "outcomes reach the sink in dispatch order"
        );
        assert!(seen.iter().all(|(_, ok)| *ok));
    }

    #[test]
    fn batch_members_report_honest_unequal_durations() {
        use qml_algorithms::maxcut_ising_program;
        use qml_types::AnnealConfig;

        // A shot ladder: one Ising problem at 16 reads and at 4096 reads,
        // coalesced into a single micro-batch (one shared BQM lowering).
        // Before per-member timing, both outcomes reported the same even
        // split of the batch wall-clock — fiction, since the 4096-read
        // member does ~256× the sampling work.
        let runtime = Arc::new(Runtime::with_default_backends());
        let ladder = |reads: u64| {
            maxcut_ising_program(&cycle(4))
                .unwrap()
                .with_context(ContextDescriptor::for_anneal(
                    "anneal.neal_simulator",
                    AnnealConfig::with_reads(reads),
                ))
        };
        let small = runtime.submit(ladder(16)).unwrap();
        let large = runtime.submit(ladder(4096)).unwrap();
        let source = Arc::new(OneBatchSource {
            ids: Mutex::new(vec![small, large]),
        });
        let durations = Arc::new(Mutex::new(Vec::new()));
        let sink = {
            let durations = Arc::clone(&durations);
            Arc::new(move |outcome: JobOutcome| {
                assert!(outcome.result.is_ok(), "{:?}", outcome.result);
                durations.lock().push((outcome.id, outcome.duration));
            })
        };
        let executed = WorkerPool::spawn(&runtime, 1, source, sink).join();
        assert_eq!(executed, 2);
        let durations = durations.lock();
        let small_dur = durations.iter().find(|(id, _)| *id == small).unwrap().1;
        let large_dur = durations.iter().find(|(id, _)| *id == large).unwrap().1;
        assert_ne!(
            small_dur, large_dur,
            "batch members must not report an even wall-clock split"
        );
        assert!(
            large_dur > small_dur * 2,
            "a 256× sampling workload must be attributed a larger duration \
             (got {small_dur:?} vs {large_dur:?})"
        );
    }

    #[test]
    fn batched_dispatch_skips_already_executed_members() {
        let runtime = Arc::new(Runtime::with_default_backends());
        let ids: Vec<JobId> = (0..3)
            .map(|seed| runtime.submit(gate_bundle(seed)).unwrap())
            .collect();
        // The middle member races a one-shot execution and loses its claim;
        // the rest of the batch is unaffected.
        runtime.run_job(ids[1]).unwrap();
        let source = Arc::new(OneBatchSource {
            ids: Mutex::new(ids.clone()),
        });
        let sink = Arc::new(|_outcome: JobOutcome| {});
        let executed = WorkerPool::spawn(&runtime, 1, source, sink).join();
        assert_eq!(executed, 2, "lost claims are skipped, not re-run");
    }

    #[test]
    fn shutdown_with_empty_source_exits_immediately() {
        let runtime = Arc::new(Runtime::with_default_backends());
        let source = Arc::new(FifoSource::new());
        source.stopping.store(true, Ordering::SeqCst);
        let pool = WorkerPool::spawn(&runtime, 3, source, Arc::new(|_| {}));
        assert_eq!(pool.workers(), 3);
        assert_eq!(pool.join(), 0);
    }
}
